#!/usr/bin/env python3
"""The ACE-bit counter architecture: cost and fidelity.

Reproduces Section 4.2 interactively: the hardware cost of the three
counter implementations (904 / 296 / 67 bytes), the ABC stacks that
justify the ROB-only optimization, and an end-to-end comparison of
reliability-aware scheduling driven by the full counters versus the
area-optimized ROB-only counters (Figure 10's ablation).

Usage:
    python examples/counter_architecture.py
"""

from repro.ace import (
    AceCounterMode,
    abc_stack,
    baseline_big_core_cost,
    in_order_core_cost,
    rob_core_correlation,
    rob_only_big_core_cost,
)
from repro.config import MemoryConfig, big_core_config, machine_2b2s, small_core_config
from repro.cores import MechanisticCoreModel
from repro.sim import run_workload
from repro.sim.isolated import run_isolated
from repro.workloads.spec2006 import SUITE

SCALE = 50_000_000
WORKLOAD = ("milc", "leslie3d", "mcf", "sjeng")


def main() -> None:
    big = big_core_config()
    small = small_core_config()

    print("=== Section 4.2: counter hardware cost ===")
    for label, cost in (
        ("baseline (all structures)", baseline_big_core_cost(big)),
        ("area-optimized (ROB only)", rob_only_big_core_cost(big)),
        ("in-order core", in_order_core_cost(small)),
    ):
        print(f"{label:28s}: {cost.storage_bits:5d} storage bits + "
              f"{cost.adders:2d} adders = {cost.bit_equivalents:5d} "
              f"bit-equivalents = {cost.bytes:3d} bytes")

    print("\n=== Figure 5: why the ROB suffices ===")
    model = MechanisticCoreModel(big, MemoryConfig())
    results = []
    for name in ("milc", "zeusmp", "mcf", "povray", "gobmk"):
        result = run_isolated(model, SUITE[name].scaled(5_000_000))
        results.append(result)
        stack = abc_stack(result)
        top = sorted(stack.items(), key=lambda kv: -kv[1])[:3]
        parts = ", ".join(f"{k.value}={100 * v:.0f}%" for k, v in top)
        print(f"{name:8s}: {parts}")
    all_results = [
        run_isolated(model, p.scaled(2_000_000)) for p in SUITE.values()
    ]
    print(f"ROB-vs-core ABC correlation across the suite: "
          f"{rob_core_correlation(all_results):.3f} (paper: 0.99)")

    print("\n=== Figure 10 ablation: scheduling with ROB-only counters ===")
    machine = machine_2b2s()
    for mode in (AceCounterMode.FULL, AceCounterMode.ROB_ONLY):
        rel = run_workload(machine, WORKLOAD, "reliability",
                           instructions=SCALE, counter_mode=mode)
        rnd = run_workload(machine, WORKLOAD, "random",
                           instructions=SCALE, counter_mode=mode)
        reduction = 100 * (1 - rel.sser / rnd.sser)
        print(f"{mode.value:9s}: SSER reduction vs random = {reduction:5.1f}% "
              f"(STP {rel.stp:.3f})")


if __name__ == "__main__":
    main()
