#!/usr/bin/env python3
"""Define a custom workload and study it with the trace-driven models.

Shows the library's full modelling stack on a workload you define
yourself: a phase-changing analytics service (a streaming scan phase
followed by a pointer-chasing index phase).  The example

1. defines the workload as :class:`PhaseCharacteristics`,
2. generates a concrete instruction trace,
3. runs the trace through the trace-driven out-of-order and in-order
   pipeline models (real LRU caches, real dependency timing),
4. compares SER and performance across core types, and
5. schedules it against SPEC-like co-runners with the reliability
   scheduler.

Usage:
    python examples/custom_workload.py
"""

from repro.config import MemoryConfig, big_core_config, machine_2b2s, small_core_config
from repro.cores import ISOLATED
from repro.cores.inorder import InOrderCoreModel
from repro.cores.ooo import OutOfOrderCoreModel
from repro.cores.tracebase import TraceApplication
from repro.sim import run_workload
from repro.workloads import (
    BenchmarkProfile,
    InstructionMix,
    PhaseCharacteristics,
)
from repro.workloads.generator import generate_trace
from repro.workloads.spec2006 import SUITE

TRACE_LENGTH = 50_000


def build_profile() -> BenchmarkProfile:
    """A two-phase analytics service."""
    scan_phase = PhaseCharacteristics(
        mix=InstructionMix(nop=0.01, int_alu=0.30, int_mul=0.0, load=0.38,
                           store=0.15, branch=0.16),
        dep_distance_mean=6.5,
        branch_mpki=0.8,
        icache_mpki=0.1,
        l1d_mpki=26.0,
        l2_mpki=19.0,
        l3_mpki=14.0,
        cache_sensitivity=0.1,
        mlp=4.0,
        branch_depends_on_load_prob=0.05,
    )
    index_phase = PhaseCharacteristics(
        mix=InstructionMix(nop=0.02, int_alu=0.34, int_mul=0.0, load=0.30,
                           store=0.08, branch=0.26),
        dep_distance_mean=3.4,
        branch_mpki=11.0,
        icache_mpki=1.0,
        l1d_mpki=24.0,
        l2_mpki=14.0,
        l3_mpki=8.0,
        cache_sensitivity=0.6,
        mlp=1.4,
        branch_depends_on_load_prob=0.6,
    )
    return BenchmarkProfile(
        name="analytics",
        instructions=1_000_000_000,
        phases=((0.6, scan_phase), (0.4, index_phase)),
    )


def main() -> None:
    profile = build_profile()
    memory = MemoryConfig()
    trace = generate_trace(profile, TRACE_LENGTH, seed=11)
    print(f"generated trace: {len(trace)} instructions, "
          f"{trace.branch_mpki:.1f} branch MPKI, "
          f"{trace.icache_mpki:.1f} I-cache MPKI\n")

    big = OutOfOrderCoreModel(big_core_config(), memory)
    small = InOrderCoreModel(small_core_config(), memory)
    print("=== trace-driven pipeline models, per phase ===")
    boundaries = [0, int(0.6 * TRACE_LENGTH), TRACE_LENGTH]
    for p, label in ((0, "scan (streaming)"), (1, "index (pointer)")):
        start, stop = boundaries[p], boundaries[p + 1]
        length = stop - start
        print(f"phase: {label}")
        for core_label, model in (("big ", big), ("small", small)):
            app = TraceApplication(trace.slice(start, stop),
                                   name=f"analytics.{p}")
            result = model.run_cycles(app, 0, 50_000_000, ISOLATED)
            avf = result.avf(model.core)
            print(f"  {core_label}: IPC={result.ipc:5.2f} "
                  f"AVF={100 * avf:5.1f}%  "
                  f"ABC/cycle={result.ace_bits_per_cycle():8.0f} bits")
        print()

    print("=== scheduling against SPEC-like co-runners (2B2S) ===")
    machine = machine_2b2s()
    custom_suite = dict(SUITE)
    custom_suite["analytics"] = profile

    # Patch the lookup so run_workload can see the custom benchmark.
    import repro.sim.experiment as experiment

    original = experiment.benchmark
    experiment.benchmark = lambda name: custom_suite[name]
    try:
        mix = ("analytics", "povray", "milc", "gobmk")
        for scheduler in ("performance", "reliability"):
            result = run_workload(machine, mix, scheduler,
                                  instructions=100_000_000)
            analytics = result.app("analytics")
            big_share = analytics.time_big_seconds / analytics.time_seconds
            print(f"{scheduler:12s}: SSER={result.sser:.3e} "
                  f"STP={result.stp:.3f}; analytics spends "
                  f"{100 * big_share:.0f}% of its time on big cores")
    finally:
        experiment.benchmark = original


if __name__ == "__main__":
    main()
