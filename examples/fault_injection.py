#!/usr/bin/env python3
"""Validate ACE analysis against statistical fault injection.

The paper measures vulnerability with ACE-bit analysis (counting the
bits whose corruption would affect the program).  The classic
alternative is fault injection: flip random bits at random cycles and
see how often the flip lands on architecturally relevant state.  This
example runs both methodologies on the same executions and shows they
agree -- per benchmark and per structure.

Usage:
    python examples/fault_injection.py [trials-per-benchmark]
"""

import sys

from repro.ace.faultinject import FaultInjector
from repro.config import MemoryConfig, big_core_config
from repro.cores.base import ISOLATED
from repro.cores.ooo import OutOfOrderCoreModel
from repro.cores.tracebase import TraceApplication
from repro.report import format_table
from repro.workloads.generator import generate_trace
from repro.workloads.spec2006 import benchmark

BENCHMARKS = ("gobmk", "mcf", "povray", "hmmer", "milc", "lbm")
TRACE_LENGTH = 20_000
DEFAULT_TRIALS = 30_000


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_TRIALS
    config = big_core_config()
    rows = []
    structure_rows = []
    for name in BENCHMARKS:
        model = OutOfOrderCoreModel(config, MemoryConfig())
        trace = generate_trace(benchmark(name), TRACE_LENGTH, seed=21)
        timing = model.simulate_window(
            TraceApplication(trace), 0, 50_000_000, ISOLATED
        )
        injector = FaultInjector(config, timing)
        result = injector.inject(trials=trials, seed=21)
        counting = injector.counting_avf()
        low, high = result.confidence_interval()
        inside = "yes" if low <= counting <= high else "NO"
        rows.append([
            name,
            float(100 * counting),
            float(100 * result.avf_estimate),
            f"[{100 * low:.2f}, {100 * high:.2f}]",
            inside,
        ])
        if name == "milc":
            for kind, (t, h) in result.per_structure.items():
                if t:
                    structure_rows.append([kind, t, float(100 * h / t)])

    print(f"ACE counting vs Monte-Carlo fault injection "
          f"({trials} injections per benchmark)\n")
    print(format_table(
        ["benchmark", "counting AVF %", "injected AVF %", "95% CI",
         "CI covers?"],
        rows,
        float_format="{:.2f}",
    ))
    print("\nper-structure breakdown for milc:")
    print(format_table(["structure", "trials", "AVF %"], structure_rows,
                       float_format="{:.1f}"))
    print("\nBoth methodologies see the same picture: fault injection is "
          "the (slow) ground truth, ACE counting the (fast) instrument "
          "the paper's scheduler builds on.")


if __name__ == "__main__":
    main()
