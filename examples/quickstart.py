#!/usr/bin/env python3
"""Quickstart: reliability-aware scheduling on a 2B2S heterogeneous CMP.

Runs one four-program SPEC CPU2006-like workload on a heterogeneous
multicore with two big out-of-order cores and two small in-order cores
under the paper's three schedulers, and reports system soft error rate
(SSER, lower is better) and system throughput (STP, higher is better).

Usage:
    python examples/quickstart.py [instructions-per-benchmark]
"""

import sys

from repro.config import machine_2b2s
from repro.power import PowerModel
from repro.sim import run_workload

#: Default scale: 100 M instructions per benchmark (the paper uses
#: 1 B; pass 1000000000 as argv[1] to reproduce that exactly).
DEFAULT_INSTRUCTIONS = 100_000_000

#: One high-AVF pair (milc, zeusmp) against one low-AVF pair
#: (mcf, gobmk): the HHLL-style mix where scheduling matters most.
WORKLOAD = ("milc", "zeusmp", "mcf", "gobmk")


def main() -> None:
    instructions = (
        int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_INSTRUCTIONS
    )
    machine = machine_2b2s()
    power_model = PowerModel(machine)

    print(f"machine: {machine.name} "
          f"(big: {machine.big_cores} OoO cores, "
          f"small: {machine.small_cores} in-order cores @ "
          f"{machine.big.frequency_ghz} GHz)")
    print(f"workload: {', '.join(WORKLOAD)} "
          f"({instructions / 1e6:.0f} M instructions each)\n")

    results = {}
    for scheduler in ("random", "performance", "reliability"):
        results[scheduler] = run_workload(
            machine, WORKLOAD, scheduler, instructions=instructions
        )

    print(f"{'scheduler':14s} {'SSER':>12s} {'STP':>7s} {'chip W':>7s} "
          f"{'quanta':>7s}")
    for name, result in results.items():
        power = power_model.run_power(result)
        print(f"{name:14s} {result.sser:12.4e} {result.stp:7.3f} "
              f"{power.chip_watts:7.2f} {result.quanta:7d}")

    random, reliability = results["random"], results["reliability"]
    performance = results["performance"]
    print()
    print(f"reliability-optimized vs random:      "
          f"SSER reduction {100 * (1 - reliability.sser / random.sser):+.1f}%, "
          f"STP {100 * (reliability.stp / random.stp - 1):+.1f}%")
    print(f"reliability-optimized vs perf-opt:    "
          f"SSER reduction {100 * (1 - reliability.sser / performance.sser):+.1f}%, "
          f"STP {100 * (reliability.stp / performance.stp - 1):+.1f}%")

    print("\nper-application placement under the reliability scheduler:")
    for app in reliability.apps:
        big_frac = app.time_big_seconds / app.time_seconds
        print(f"  {app.name:12s} {100 * big_frac:5.1f}% of time on big cores, "
              f"wSER {app.wser:.3e}, slowdown {app.slowdown:.2f}x, "
              f"{app.migrations} migrations")


if __name__ == "__main__":
    main()
