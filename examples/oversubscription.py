#!/usr/bin/env python3
"""Oversubscription: six applications on a four-core HCMP.

The paper runs one application per core.  This example oversubscribes
the 2B2S machine (multiprogramming level 1.5) with the extension
scheduler that combines fair time-sharing with reliability-aware
placement, compares it against random selection+placement, and draws
the schedule as an ASCII Gantt chart (B = big core, s = small core,
. = parked/waiting).

Usage:
    python examples/oversubscription.py [instructions-per-benchmark]
"""

import sys

from repro.config import machine_2b2s
from repro.report import migration_summary, schedule_chart
from repro.sched.oversubscribed import OversubscribedReliabilityScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark

WORKLOAD = ("milc", "lbm", "zeusmp", "mcf", "gobmk", "povray")
DEFAULT_INSTRUCTIONS = 50_000_000


def main() -> None:
    instructions = (
        int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_INSTRUCTIONS
    )
    machine = machine_2b2s()
    profiles = [benchmark(name).scaled(instructions) for name in WORKLOAD]

    print(f"{len(WORKLOAD)} applications on {machine.name} "
          f"({machine.num_cores} cores): multiprogramming level "
          f"{len(WORKLOAD) / machine.num_cores:.2f}\n")

    reliability = MulticoreSimulation(
        machine, profiles,
        OversubscribedReliabilityScheduler(machine, len(WORKLOAD)),
        record_timeline=True,
    ).run()
    random_run = MulticoreSimulation(
        machine, profiles,
        RandomScheduler(machine, len(WORKLOAD), seed=0),
    ).run()

    print(f"{'scheduler':24s} {'SSER':>12s} {'STP':>7s}")
    print(f"{'random select+place':24s} {random_run.sser:12.4e} "
          f"{random_run.stp:7.3f}")
    print(f"{'reliability fair-share':24s} {reliability.sser:12.4e} "
          f"{reliability.stp:7.3f}")
    print(f"\nSSER reduction: "
          f"{100 * (1 - reliability.sser / random_run.sser):.1f}% at "
          f"{100 * (reliability.stp / random_run.stp - 1):+.1f}% STP\n")

    print(schedule_chart(reliability, width=60))
    print()
    print(migration_summary(reliability))


if __name__ == "__main__":
    main()
