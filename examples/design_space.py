#!/usr/bin/env python3
"""Design-space exploration: where does reliability-aware scheduling pay?

Sweeps HCMP topologies (1B3S / 2B2S / 3B1S) and small-core frequency
settings for one workload mix, comparing the three schedulers on SSER,
STP and power.  Results are cached on disk (``.repro_cache/``), so
re-running the exploration after the first pass is instant -- the
pattern to copy for your own studies.

Usage:
    python examples/design_space.py [instructions-per-benchmark]
"""

import sys
from pathlib import Path

from repro.power import PowerModel
from repro.report import format_table, grouped_bar_chart
from repro.sim.campaign import Campaign, RunSpec

WORKLOAD = ("milc", "leslie3d", "mcf", "sjeng")
MACHINES = ("1B3S", "2B2S", "3B1S")
FREQUENCIES = (2.66, 1.33)
SCHEDULERS = ("random", "performance", "reliability")
DEFAULT_INSTRUCTIONS = 100_000_000


def main() -> None:
    instructions = (
        int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_INSTRUCTIONS
    )
    campaign = Campaign(Path(".repro_cache") / "design_space")
    rows = []
    chart_groups = {}
    for machine in MACHINES:
        for freq in FREQUENCIES:
            results = {}
            for scheduler in SCHEDULERS:
                spec = RunSpec(
                    machine=machine,
                    benchmarks=WORKLOAD,
                    scheduler=scheduler,
                    instructions=instructions,
                    small_frequency_ghz=freq if freq != 2.66 else None,
                )
                results[scheduler] = campaign.run(spec)
            power = PowerModel(spec.build_machine())
            rel, rnd = results["reliability"], results["random"]
            perf = results["performance"]
            label = f"{machine}@{freq}G"
            rows.append([
                label,
                float(rel.sser / rnd.sser),
                float(rel.sser / perf.sser),
                float(rel.stp / perf.stp),
                float(
                    power.run_power(rel).chip_watts
                    / power.run_power(perf).chip_watts
                ),
            ])
            chart_groups[label] = {
                "perf-opt": perf.sser / rnd.sser,
                "rel-opt": rel.sser / rnd.sser,
            }

    print(f"workload: {', '.join(WORKLOAD)} "
          f"({instructions / 1e6:.0f} M instructions each)\n")
    print(format_table(
        ["config", "SSER vs random", "SSER vs perf-opt",
         "STP vs perf-opt", "chip W vs perf-opt"],
        rows,
    ))
    print("\nnormalized SSER by configuration (vs random, lower is better):")
    print(grouped_bar_chart(chart_groups, width=40))
    print(f"\ncampaign cache: {campaign.hits} hits, {campaign.misses} misses "
          f"({campaign.directory})")


if __name__ == "__main__":
    main()
