#!/usr/bin/env python3
"""Explore the reliability characteristics of the benchmark suite.

Reproduces the paper's Section 2 analysis interactively: per-benchmark
AVF on both core types (Figure 1), normalized CPI stacks (Figure 2),
ABC stacks showing the ROB's dominance (Figure 5), and the resulting
H/M/L sensitivity classification used for workload construction.

Usage:
    python examples/avf_exploration.py
"""

from repro.ace.stacks import rob_core_correlation, rob_fraction
from repro.config import MemoryConfig, big_core_config, small_core_config
from repro.cores import ISOLATED, MechanisticCoreModel
from repro.metrics.performance import normalize_cpi_stack
from repro.sim.isolated import run_isolated
from repro.workloads.spec2006 import SUITE, big_core_avf, classify_benchmarks

#: Analysis scale (instructions per benchmark).
SCALE = 20_000_000

CPI_COMPONENTS = ("base", "resource", "bpred", "icache", "l2", "llc", "mem")


def main() -> None:
    memory = MemoryConfig()
    big = MechanisticCoreModel(big_core_config(), memory)
    small = MechanisticCoreModel(small_core_config(), memory)
    classes = classify_benchmarks()

    rows = []
    big_results = []
    for name, profile in SUITE.items():
        scaled = profile.scaled(SCALE)
        big_run = run_isolated(big, scaled)
        small_run = run_isolated(small, scaled)
        # Whole-run CPI stack: cycle-weighted across phases.
        stack = {c: 0.0 for c in CPI_COMPONENTS}
        total_instr = 0.0
        for frac, chars in profile.phases:
            analysis = big.analyze(chars, ISOLATED)
            for c in CPI_COMPONENTS:
                stack[c] += frac * analysis.cpi_components[c]
            total_instr += frac
        rows.append((
            name,
            big_run.avf(big.core),
            small_run.avf(small.core),
            big_run.ipc,
            small_run.ipc,
            normalize_cpi_stack(stack),
            rob_fraction(big_run),
        ))
        big_results.append(big_run)

    rows.sort(key=lambda r: r[1])
    print("=== Figure 1/2: big-core AVF (sorted) and CPI stacks ===")
    header = (f"{'benchmark':12s} {'cls':>3s} {'AVFb':>6s} {'AVFs':>6s} "
              f"{'IPCb':>5s} {'IPCs':>5s}  " +
              " ".join(f"{c:>6s}" for c in CPI_COMPONENTS))
    print(header)
    for name, avf_b, avf_s, ipc_b, ipc_s, stack, _ in rows:
        stacks = " ".join(f"{100 * stack[c]:6.1f}" for c in CPI_COMPONENTS)
        print(f"{name:12s} {classes[name]:>3s} {100 * avf_b:6.1f} "
              f"{100 * avf_s:6.1f} {ipc_b:5.2f} {ipc_s:5.2f}  {stacks}")

    print("\n=== Figure 5: ROB share of core ABC ===")
    shares = [r[6] for r in rows]
    print(f"mean ROB share of total core ABC: "
          f"{100 * sum(shares) / len(shares):.1f}%")
    print(f"ROB-vs-core ABC correlation: "
          f"{rob_core_correlation(big_results):.3f} (paper: 0.99)")

    print("\n=== Section 5 classification (8 H / 13 M / 8 L) ===")
    for letter in "HML":
        members = [n for n, c in classes.items() if c == letter]
        ordered = sorted(members, key=lambda n: big_core_avf(SUITE[n]))
        print(f"{letter}: {', '.join(ordered)}")


if __name__ == "__main__":
    main()
