"""Tests for the aggregated span tracer."""

import json

from repro.obs import tracing as obs


def build_tree():
    tracer = obs.SpanTracer()
    with obs.collecting(tracer):
        for _ in range(3):
            with obs.span("outer", core="big"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        with obs.span("other"):
            pass
    return tracer


class TestSpans:
    def test_disabled_span_is_noop(self):
        assert obs.ACTIVE is None
        with obs.span("anything", x=1):
            pass  # no tracer installed: must not raise or allocate state
        assert obs.ACTIVE is None

    def test_aggregates_repeated_spans(self):
        tracer = build_tree()
        root = tracer.root
        assert len(root.children) == 2
        outer = root.child("outer", (("core", "big"),))
        assert outer.count == 3
        inner = outer.child("inner", ())
        assert inner.count == 6

    def test_self_time_excludes_children(self):
        tracer = build_tree()
        outer = tracer.root.child("outer", (("core", "big"),))
        inner = outer.child("inner", ())
        assert outer.self_seconds <= outer.total_seconds
        assert outer.self_seconds == outer.total_seconds - inner.total_seconds

    def test_nesting_requires_active_tracer(self):
        tracer = build_tree()
        # After collecting() exits, new spans do not touch the tree.
        with obs.span("outer", core="big"):
            pass
        assert tracer.root.child("outer", (("core", "big"),)).count == 3

    def test_collecting_restores_previous(self):
        with obs.collecting() as outer_tracer:
            with obs.collecting() as inner_tracer:
                assert obs.ACTIVE is inner_tracer
            assert obs.ACTIVE is outer_tracer
        assert obs.ACTIVE is None


class TestRendering:
    def test_format_tree_lists_spans(self):
        text = obs.format_tree(build_tree().root)
        assert "outer{core=big}" in text
        assert "inner" in text
        assert "count=3" in text and "count=6" in text

    def test_format_tree_empty(self):
        assert "empty" in obs.format_tree(obs.SpanTracer().root)

    def test_top_self_time_merges_labels(self):
        rows = obs.top_self_time(build_tree().root)
        labels = [row[0] for row in rows]
        assert "inner" in labels and "outer{core=big}" in labels
        inner = next(row for row in rows if row[0] == "inner")
        assert inner[1] == 6  # count merged across positions


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        tracer = build_tree()
        path = tmp_path / "spans.json"
        obs.save_tree(tracer.root, path)
        restored = obs.load_tree(path)
        assert restored == tracer.root

    def test_tracer_to_dict_is_root(self, tmp_path):
        tracer = build_tree()
        data = json.loads(json.dumps(tracer.to_dict()))
        assert obs.SpanNode.from_dict(data) == tracer.root
