"""Failure-injection and edge-case tests across the stack."""

import numpy as np
import pytest

from repro.config import (
    BIG,
    MachineConfig,
    MemoryConfig,
    big_core_config,
    machine_2b2s,
    small_core_config,
)
from repro.cores.base import ISOLATED, CoreModel, QuantumResult
from repro.cores.mechanistic import MechanisticCoreModel
from repro.sched.base import Assignment, Observation, Scheduler, SegmentPlan
from repro.sched.oracle import StaticScheduler
from repro.sched.sampling import SamplingScheduler
from repro.sim.isolated import run_isolated
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark


class StuckCoreModel(CoreModel):
    """A core model that never makes progress."""

    def run_cycles(self, app, start_instruction, cycles, env):
        return QuantumResult(instructions=0, cycles=cycles)


class BadFractionScheduler(Scheduler):
    """Plans segments that do not cover the quantum."""

    def plan_quantum(self, quantum_index):
        return [SegmentPlan(0.5, self.identity_assignment(self.num_apps))]


class TestRunIsolatedFailures:
    def test_stuck_model_raises(self):
        model = StuckCoreModel(big_core_config())
        with pytest.raises(RuntimeError, match="no progress"):
            run_isolated(model, benchmark("povray").scaled(1000))


class TestSimulationFailures:
    def test_partial_quantum_coverage_rejected(self, machine):
        profiles = [benchmark(n).scaled(1_000_000)
                    for n in ("povray", "milc", "gobmk", "bzip2")]
        sim = MulticoreSimulation(
            machine, profiles, BadFractionScheduler(machine, 4)
        )
        with pytest.raises(ValueError, match="segments cover"):
            sim.run()

    def test_invalid_assignment_core_rejected(self, machine):
        class OutOfRange(Scheduler):
            def plan_quantum(self, q):
                return [SegmentPlan(1.0, Assignment((0, 1, 2, 9)))]

        profiles = [benchmark(n).scaled(1_000_000)
                    for n in ("povray", "milc", "gobmk", "bzip2")]
        sim = MulticoreSimulation(machine, profiles, OutOfRange(machine, 4))
        with pytest.raises(ValueError):
            sim.run()


class TestSchedulerRobustness:
    class ConstantScheduler(SamplingScheduler):
        def objective_value(self, app_index, core_type):
            return 1.0

    def test_zero_instruction_observations_ignored(self):
        m = machine_2b2s()
        sched = self.ConstantScheduler(m, 4)
        plan = sched.plan_quantum(0)[0]
        # An application that executed nothing must not poison samples.
        obs = [Observation(0, 0, BIG, 1e-3, 0, 0.0)]
        sched.observe(plan, obs)
        assert sched.sample(0, BIG) is None

    def test_survives_migration_heavy_tiny_quanta(self):
        """Migration overhead larger than a sampling quantum must not
        produce negative execution budgets."""
        m = MachineConfig(
            big_cores=1, small_cores=1,
            quantum_seconds=1e-4,
            sampling_quantum_seconds=1e-5,  # < 20 us migration cost
            migration_overhead_seconds=2e-5,
        )
        profiles = [benchmark("povray").scaled(500_000),
                    benchmark("milc").scaled(500_000)]
        from repro.sched.reliability import ReliabilityScheduler
        result = MulticoreSimulation(
            m, profiles, ReliabilityScheduler(m, 2)
        ).run()
        assert result.sser > 0

    def test_mechanistic_model_handles_extreme_environment(self):
        from repro.cores.base import MemoryEnvironment
        model = MechanisticCoreModel(big_core_config(), MemoryConfig())
        env = MemoryEnvironment(
            l3_share_fraction=0.005, dram_latency_multiplier=20.0
        )
        result = model.run_cycles(
            benchmark("mcf").scaled(1_000_000), 0, 100_000, env
        )
        assert result.instructions >= 0
        assert all(v >= 0 for v in result.ace_bit_cycles.values())

    def test_single_phase_profile_with_one_instruction_budget(self):
        model = MechanisticCoreModel(big_core_config(), MemoryConfig())
        result = model.run_cycles(benchmark("povray").scaled(100), 0, 3, ISOLATED)
        assert result.instructions >= 0


class TestStaticSchedulerEdge:
    def test_all_small_machine_static(self):
        m = MachineConfig(big_cores=0, small_cores=4)
        sched = StaticScheduler(m, 4, big_apps=())
        profiles = [benchmark(n).scaled(1_000_000)
                    for n in ("povray", "milc", "gobmk", "bzip2")]
        result = MulticoreSimulation(m, profiles, sched).run()
        assert all(a.time_big_seconds == 0 for a in result.apps)

    def test_all_big_machine_static(self):
        m = MachineConfig(big_cores=4, small_cores=0)
        sched = StaticScheduler(m, 4, big_apps=(0, 1, 2, 3))
        profiles = [benchmark(n).scaled(1_000_000)
                    for n in ("povray", "milc", "gobmk", "bzip2")]
        result = MulticoreSimulation(m, profiles, sched).run()
        assert all(a.time_small_seconds == 0 for a in result.apps)
