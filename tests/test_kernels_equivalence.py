"""Kernel-vs-reference equivalence for the window kernels.

The vectorized kernels in `repro.kernels.window` must reproduce the
straight-line references in `repro.kernels.reference` exactly:
element-wise identical timings, identical committed counts, and
identical cache state (including across the budget-break rollback).
"""

import numpy as np
import pytest

from repro.config import MemoryConfig, big_core_config, small_core_config
from repro.cores.base import ISOLATED
from repro.cores.inorder import InOrderCoreModel
from repro.cores.ooo import OutOfOrderCoreModel
from repro.cores.tracebase import TraceApplication
from repro.kernels.reference import (
    reference_inorder_run,
    reference_ooo_window,
)
from repro.workloads import benchmark
from repro.workloads.generator import generate_trace

_TIMING_FIELDS = (
    "classes",
    "dispatch",
    "issue",
    "finish",
    "commit",
    "latency",
    "mispredicted",
)


def _app(name="soplex", instructions=20_000, seed=0):
    return TraceApplication(
        generate_trace(benchmark(name), instructions, seed=seed)
    )


def _cache_state(hierarchy):
    return (
        [
            (c.stats.accesses, c.stats.misses, c._clock, c._sets)
            for c in (hierarchy.l1d, hierarchy.l2, hierarchy.l3)
        ],
        hierarchy.l3_accesses,
        hierarchy.dram_accesses,
    )


def _assert_timing_equal(kernel, reference, context=""):
    assert kernel.committed == reference.committed, context
    assert kernel.elapsed_cycles == reference.elapsed_cycles, context
    for field in _TIMING_FIELDS:
        a = getattr(kernel, field)
        b = getattr(reference, field)
        assert a.dtype == b.dtype, (context, field)
        assert np.array_equal(a, b), (context, field)


class TestOutOfOrderKernel:
    @pytest.mark.parametrize("name", ("soplex", "mcf", "povray", "namd"))
    @pytest.mark.parametrize("budget", (3.0, 250.0, 15_000.0))
    def test_window_identical_to_reference(self, name, budget):
        app_k, app_r = _app(name), _app(name)
        model_k = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        model_r = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        timing_k = model_k.simulate_window(app_k, 0, budget, ISOLATED)
        timing_r = reference_ooo_window(model_r, app_r, 0, budget, ISOLATED)
        _assert_timing_equal(timing_k, timing_r, (name, budget))
        assert _cache_state(model_k.hierarchy_for(app_k)) == _cache_state(
            model_r.hierarchy_for(app_r)
        )

    def test_fuzzed_windows_identical(self):
        rng = np.random.default_rng(17)
        for _ in range(6):
            name = ("soplex", "lbm", "gcc")[int(rng.integers(3))]
            instructions = int(rng.integers(2_000, 12_000))
            seed = int(rng.integers(0, 1000))
            start = int(rng.integers(0, 2 * instructions))
            budget = float(rng.choice([5, 90, 1_200, 40_000]))
            app_k = _app(name, instructions, seed)
            app_r = _app(name, instructions, seed)
            model_k = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
            model_r = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
            timing_k = model_k.simulate_window(app_k, start, budget, ISOLATED)
            timing_r = reference_ooo_window(
                model_r, app_r, start, budget, ISOLATED
            )
            context = (name, instructions, seed, start, budget)
            _assert_timing_equal(timing_k, timing_r, context)
            assert _cache_state(model_k.hierarchy_for(app_k)) == _cache_state(
                model_r.hierarchy_for(app_r)
            ), context

    def test_multi_window_state_carry_over(self):
        app_k, app_r = _app("soplex", 40_000), _app("soplex", 40_000)
        model_k = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        model_r = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        position = 0
        for _ in range(8):
            timing_k = model_k.simulate_window(app_k, position, 1_800.0,
                                               ISOLATED)
            timing_r = reference_ooo_window(model_r, app_r, position, 1_800.0,
                                            ISOLATED)
            _assert_timing_equal(timing_k, timing_r, position)
            assert _cache_state(
                model_k.hierarchy_for(app_k)
            ) == _cache_state(model_r.hierarchy_for(app_r)), position
            position += timing_k.committed

    def test_run_cycles_results_identical(self):
        app_k, app_r = _app("mcf"), _app("mcf")
        model_k = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        model_r = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        result_k = model_k.run_cycles(app_k, 0, 5_000.0, ISOLATED)
        timing_r = reference_ooo_window(model_r, app_r, 0, 5_000.0, ISOLATED)
        ace_r, occ_r = model_r._account(timing_r)
        assert result_k.instructions == timing_r.committed
        assert result_k.cycles == timing_r.elapsed_cycles
        assert result_k.ace_bit_cycles == ace_r
        assert result_k.occupancy_bit_cycles == occ_r


class TestInOrderKernel:
    @pytest.mark.parametrize("name", ("soplex", "mcf"))
    @pytest.mark.parametrize("budget", (9.0, 700.0, 30_000.0))
    def test_run_identical_to_reference(self, name, budget):
        app_k, app_r = _app(name), _app(name)
        model_k = InOrderCoreModel(small_core_config(), MemoryConfig())
        model_r = InOrderCoreModel(small_core_config(), MemoryConfig())
        result_k = model_k.run_cycles(app_k, 0, budget, ISOLATED)
        result_r = reference_inorder_run(model_r, app_r, 0, budget, ISOLATED)
        assert result_k.instructions == result_r.instructions
        assert result_k.cycles == result_r.cycles
        assert result_k.memory_accesses == result_r.memory_accesses
        assert result_k.l3_accesses == result_r.l3_accesses
        assert (
            result_k.branch_mispredictions == result_r.branch_mispredictions
        )
        # The kernel's accounting is vectorized (reassociated sums):
        # equal up to floating-point rounding, not bit-identical.
        for kind in result_k.ace_bit_cycles:
            assert result_k.ace_bit_cycles[kind] == pytest.approx(
                result_r.ace_bit_cycles[kind], rel=1e-12, abs=1e-9
            ), kind
            assert result_k.occupancy_bit_cycles[kind] == pytest.approx(
                result_r.occupancy_bit_cycles[kind], rel=1e-12, abs=1e-9
            ), kind
        assert _cache_state(model_k.hierarchy_for(app_k)) == _cache_state(
            model_r.hierarchy_for(app_r)
        )

    def test_zero_and_negative_budgets(self):
        app = _app("soplex", 5_000)
        model = InOrderCoreModel(small_core_config(), MemoryConfig())
        assert model.run_cycles(app, 0, 0.0, ISOLATED).instructions == 0
        assert model.run_cycles(app, 0, -5.0, ISOLATED).instructions == 0


class TestBudgetBreakOffByOne:
    """Pin the documented budget-break cache semantics.

    ``simulate_window`` accesses the cache for the first *uncommitted*
    instruction (the one whose commit overran the budget) before
    breaking.  The kernels preserve this pre-kernel behaviour exactly
    -- see DESIGN.md -- so the cache sees `committed` accesses plus
    the break instruction's, when that instruction is a load or store.
    """

    def test_break_instruction_access_is_kept(self):
        from repro.isa.instruction import InstructionClass
        from repro.isa.trace import Trace

        n = 4000
        classes = np.full(n, InstructionClass.LOAD, dtype=np.int8)
        trace = Trace(
            classes=classes,
            dep1=np.zeros(n, dtype=np.int32),
            dep2=np.zeros(n, dtype=np.int32),
            addresses=(np.arange(n, dtype=np.int64) * 64),
            mispredicted=np.zeros(n, dtype=bool),
            icache_miss=np.zeros(n, dtype=bool),
            name="loads",
        )
        app = TraceApplication(trace)
        model = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        # Cold-cache loads miss to DRAM (~hundreds of cycles), so a
        # few-hundred-cycle budget commits some but not all of them.
        budget = 400.0
        timing = model.simulate_window(app, 0, budget, ISOLATED)
        hierarchy = model.hierarchy_for(app)
        assert 0 < timing.committed < n  # the budget actually broke
        # Off-by-one: committed loads plus the break instruction's.
        assert hierarchy.l1d.stats.accesses == timing.committed + 1

    def test_off_by_one_matches_reference(self):
        app_k, app_r = _app("mcf", 8_000), _app("mcf", 8_000)
        model_k = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        model_r = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        timing_k = model_k.simulate_window(app_k, 0, 200.0, ISOLATED)
        timing_r = reference_ooo_window(model_r, app_r, 0, 200.0, ISOLATED)
        assert timing_k.committed == timing_r.committed
        hier_k = model_k.hierarchy_for(app_k)
        hier_r = model_r.hierarchy_for(app_r)
        assert (
            hier_k.l1d.stats.accesses == hier_r.l1d.stats.accesses
        )
        assert _cache_state(hier_k) == _cache_state(hier_r)
