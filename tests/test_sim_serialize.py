"""Tests for run-result JSON serialization."""

import json

import pytest

from repro.config import machine_2b2s
from repro.sim.experiment import run_workload
from repro.sim.serialize import (
    load_run,
    load_sweep,
    run_result_from_dict,
    run_result_to_dict,
    save_run,
    save_sweep,
)

NAMES = ("povray", "milc", "gobmk", "bzip2")


@pytest.fixture(scope="module")
def result():
    return run_workload(machine_2b2s(), NAMES, "reliability",
                        instructions=2_000_000, record_timeline=True)


class TestRoundTrip:
    def test_dict_round_trip_preserves_metrics(self, result):
        restored = run_result_from_dict(run_result_to_dict(result))
        assert restored.sser == pytest.approx(result.sser)
        assert restored.stp == pytest.approx(result.stp)
        assert restored.machine_name == result.machine_name
        assert len(restored.apps) == len(result.apps)
        assert len(restored.timeline) == len(result.timeline)

    def test_file_round_trip(self, result, tmp_path):
        path = save_run(result, tmp_path / "run.json")
        restored = load_run(path)
        assert restored.sser == pytest.approx(result.sser)
        assert restored.app("milc").migrations == result.app("milc").migrations

    def test_json_is_plain(self, result, tmp_path):
        path = save_run(result, tmp_path / "run.json")
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert isinstance(data["apps"], list)


class TestSweepRoundTrip:
    def test_sweep_file(self, result, tmp_path):
        sweep = {"reliability": [result], "random": [result]}
        path = save_sweep(sweep, tmp_path / "sweep.json")
        restored = load_sweep(path)
        assert set(restored) == {"reliability", "random"}
        assert restored["reliability"][0].sser == pytest.approx(result.sser)


class TestAtomicityAndCacheErrors:
    def test_save_leaves_no_temp_files(self, result, tmp_path):
        save_run(result, tmp_path / "run.json")
        save_sweep({"r": [result]}, tmp_path / "sweep.json")
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "run.json", "sweep.json",
        ]

    def test_save_creates_parent_directories(self, result, tmp_path):
        path = save_run(result, tmp_path / "deep" / "nested" / "run.json")
        assert path.exists()

    def test_load_run_corrupt_json(self, tmp_path):
        from repro.sim.serialize import ResultCacheError
        path = tmp_path / "bad.json"
        path.write_text("{ definitely not json")
        with pytest.raises(ResultCacheError, match="unreadable"):
            load_run(path)

    def test_load_run_truncated(self, result, tmp_path):
        from repro.sim.serialize import ResultCacheError
        path = save_run(result, tmp_path / "run.json")
        path.write_text(path.read_text()[:30])
        with pytest.raises(ResultCacheError):
            load_run(path)

    def test_load_run_missing_file(self, tmp_path):
        from repro.sim.serialize import ResultCacheError
        with pytest.raises(ResultCacheError, match="unreadable"):
            load_run(tmp_path / "absent.json")

    def test_load_sweep_corrupt(self, tmp_path):
        from repro.sim.serialize import ResultCacheError
        path = tmp_path / "sweep.json"
        path.write_text("[1, 2")
        with pytest.raises(ResultCacheError):
            load_sweep(path)

    def test_cache_error_is_value_error(self):
        from repro.sim.serialize import ResultCacheError
        assert issubclass(ResultCacheError, ValueError)


class TestValidation:
    def test_unknown_version_rejected(self, result):
        data = run_result_to_dict(result)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="unsupported"):
            run_result_from_dict(data)

    def test_malformed_rejected(self, result):
        data = run_result_to_dict(result)
        del data["apps"]
        with pytest.raises(ValueError, match="malformed"):
            run_result_from_dict(data)

    def test_unknown_field_rejected(self, result):
        data = run_result_to_dict(result)
        data["apps"][0]["bogus_field"] = 1
        with pytest.raises(ValueError, match="malformed"):
            run_result_from_dict(data)
