"""Tests for HCMP machine configurations."""

import pytest

from repro.config.machines import (
    BIG,
    SMALL,
    STANDARD_MACHINES,
    CacheLevelConfig,
    MachineConfig,
    MemoryConfig,
    machine_1b3s,
    machine_2b2s,
    machine_4b4s,
)


class TestCacheLevelConfig:
    def test_num_sets(self):
        l1 = CacheLevelConfig(32 * 1024, 8, 4)
        assert l1.num_sets == 32 * 1024 // (8 * 64) == 64

    def test_rejects_fractional_sets(self):
        with pytest.raises(ValueError):
            CacheLevelConfig(1000, 3, 1)


class TestMemoryConfig:
    def test_table2_defaults(self, memory):
        assert memory.l1i.size_bytes == 32 * 1024
        assert memory.l1d.associativity == 8
        assert memory.l2.size_bytes == 256 * 1024
        assert memory.l3.size_bytes == 8 * 1024 * 1024
        assert memory.l3.latency_cycles == 30
        assert memory.dram_bandwidth_gbps == pytest.approx(25.6)

    def test_dram_latency_cycles_scales_with_frequency(self, memory):
        at_266 = memory.dram_latency_cycles(2.66)
        at_133 = memory.dram_latency_cycles(1.33)
        assert at_266 == pytest.approx(45 * 2.66)
        assert at_133 == pytest.approx(at_266 / 2)


class TestMachineConfig:
    def test_standard_names(self):
        for name, factory in STANDARD_MACHINES.items():
            assert factory().name == name

    def test_core_types_by_index(self):
        m = machine_1b3s()
        assert m.core_type(0) == BIG
        assert [m.core_type(i) for i in range(1, 4)] == [SMALL] * 3

    def test_core_type_out_of_range(self):
        with pytest.raises(IndexError):
            machine_2b2s().core_type(4)

    def test_quantum_cycles(self):
        m = machine_2b2s()
        assert m.quantum_cycles(BIG) == int(round(1e-3 * 2.66e9))
        assert m.sampling_quantum_cycles(BIG) == int(round(1e-4 * 2.66e9))

    def test_with_small_frequency(self):
        m = machine_2b2s().with_small_frequency(1.33)
        assert m.small.frequency_ghz == pytest.approx(1.33)
        assert m.big.frequency_ghz == pytest.approx(2.66)
        assert m.quantum_cycles(SMALL) == int(round(1e-3 * 1.33e9))

    def test_with_sampling(self):
        m = machine_2b2s().with_sampling(100, 5e-5)
        assert m.sampling_period_quanta == 100
        assert m.sampling_quantum_seconds == pytest.approx(5e-5)

    def test_rejects_empty_machine(self):
        with pytest.raises(ValueError):
            MachineConfig(big_cores=0, small_cores=0)

    def test_rejects_sampling_longer_than_quantum(self):
        with pytest.raises(ValueError):
            MachineConfig(
                big_cores=1, small_cores=1, sampling_quantum_seconds=2e-3
            )

    def test_num_cores(self):
        assert machine_4b4s().num_cores == 8
