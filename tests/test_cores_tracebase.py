"""Tests for trace-application windows and hierarchy management."""

import numpy as np
import pytest

from repro.config import MemoryConfig, big_core_config
from repro.cores.tracebase import TraceApplication, TraceDrivenModel
from repro.isa.instruction import InstructionClass
from repro.isa.trace import Trace


def _trace(n=100):
    return Trace(
        classes=np.full(n, InstructionClass.INT_ALU, dtype=np.int8),
        dep1=np.zeros(n, dtype=np.int32),
        dep2=np.zeros(n, dtype=np.int32),
        addresses=np.zeros(n, dtype=np.int64),
        mispredicted=np.zeros(n, dtype=bool),
        icache_miss=np.zeros(n, dtype=bool),
        name="unit",
    )


class _NullModel(TraceDrivenModel):
    def run_cycles(self, app, start_instruction, cycles, env):
        raise NotImplementedError


class TestTraceApplication:
    def test_name_defaults_to_trace_name(self):
        app = TraceApplication(_trace())
        assert app.name == "unit"
        assert app.instructions == 100

    def test_explicit_name(self):
        assert TraceApplication(_trace(), name="x").name == "x"

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceApplication(Trace.empty())

    def test_window_basic(self):
        app = TraceApplication(_trace(100))
        window = app.window(10, 20)
        assert len(window) == 20

    def test_window_clipped_at_trace_end(self):
        app = TraceApplication(_trace(100))
        assert len(app.window(90, 50)) == 10

    def test_window_wraps_position(self):
        app = TraceApplication(_trace(100))
        # Position 250 is 50 into the third pass.
        assert len(app.window(250, 30)) == 30
        assert len(app.window(250, 100)) == 50  # to the trace end

    def test_identity_semantics(self):
        a, b = TraceApplication(_trace()), TraceApplication(_trace())
        assert a != b  # eq=False: identity, usable as weak dict key


class TestHierarchyManagement:
    def test_one_hierarchy_per_app(self):
        model = _NullModel(big_core_config(), MemoryConfig())
        a, b = TraceApplication(_trace()), TraceApplication(_trace())
        ha, hb = model.hierarchy_for(a), model.hierarchy_for(b)
        assert ha is not hb
        assert model.hierarchy_for(a) is ha

    def test_hierarchy_released_with_app(self):
        model = _NullModel(big_core_config(), MemoryConfig())
        app = TraceApplication(_trace())
        model.hierarchy_for(app)
        assert len(model._hierarchies) == 1
        del app
        import gc
        gc.collect()
        assert len(model._hierarchies) == 0

    def test_dram_latency_scaling(self):
        from repro.cores.base import ISOLATED, MemoryEnvironment
        model = _NullModel(big_core_config(), MemoryConfig())
        base = model.dram_latency_cycles(ISOLATED)
        doubled = model.dram_latency_cycles(
            MemoryEnvironment(dram_latency_multiplier=2.0)
        )
        assert doubled == pytest.approx(2 * base)
