"""Cross-cutting property-based tests (hypothesis).

These encode the invariants the reproduction's correctness rests on:
scheduler placement validity under arbitrary observation streams,
mechanistic-model monotonicities, and the wSER time-slicing convexity
that motivates the scheduler's swap hysteresis.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    BIG,
    SMALL,
    MemoryConfig,
    big_core_config,
    machine_2b2s,
)
from repro.cores.base import ISOLATED, MemoryEnvironment
from repro.cores.mechanistic import analyze_big_phase
from repro.sched.base import Observation
from repro.sched.sampling import SamplingScheduler
from repro.workloads.characteristics import PhaseCharacteristics


class ValueScheduler(SamplingScheduler):
    """Objective driven by an externally supplied table."""

    def __init__(self, machine, num_apps, table):
        super().__init__(machine, num_apps)
        self.table = table

    def objective_value(self, app_index, core_type):
        return self.table[(app_index, 0 if core_type == BIG else 1)]


@st.composite
def objective_tables(draw):
    return {
        (i, t): draw(st.floats(0.1, 100.0))
        for i in range(4)
        for t in (0, 1)
    }


class TestSchedulerInvariants:
    @settings(max_examples=25, deadline=None)
    @given(objective_tables(), st.integers(3, 30))
    def test_valid_placement_under_any_objective(self, table, quanta):
        """Whatever the objective values, every plan places each app on
        exactly one in-range core and quantum fractions sum to 1."""
        machine = machine_2b2s()
        sched = ValueScheduler(machine, 4, table)
        for q in range(quanta):
            plans = sched.plan_quantum(q)
            assert math.isclose(sum(p.fraction for p in plans), 1.0)
            for plan in plans:
                plan.assignment.validate(machine)
                assert sorted(plan.assignment.core_of) == [0, 1, 2, 3]
            for plan in plans:
                obs = [
                    Observation(
                        i, plan.assignment.core_of[i],
                        plan.assignment.core_type_of(i, machine),
                        plan.fraction * 1e-3, 1_000_000, 1.0,
                    )
                    for i in range(4)
                ]
                sched.observe(plan, obs)

    @settings(max_examples=25, deadline=None)
    @given(objective_tables())
    def test_converged_assignment_is_pair_swap_stable(self, table):
        """Once the scheduler stops swapping, no single pair swap can
        improve the objective beyond the hysteresis threshold."""
        machine = machine_2b2s()
        sched = ValueScheduler(machine, 4, table)
        for q in range(6):
            plans = sched.plan_quantum(q)
            for plan in plans:
                obs = [
                    Observation(
                        i, plan.assignment.core_of[i],
                        plan.assignment.core_type_of(i, machine),
                        plan.fraction * 1e-3, 1_000_000, 1.0,
                    )
                    for i in range(4)
                ]
                sched.observe(plan, obs)
        final = sched.plan_quantum(7)[-1].assignment
        types = {i: final.core_type_of(i, machine) for i in range(4)}
        total = sum(sched.objective_value(i, types[i]) for i in range(4))
        threshold = sched.swap_threshold * sum(
            abs(sched.objective_value(i, types[i])) for i in range(4)
        )
        for a in range(4):
            for b in range(4):
                if types[a] == BIG and types[b] == SMALL:
                    swapped = (
                        total
                        - sched.objective_value(a, BIG)
                        - sched.objective_value(b, SMALL)
                        + sched.objective_value(a, SMALL)
                        + sched.objective_value(b, BIG)
                    )
                    assert swapped >= total - threshold - 1e-9


class TestMechanisticMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(
        l3_a=st.floats(0.0, 8.0),
        l3_b=st.floats(0.0, 8.0),
        mlp=st.floats(1.0, 6.0),
    )
    def test_more_dram_misses_never_speed_up(self, l3_a, l3_b, mlp):
        lo, hi = sorted((l3_a, l3_b))
        core, mem = big_core_config(), MemoryConfig()
        low = analyze_big_phase(
            PhaseCharacteristics(l1d_mpki=20, l2_mpki=10, l3_mpki=lo, mlp=mlp),
            core, mem, ISOLATED,
        )
        high = analyze_big_phase(
            PhaseCharacteristics(l1d_mpki=20, l2_mpki=10, l3_mpki=hi, mlp=mlp),
            core, mem, ISOLATED,
        )
        assert high.cpi >= low.cpi - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(share=st.floats(0.01, 1.0), mult=st.floats(1.0, 10.0))
    def test_contention_never_helps(self, share, mult):
        chars = PhaseCharacteristics(
            l1d_mpki=20, l2_mpki=10, l3_mpki=3, cache_sensitivity=0.7
        )
        core, mem = big_core_config(), MemoryConfig()
        iso = analyze_big_phase(chars, core, mem, ISOLATED)
        contended = analyze_big_phase(
            chars, core, mem,
            MemoryEnvironment(l3_share_fraction=share,
                              dram_latency_multiplier=mult),
        )
        assert contended.ipc <= iso.ipc + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(brm=st.floats(0.0, 20.0))
    def test_avf_in_unit_interval(self, brm):
        chars = PhaseCharacteristics(branch_mpki=brm)
        core, mem = big_core_config(), MemoryConfig()
        analysis = analyze_big_phase(chars, core, mem, ISOLATED)
        assert 0.0 < analysis.avf(core) < 1.0


class TestWserTimeSlicing:
    @settings(max_examples=50, deadline=None)
    @given(
        r_big=st.floats(1.0, 100.0),
        r_small_frac=st.floats(0.01, 0.5),
        w_small_frac=st.floats(0.1, 0.9),
        f=st.floats(0.05, 0.95),
    )
    def test_time_slicing_never_beats_best_static(
        self, r_big, r_small_frac, w_small_frac, f
    ):
        """wSER of a big/small time-slice is never below the better of
        the two static placements -- the property behind the swap
        hysteresis (DESIGN.md Section 5)."""
        r_small = r_big * r_small_frac  # ABC rate small < big
        w_big, w_small = 1.0, w_small_frac  # work rates (ref work/s)
        static_big = r_big / w_big
        static_small = r_small / w_small
        mixed = (f * r_big + (1 - f) * r_small) / (
            f * w_big + (1 - f) * w_small
        )
        assert mixed >= min(static_big, static_small) - 1e-9
