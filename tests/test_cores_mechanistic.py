"""Tests for the mechanistic core model."""

import pytest
from hypothesis import given, settings, strategies as st
from dataclasses import replace

from repro.config import MemoryConfig, big_core_config, small_core_config
from repro.config.structures import StructureKind
from repro.cores.base import ISOLATED, MemoryEnvironment
from repro.cores.mechanistic import (
    MechanisticCoreModel,
    analyze_big_phase,
    analyze_phase,
    analyze_small_phase,
)
from repro.workloads.characteristics import (
    BenchmarkProfile,
    PhaseCharacteristics,
)
from repro.workloads.spec2006 import benchmark


def _chars(**kwargs):
    return PhaseCharacteristics(**kwargs)


class TestBigCoreCpi:
    def test_cpi_components_present(self, big_core, memory):
        analysis = analyze_big_phase(_chars(), big_core, memory, ISOLATED)
        assert set(analysis.cpi_components) == {
            "base", "resource", "bpred", "icache", "l2", "llc", "mem",
        }
        assert analysis.cpi == pytest.approx(1.0 / analysis.ipc)

    def test_base_cpi_floor_is_width(self, big_core, memory):
        analysis = analyze_big_phase(_chars(), big_core, memory, ISOLATED)
        assert analysis.cpi_components["base"] == pytest.approx(0.25)

    def test_more_mispredicts_higher_cpi(self, big_core, memory):
        low = analyze_big_phase(_chars(branch_mpki=1.0), big_core, memory, ISOLATED)
        high = analyze_big_phase(_chars(branch_mpki=15.0), big_core, memory, ISOLATED)
        assert high.cpi > low.cpi

    def test_more_l3_misses_higher_memory_cpi(self, big_core, memory):
        low = analyze_big_phase(
            _chars(l1d_mpki=20, l2_mpki=10, l3_mpki=1), big_core, memory, ISOLATED
        )
        high = analyze_big_phase(
            _chars(l1d_mpki=20, l2_mpki=10, l3_mpki=8), big_core, memory, ISOLATED
        )
        assert high.cpi_components["mem"] > low.cpi_components["mem"]
        assert high.dram_accesses_per_instruction > low.dram_accesses_per_instruction

    def test_mlp_hides_memory_latency(self, big_core, memory):
        serial = analyze_big_phase(
            _chars(l1d_mpki=20, l2_mpki=10, l3_mpki=5, mlp=1.0),
            big_core, memory, ISOLATED,
        )
        parallel = analyze_big_phase(
            _chars(l1d_mpki=20, l2_mpki=10, l3_mpki=5, mlp=4.0),
            big_core, memory, ISOLATED,
        )
        assert parallel.cpi_components["mem"] == pytest.approx(
            serial.cpi_components["mem"] / 4.0
        )

    def test_higher_ilp_lower_resource_stall(self, big_core, memory):
        chained = analyze_big_phase(_chars(dep_distance_mean=2.0),
                                    big_core, memory, ISOLATED)
        parallel = analyze_big_phase(_chars(dep_distance_mean=8.0),
                                     big_core, memory, ISOLATED)
        assert parallel.cpi_components["resource"] < chained.cpi_components["resource"]

    def test_contention_environment_raises_cpi(self, big_core, memory):
        chars = _chars(l1d_mpki=20, l2_mpki=10, l3_mpki=2, cache_sensitivity=0.8)
        contended = MemoryEnvironment(
            l3_share_fraction=0.25, dram_latency_multiplier=1.5
        )
        iso = analyze_big_phase(chars, big_core, memory, ISOLATED)
        shared = analyze_big_phase(chars, big_core, memory, contended)
        assert shared.cpi > iso.cpi
        assert shared.dram_accesses_per_instruction > iso.dram_accesses_per_instruction

    def test_wrong_core_type_rejected(self, big_core, small_core, memory):
        with pytest.raises(ValueError):
            analyze_big_phase(_chars(), small_core, memory, ISOLATED)
        with pytest.raises(ValueError):
            analyze_small_phase(_chars(), big_core, memory, ISOLATED)

    def test_analyze_phase_dispatches(self, big_core, small_core, memory):
        big = analyze_phase(_chars(), big_core, memory, ISOLATED)
        small = analyze_phase(_chars(), small_core, memory, ISOLATED)
        assert big.ipc > small.ipc


class TestOccupancyAndAce:
    def test_rob_dominates_big_core_ace(self, big_core, memory):
        analysis = analyze_big_phase(_chars(branch_mpki=0.5), big_core,
                                     memory, ISOLATED)
        rob = analysis.ace_bits_per_cycle[StructureKind.ROB]
        assert rob / analysis.total_ace_bits_per_cycle > 0.3

    def test_ace_never_exceeds_occupancy(self, big_core, memory):
        analysis = analyze_big_phase(_chars(), big_core, memory, ISOLATED)
        for kind, ace in analysis.ace_bits_per_cycle.items():
            assert ace <= analysis.occupancy_bits_per_cycle[kind] + 1e-9

    def test_avf_in_unit_range(self, big_core, memory):
        for name in ("milc", "mcf", "povray"):
            chars = benchmark(name).phases[0][1]
            analysis = analyze_big_phase(chars, big_core, memory, ISOLATED)
            assert 0.0 < analysis.avf(big_core) < 1.0

    def test_front_end_misses_reduce_ace(self, big_core, memory):
        clean = analyze_big_phase(_chars(branch_mpki=0.5), big_core,
                                  memory, ISOLATED)
        noisy = analyze_big_phase(_chars(branch_mpki=15.0), big_core,
                                  memory, ISOLATED)
        assert noisy.total_ace_bits_per_cycle < clean.total_ace_bits_per_cycle

    def test_wrong_path_under_miss_reduces_ace(self, big_core, memory):
        """The mcf effect: branches depending on missing loads fill the
        ROB with un-ACE wrong-path state."""
        base = dict(l1d_mpki=40, l2_mpki=30, l3_mpki=20, branch_mpki=10)
        independent = analyze_big_phase(
            _chars(**base, branch_depends_on_load_prob=0.0),
            big_core, memory, ISOLATED,
        )
        dependent = analyze_big_phase(
            _chars(**base, branch_depends_on_load_prob=0.9),
            big_core, memory, ISOLATED,
        )
        assert (
            dependent.total_ace_bits_per_cycle
            < independent.total_ace_bits_per_cycle
        )

    def test_small_core_ace_much_smaller(self, big_core, small_core, memory):
        chars = benchmark("milc").phases[0][1]
        big = analyze_big_phase(chars, big_core, memory, ISOLATED)
        small = analyze_small_phase(chars, small_core, memory, ISOLATED)
        assert big.total_ace_bits_per_cycle > 5 * small.total_ace_bits_per_cycle

    def test_big_core_faster(self, big_core, small_core, memory):
        for name in ("milc", "mcf", "povray", "hmmer"):
            chars = benchmark(name).phases[0][1]
            big = analyze_big_phase(chars, big_core, memory, ISOLATED)
            small = analyze_small_phase(chars, small_core, memory, ISOLATED)
            assert big.ipc > small.ipc


class TestFrequencyScaling:
    def test_lower_frequency_fewer_dram_cycles(self, memory):
        chars = _chars(l1d_mpki=20, l2_mpki=10, l3_mpki=5)
        fast = analyze_small_phase(chars, small_core_config(2.66), memory, ISOLATED)
        slow = analyze_small_phase(chars, small_core_config(1.33), memory, ISOLATED)
        # Fewer cycles of DRAM wait at lower clock => lower memory CPI.
        assert slow.cpi_components["mem"] < fast.cpi_components["mem"]
        # But wall-clock performance is still worse at half the clock.
        assert slow.ipc * 1.33 < fast.ipc * 2.66


class TestRunCycles:
    def test_respects_cycle_budget(self, big_core, memory):
        model = MechanisticCoreModel(big_core, memory)
        prof = benchmark("povray").scaled(10_000_000)
        result = model.run_cycles(prof, 0, 100_000, ISOLATED)
        assert result.cycles == pytest.approx(100_000, rel=0.01)
        assert result.instructions > 0

    def test_zero_budget(self, big_core, memory):
        model = MechanisticCoreModel(big_core, memory)
        result = model.run_cycles(benchmark("povray"), 0, 0, ISOLATED)
        assert result.instructions == 0

    def test_crosses_phase_boundary(self, big_core, memory):
        model = MechanisticCoreModel(big_core, memory)
        prof = benchmark("calculix").scaled(10_000)
        # Start just before the 75% boundary and run far past it.
        result = model.run_cycles(prof, 7_400, 1_000_000, ISOLATED)
        assert result.instructions > 200

    def test_abc_accumulates_with_budget(self, big_core, memory):
        model = MechanisticCoreModel(big_core, memory)
        prof = benchmark("milc").scaled(100_000_000)
        small = model.run_cycles(prof, 0, 50_000, ISOLATED)
        large = model.run_cycles(prof, 0, 500_000, ISOLATED)
        assert large.total_ace_bit_cycles == pytest.approx(
            10 * small.total_ace_bit_cycles, rel=0.05
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1000, 500_000), st.integers(0, 9_000_000))
    def test_result_invariants(self, budget, start):
        model = MechanisticCoreModel(big_core_config(), MemoryConfig())
        prof = benchmark("soplex").scaled(10_000_000)
        result = model.run_cycles(prof, start, budget, ISOLATED)
        assert result.instructions >= 0
        assert result.cycles <= budget * 1.01 + 1
        assert result.total_ace_bit_cycles >= 0
        assert all(v >= 0 for v in result.ace_bit_cycles.values())
