"""Tests for the seeded differential fuzzer."""

import pytest

from repro.check import FuzzReport, fuzz
from repro.check.differential import FuzzGates, check_agreement
from repro.validation.crossmodel import (
    BenchmarkAgreement,
    ModelAgreement,
    spearman,
)


def _agreement(rows):
    return ModelAgreement(rows=tuple(
        BenchmarkAgreement(
            name=f"b{i}",
            core_type=core,
            trace_ipc=tipc,
            mechanistic_ipc=mipc,
            trace_abc_per_cycle=tabc,
            mechanistic_abc_per_cycle=mabc,
        )
        for i, (core, tipc, mipc, tabc, mabc) in enumerate(rows)
    ))


def _concordant(n=4):
    rows = []
    for core in ("big", "small"):
        for i in range(n):
            value = 1.0 + i
            rows.append((core, value, value * 1.1, value, value * 0.9))
    return _agreement(rows)


class TestSpearmanFallback:
    def test_matches_known_values(self):
        assert spearman([1, 2, 3, 4], [1, 2, 3, 4]) == pytest.approx(1.0)
        assert spearman([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_numpy_fallback_agrees_with_scipy(self, monkeypatch):
        scipy = pytest.importorskip("scipy.stats")
        xs = [0.3, 1.2, 0.9, 2.2, 1.7, 0.1]
        ys = [0.2, 1.4, 1.1, 1.9, 2.5, 0.4]
        expected = float(scipy.spearmanr(xs, ys).statistic)
        import builtins

        real_import = builtins.__import__

        def no_scipy(name, *args, **kwargs):
            if name.startswith("scipy"):
                raise ImportError(name)
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_scipy)
        assert spearman(xs, ys) == pytest.approx(expected)

    def test_rejects_degenerate_samples(self):
        with pytest.raises(ValueError):
            spearman([1.0], [2.0])
        with pytest.raises(ValueError):
            spearman([1.0, 2.0], [1.0])


class TestAgreementGates:
    def test_concordant_sample_passes(self):
        report = check_agreement(_concordant())
        assert report.ok and not report.errors

    def test_rank_inversion_flagged(self):
        rows = []
        for core in ("big", "small"):
            for i in range(4):
                # Mechanistic IPC ranks exactly opposite the trace IPC.
                rows.append((core, 1.0 + i, 4.0 - i, 1.0 + i, 1.0 + i))
        report = check_agreement(_agreement(rows))
        assert not report.ok
        assert "rank_agreement" in report.invariant_names()

    def test_ratio_blowout_flagged(self):
        rows = []
        for core in ("big", "small"):
            for i in range(4):
                value = 1.0 + i
                rows.append((core, value, value, value, value * 1000.0))
        report = check_agreement(_agreement(rows))
        assert "cross_model_ratio_bounds" in report.invariant_names()

    def test_small_core_abc_disagreement_is_only_a_warning(self):
        rows = []
        for core in ("big", "small"):
            for i in range(4):
                value = 1.0 + i
                abc_mech = value if core == "big" else 4.0 - i
                rows.append((core, value, value, value, abc_mech))
        report = check_agreement(_agreement(rows))
        assert report.ok
        assert "small_abc_rank_agreement" in report.invariant_names()
        assert report.warnings and not report.errors

    def test_custom_gates_respected(self):
        gates = FuzzGates(min_spearman_ipc=1.1)  # unsatisfiable
        report = check_agreement(_concordant(), gates)
        assert not report.ok


class TestFuzz:
    @pytest.fixture(scope="class")
    def session(self):
        return fuzz(0, model_cases=1, run_cases=2, stack_cases=1)

    def test_seeded_session_passes(self, session):
        assert isinstance(session, FuzzReport)
        assert session.ok, session.format()
        # + default kernel_cases=2, decision_cases=2, resume_cases=2,
        # service_cases=2, batch_cases=2, shard_cases=2, mode_cases=2
        assert len(session.reports) == 18

    def test_same_seed_reproduces_byte_identical_findings(self, session):
        again = fuzz(0, model_cases=1, run_cases=2, stack_cases=1)
        assert again.format() == session.format()
        assert again == session

    def test_different_seed_differs(self, session):
        other = fuzz(1, model_cases=1, run_cases=2, stack_cases=1)
        assert other.format() != session.format()

    def test_format_names_every_case(self, session):
        text = session.format()
        assert "fuzz seed=0" in text
        for prefix in ("model/0", "run/0", "run/1", "stack/0", "kernel/0",
                       "kernel/1", "decision/0", "decision/1", "resume/0",
                       "resume/1", "service/0", "service/1", "batch/0",
                       "batch/1", "mode/0", "mode/1"):
            assert prefix in text

    def test_decision_cases_validate_traces(self, session):
        decisions = [r for r in session.reports
                     if r.subject.startswith("decision/")]
        assert len(decisions) == 2
        for report in decisions:
            assert report.checked == ("decision_trace_consistency",)

    def test_kernel_cases_check_both_models(self, session):
        kernels = [r for r in session.reports
                   if r.subject.startswith("kernel/")]
        assert len(kernels) == 2
        for report in kernels:
            assert report.checked == ("kernel_timing_equivalence",
                                      "kernel_cache_state_equivalence")

    def test_resume_cases_check_equivalence(self, session):
        resumes = [r for r in session.reports
                   if r.subject.startswith("resume/")]
        assert len(resumes) == 2
        for report in resumes:
            assert report.checked == ("resume_equivalence",)

    def test_service_cases_check_feeds_and_conservation(self, session):
        services = [r for r in session.reports
                    if r.subject.startswith("service/")]
        assert len(services) == 2
        for report in services:
            assert "service_feed_determinism" in report.checked
            assert "open_system_conservation" in report.checked
            assert "decision_trace_consistency" in report.checked

    def test_case_counts_respected(self):
        tiny = fuzz(5, model_cases=0, run_cases=1, stack_cases=0,
                    kernel_cases=0, decision_cases=0, resume_cases=0,
                    service_cases=0, batch_cases=0, shard_cases=0,
                    mode_cases=0)
        assert len(tiny.reports) == 1
        assert tiny.reports[0].subject.startswith("run/0")
