"""Tests for the disk-cached campaign runner."""

import pytest

from repro.sim.campaign import Campaign, RunSpec
from repro.workloads.mixes import WorkloadMix

NAMES = ("povray", "milc", "gobmk", "bzip2")


def _spec(**overrides):
    base = dict(
        machine="2B2S",
        benchmarks=NAMES,
        scheduler="reliability",
        instructions=2_000_000,
        seed=0,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpec:
    def test_key_stable(self):
        assert _spec().key() == _spec().key()

    def test_key_sensitive_to_every_field(self):
        base = _spec().key()
        assert _spec(scheduler="random").key() != base
        assert _spec(seed=1).key() != base
        assert _spec(instructions=3_000_000).key() != base
        assert _spec(small_frequency_ghz=1.33).key() != base
        assert _spec(sampling=(5, 1e-4)).key() != base

    def test_build_machine_applies_overrides(self):
        machine = _spec(
            small_frequency_ghz=1.33, sampling=(20, 5e-5)
        ).build_machine()
        assert machine.small.frequency_ghz == pytest.approx(1.33)
        assert machine.sampling_period_quanta == 20


class TestCampaign:
    def test_cache_hit_on_second_run(self, tmp_path):
        campaign = Campaign(tmp_path)
        spec = _spec()
        first = campaign.run(spec)
        assert campaign.misses == 1 and campaign.hits == 0
        second = campaign.run(spec)
        assert campaign.hits == 1
        assert second.sser == pytest.approx(first.sser)
        assert campaign.is_cached(spec)

    def test_cache_persists_across_instances(self, tmp_path):
        Campaign(tmp_path).run(_spec())
        again = Campaign(tmp_path)
        again.run(_spec())
        assert again.hits == 1 and again.misses == 0

    def test_sweep_shapes(self, tmp_path):
        campaign = Campaign(tmp_path)
        workloads = [WorkloadMix("MHLM", NAMES)]
        results = campaign.sweep(
            "2B2S", workloads, ("random", "reliability"), 2_000_000
        )
        assert set(results) == {"random", "reliability"}
        assert len(results["random"]) == 1

    def test_clear(self, tmp_path):
        campaign = Campaign(tmp_path)
        campaign.run(_spec())
        assert campaign.clear() == 1
        assert not campaign.is_cached(_spec())
