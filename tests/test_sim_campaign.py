"""Tests for the disk-cached campaign runner."""

import dataclasses
import hashlib
import json

import pytest

from repro.sim.campaign import Campaign, RunSpec
from repro.workloads.mixes import WorkloadMix

NAMES = ("povray", "milc", "gobmk", "bzip2")


def _spec(**overrides):
    base = dict(
        machine="2B2S",
        benchmarks=NAMES,
        scheduler="reliability",
        instructions=2_000_000,
        seed=0,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpec:
    def test_key_stable(self):
        assert _spec().key() == _spec().key()

    def test_key_sensitive_to_every_field(self):
        base = _spec().key()
        assert _spec(scheduler="random").key() != base
        assert _spec(seed=1).key() != base
        assert _spec(instructions=3_000_000).key() != base
        assert _spec(small_frequency_ghz=1.33).key() != base
        assert _spec(sampling=(5, 1e-4)).key() != base

    def test_key_audit_covers_every_field(self):
        """No spec field may ever be silently omitted from the key.

        Two specs differing in *any* single field -- including ones
        added after this test was written -- must get distinct cache
        keys, or a sweep would silently reuse another run's result.
        """
        variants = {
            "machine": "1B1S",
            "benchmarks": ("mcf", "lbm"),
            "scheduler": "performance",
            "instructions": 123,
            "seed": 99,
            "counter_mode": "rob_only",
            "small_frequency_ghz": 1.33,
            "sampling": (10, 2e-4),
        }
        fields = {f.name for f in dataclasses.fields(RunSpec)}
        missing = fields - set(variants)
        assert not missing, (
            f"RunSpec grew field(s) {sorted(missing)}; add a distinct "
            f"variant value here so the cache-key audit covers them"
        )
        base = _spec().key()
        for name, value in variants.items():
            changed = _spec(**{name: value})
            assert changed.key() != base, (
                f"changing {name!r} did not change the cache key"
            )

    def test_keys_pairwise_distinct_across_single_field_changes(self):
        specs = [
            _spec(),
            _spec(scheduler="random"),
            _spec(seed=1),
            _spec(counter_mode="rob_only"),
            _spec(sampling=(5, 1e-4)),
            _spec(small_frequency_ghz=1.33),
        ]
        keys = [s.key() for s in specs]
        assert len(set(keys)) == len(keys)

    def test_key_format_backward_compatible(self):
        """The key still hashes the original hand-written payload, so
        cache directories written before the structural derivation
        remain valid."""
        spec = _spec()
        payload = json.dumps(
            {
                "machine": spec.machine,
                "benchmarks": list(spec.benchmarks),
                "scheduler": spec.scheduler,
                "instructions": spec.instructions,
                "seed": spec.seed,
                "counter_mode": spec.counter_mode,
                "small_frequency_ghz": spec.small_frequency_ghz,
                "sampling": list(spec.sampling) if spec.sampling else None,
            },
            sort_keys=True,
        )
        expected = hashlib.sha256(payload.encode()).hexdigest()[:24]
        assert spec.key() == expected

    def test_build_machine_applies_overrides(self):
        machine = _spec(
            small_frequency_ghz=1.33, sampling=(20, 5e-5)
        ).build_machine()
        assert machine.small.frequency_ghz == pytest.approx(1.33)
        assert machine.sampling_period_quanta == 20


class TestCampaign:
    def test_cache_hit_on_second_run(self, tmp_path):
        campaign = Campaign(tmp_path)
        spec = _spec()
        first = campaign.run(spec)
        assert campaign.misses == 1 and campaign.hits == 0
        second = campaign.run(spec)
        assert campaign.hits == 1
        assert second.sser == pytest.approx(first.sser)
        assert campaign.is_cached(spec)

    def test_cache_persists_across_instances(self, tmp_path):
        Campaign(tmp_path).run(_spec())
        again = Campaign(tmp_path)
        again.run(_spec())
        assert again.hits == 1 and again.misses == 0

    def test_sweep_shapes(self, tmp_path):
        campaign = Campaign(tmp_path)
        workloads = [WorkloadMix("MHLM", NAMES)]
        results = campaign.sweep(
            "2B2S", workloads, ("random", "reliability"), 2_000_000
        )
        assert set(results) == {"random", "reliability"}
        assert len(results["random"]) == 1

    def test_clear(self, tmp_path):
        campaign = Campaign(tmp_path)
        campaign.run(_spec())
        assert campaign.clear() == 1
        assert not campaign.is_cached(_spec())
