"""Tests for the structured campaign event stream."""

import io
import json

import pytest

from repro.runtime.events import (
    CallbackSink,
    CampaignFinished,
    CampaignStarted,
    CheckFailed,
    JobCached,
    JobFailed,
    JobFinished,
    JobStarted,
    JsonlEventSink,
    MetricsSnapshot,
    StderrProgressSink,
    UnknownEvent,
    event_from_dict,
    read_events,
    replay_timings,
)

EVENTS = [
    CampaignStarted(total=3),
    JobStarted(index=0, label="a"),
    JobFinished(index=0, label="a", wall_seconds=1.5, attempts=2,
                sser=1e-20, stp=3.1),
    JobCached(index=1, label="b", wall_seconds=0.01),
    JobFailed(index=2, label="c", error="boom", attempts=3,
              wall_seconds=0.4),
    CampaignFinished(total=3, completed=2, cached=1, failed=1,
                     wall_seconds=2.0),
]


class TestEventCodec:
    def test_round_trip(self):
        for event in EVENTS:
            data = json.loads(json.dumps(event.to_dict()))
            assert event_from_dict(data) == event

    def test_unknown_kind_degrades_to_unknown_event(self):
        raw = {"event": "job_levitated", "index": 7, "timestamp": 12.5}
        event = event_from_dict(raw)
        assert isinstance(event, UnknownEvent)
        assert event.data == raw
        assert event.timestamp == 12.5
        # The raw dict round-trips unchanged through the codec.
        assert event.to_dict() == raw
        assert event_from_dict(event.to_dict()) == event

    def test_unknown_fields_on_known_kind_degrade(self):
        raw = {"event": "job_started", "index": 0, "label": "a",
               "from_the_future": True}
        event = event_from_dict(raw)
        assert isinstance(event, UnknownEvent)
        assert event.data == raw

    def test_unknown_event_in_log_replay(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path)
        sink.emit(CampaignStarted(total=1))
        sink.close()
        with path.open("a") as handle:
            handle.write(json.dumps({"event": "job_levitated"}) + "\n")
            handle.write(
                json.dumps(JobFinished(index=0, label="a",
                                       wall_seconds=1.0).to_dict()) + "\n"
            )
        events = read_events(path)
        assert [type(e).__name__ for e in events] == [
            "CampaignStarted", "UnknownEvent", "JobFinished"
        ]
        # Replay skips what it does not understand.
        assert len(replay_timings(events)) == 1

    def test_metrics_snapshot_round_trip(self):
        event = MetricsSnapshot(
            index=2, label="x",
            metrics={"series": [{"name": "n", "labels": {}, "kind":
                                 "counter", "data": {"value": 3.0}}]},
        )
        data = json.loads(json.dumps(event.to_dict()))
        assert event_from_dict(data) == event

    def test_dict_has_kind_and_timestamp(self):
        data = JobStarted(index=0, label="a").to_dict()
        assert data["event"] == "job_started"
        assert data["timestamp"] > 0


class TestJsonlSink:
    def test_appends_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "log" / "events.jsonl"
        sink = JsonlEventSink(path)
        for event in EVENTS:
            sink.emit(event)
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == len(EVENTS)
        assert json.loads(lines[0])["event"] == "campaign_started"
        assert read_events(path) == EVENTS

    def test_close_idempotent(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "e.jsonl")
        sink.emit(EVENTS[0])
        sink.close()
        sink.close()


class TestReplayTimings:
    def test_per_job_timings_in_index_order(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path)
        for event in EVENTS:
            sink.emit(event)
        sink.close()
        timings = replay_timings(path)
        assert [t.index for t in timings] == [0, 1, 2]
        assert timings[0].status == "ok"
        assert timings[0].wall_seconds == pytest.approx(1.5)
        assert timings[0].attempts == 2
        assert timings[1].status == "cached"
        assert timings[2].status == "failed"

    def test_rerun_into_same_log_keeps_last(self):
        events = EVENTS + [
            JobFinished(index=2, label="c", wall_seconds=0.2)
        ]
        timings = replay_timings(events)
        assert timings[2].status == "ok"


class TestProgressSink:
    def emit_all(self, **kwargs):
        stream = io.StringIO()
        sink = StderrProgressSink(stream=stream, **kwargs)
        for event in EVENTS:
            sink.emit(event)
        return stream.getvalue()

    def test_counts_and_statuses(self):
        out = self.emit_all()
        assert "campaign: 3 jobs" in out
        assert "[1/3] done     a" in out
        assert "sser=1.000e-20" in out
        assert "[2/3] cached   b" in out
        assert "[3/3] FAILED   c" in out and "boom" in out
        assert "2 ok, 1 cached, 1 failed" in out

    def test_starts_hidden_by_default(self):
        assert "start" not in self.emit_all()
        assert "start    a" in self.emit_all(show_starts=True)


class TestCallbackSink:
    def test_forwards(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit(EVENTS[0])
        assert seen == [EVENTS[0]]


class TestCheckFailedEvent:
    EVENT = CheckFailed(index=1, label="b", detail="milc.wser drifted",
                        invariants=("wser_definition", "sser_decomposition"))

    def test_round_trip_restores_tuple(self):
        data = json.loads(json.dumps(self.EVENT.to_dict()))
        restored = event_from_dict(data)
        assert restored == self.EVENT
        assert isinstance(restored.invariants, tuple)

    def test_progress_line_names_invariants(self):
        stream = io.StringIO()
        StderrProgressSink(stream=stream).emit(self.EVENT)
        out = stream.getvalue()
        assert "CHECK" in out and "wser_definition" in out

    def test_not_terminal_for_replay(self):
        # A check failure is followed by JobFailed; replay must count
        # the job once, as failed.
        events = [
            CampaignStarted(total=1),
            JobStarted(index=0, label="a"),
            CheckFailed(index=0, label="a", invariants=("x",)),
            JobFailed(index=0, label="a", error="check failed",
                      wall_seconds=0.1),
        ]
        timings = replay_timings(events)
        assert len(timings) == 1 and timings[0].status == "failed"


class TestCorruptEventLogs:
    def write_log(self, tmp_path, lines):
        path = tmp_path / "events.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def good_lines(self, count=2):
        return [json.dumps(e.to_dict()) for e in EVENTS[:count]]

    def test_truncated_final_line_skipped_with_warning(self, tmp_path):
        lines = self.good_lines() + ['{"event": "job_fini']
        path = self.write_log(tmp_path, lines)
        with pytest.warns(UserWarning, match="line 3"):
            events = read_events(path)
        assert events == EVENTS[:2]

    def test_unknown_final_event_preserved(self, tmp_path):
        # Unknown kinds are forward-compatible data, not corruption:
        # they degrade to UnknownEvent instead of being dropped.
        lines = self.good_lines() + ['{"event": "job_levitated"}']
        path = self.write_log(tmp_path, lines)
        events = read_events(path)
        assert events[:2] == EVENTS[:2]
        assert isinstance(events[2], UnknownEvent)
        assert events[2].data == {"event": "job_levitated"}

    def test_mid_file_corruption_raises(self, tmp_path):
        lines = self.good_lines(1) + ["{ nope", self.good_lines(2)[1]]
        path = self.write_log(tmp_path, lines)
        with pytest.raises(ValueError, match="line 2"):
            read_events(path)

    def test_blank_lines_ignored(self, tmp_path):
        lines = [self.good_lines(1)[0], "", "  ", self.good_lines(2)[1]]
        path = self.write_log(tmp_path, lines)
        assert read_events(path) == EVENTS[:2]

    def test_clean_log_unchanged(self, tmp_path):
        path = self.write_log(
            tmp_path, [json.dumps(e.to_dict()) for e in EVENTS]
        )
        assert read_events(path) == EVENTS
