"""Tests for the structured campaign event stream."""

import io
import json

import pytest

from repro.runtime.events import (
    CallbackSink,
    CampaignFinished,
    CampaignStarted,
    JobCached,
    JobFailed,
    JobFinished,
    JobStarted,
    JsonlEventSink,
    StderrProgressSink,
    event_from_dict,
    read_events,
    replay_timings,
)

EVENTS = [
    CampaignStarted(total=3),
    JobStarted(index=0, label="a"),
    JobFinished(index=0, label="a", wall_seconds=1.5, attempts=2,
                sser=1e-20, stp=3.1),
    JobCached(index=1, label="b", wall_seconds=0.01),
    JobFailed(index=2, label="c", error="boom", attempts=3,
              wall_seconds=0.4),
    CampaignFinished(total=3, completed=2, cached=1, failed=1,
                     wall_seconds=2.0),
]


class TestEventCodec:
    def test_round_trip(self):
        for event in EVENTS:
            data = json.loads(json.dumps(event.to_dict()))
            assert event_from_dict(data) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event"):
            event_from_dict({"event": "job_levitated"})

    def test_dict_has_kind_and_timestamp(self):
        data = JobStarted(index=0, label="a").to_dict()
        assert data["event"] == "job_started"
        assert data["timestamp"] > 0


class TestJsonlSink:
    def test_appends_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "log" / "events.jsonl"
        sink = JsonlEventSink(path)
        for event in EVENTS:
            sink.emit(event)
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == len(EVENTS)
        assert json.loads(lines[0])["event"] == "campaign_started"
        assert read_events(path) == EVENTS

    def test_close_idempotent(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "e.jsonl")
        sink.emit(EVENTS[0])
        sink.close()
        sink.close()


class TestReplayTimings:
    def test_per_job_timings_in_index_order(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path)
        for event in EVENTS:
            sink.emit(event)
        sink.close()
        timings = replay_timings(path)
        assert [t.index for t in timings] == [0, 1, 2]
        assert timings[0].status == "ok"
        assert timings[0].wall_seconds == pytest.approx(1.5)
        assert timings[0].attempts == 2
        assert timings[1].status == "cached"
        assert timings[2].status == "failed"

    def test_rerun_into_same_log_keeps_last(self):
        events = EVENTS + [
            JobFinished(index=2, label="c", wall_seconds=0.2)
        ]
        timings = replay_timings(events)
        assert timings[2].status == "ok"


class TestProgressSink:
    def emit_all(self, **kwargs):
        stream = io.StringIO()
        sink = StderrProgressSink(stream=stream, **kwargs)
        for event in EVENTS:
            sink.emit(event)
        return stream.getvalue()

    def test_counts_and_statuses(self):
        out = self.emit_all()
        assert "campaign: 3 jobs" in out
        assert "[1/3] done     a" in out
        assert "sser=1.000e-20" in out
        assert "[2/3] cached   b" in out
        assert "[3/3] FAILED   c" in out and "boom" in out
        assert "2 ok, 1 cached, 1 failed" in out

    def test_starts_hidden_by_default(self):
        assert "start" not in self.emit_all()
        assert "start    a" in self.emit_all(show_starts=True)


class TestCallbackSink:
    def test_forwards(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit(EVENTS[0])
        assert seen == [EVENTS[0]]
