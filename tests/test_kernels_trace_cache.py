"""Tests for the bounded trace cache."""

import numpy as np
import pytest

from repro.kernels import trace_cache
from repro.kernels.trace_cache import cache_stats, cached_generate_trace, clear_cache
from repro.workloads import benchmark
from repro.workloads.generator import generate_trace


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_hit_returns_same_object_and_matches_generate():
    profile = benchmark("soplex")
    first = cached_generate_trace(profile, 3_000, seed=5)
    second = cached_generate_trace(profile, 3_000, seed=5)
    assert second is first
    direct = generate_trace(profile, 3_000, seed=5)
    assert np.array_equal(first.classes, direct.classes)
    assert np.array_equal(first.addresses, direct.addresses)
    stats = cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_distinct_keys_do_not_collide():
    profile = benchmark("soplex")
    a = cached_generate_trace(profile, 2_000, seed=1)
    b = cached_generate_trace(profile, 2_000, seed=2)
    c = cached_generate_trace(profile, 3_000, seed=1)
    d = cached_generate_trace(benchmark("mcf"), 2_000, seed=1)
    assert len({id(t) for t in (a, b, c, d)}) == 4
    assert cache_stats()["misses"] == 4


def test_instruction_budget_evicts_lru(monkeypatch):
    monkeypatch.setenv(trace_cache._ENV_VAR, "5000")
    profile = benchmark("soplex")
    first = cached_generate_trace(profile, 3_000, seed=1)
    cached_generate_trace(profile, 3_000, seed=2)  # evicts seed=1
    assert cache_stats()["instructions"] <= 5000
    again = cached_generate_trace(profile, 3_000, seed=1)
    assert again is not first  # was evicted, regenerated
    assert np.array_equal(again.classes, first.classes)


def test_zero_budget_disables_caching(monkeypatch):
    monkeypatch.setenv(trace_cache._ENV_VAR, "0")
    profile = benchmark("soplex")
    a = cached_generate_trace(profile, 2_000, seed=3)
    b = cached_generate_trace(profile, 2_000, seed=3)
    assert a is not b
    assert cache_stats()["entries"] == 0


def test_invalid_budget_falls_back_to_default(monkeypatch):
    monkeypatch.setenv(trace_cache._ENV_VAR, "not-a-number")
    profile = benchmark("soplex")
    a = cached_generate_trace(profile, 2_000, seed=4)
    assert cached_generate_trace(profile, 2_000, seed=4) is a
