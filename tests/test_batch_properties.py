"""Properties of the cross-run batched engine (`repro.batch`).

The batched engine's contract is *byte-identity* with the scalar
reference engine, so these tests compare serialized results with plain
``==`` -- no tolerances:

* a batch of one equals the scalar path exactly;
* permuting the request batch permutes the results and nothing else;
* splitting a batch in halves and concatenating equals the full batch;
* per-run RNG streams derive from request content (the spec's seed),
  never from batch position -- results survive re-ordering and
  filtering, on the batched path and on the scalar engine alike;
* the committed ``fig06_batched`` golden agrees with the scalar
  ``fig06_1b1s`` golden field-for-field.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.ace.counters import AceCounterMode
from repro.batch import BatchRunRequest, SimState, run_workload_batch
from repro.config.machines import STANDARD_MACHINES
from repro.sim.experiment import run_workload
from repro.sim.serialize import run_result_to_dict

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

INSTRUCTIONS = 150_000


def _request(
    machine_name: str,
    benchmarks: tuple[str, ...],
    scheduler: str,
    seed: int = 0,
    mode: AceCounterMode = AceCounterMode.FULL,
) -> BatchRunRequest:
    return BatchRunRequest(
        machine=STANDARD_MACHINES[machine_name](),
        benchmarks=benchmarks,
        scheduler=scheduler,
        instructions=INSTRUCTIONS,
        seed=seed,
        counter_mode=mode,
    )


def _mixed_requests() -> list[BatchRunRequest]:
    """A small batch mixing machines, schedulers and counter modes."""
    return [
        _request("1B1S", ("milc", "povray"), "random", seed=7),
        _request("2B2S", ("zeusmp", "mcf", "gobmk", "libquantum"),
                 "reliability", seed=3),
        _request("1B1S", ("gobmk", "libquantum"), "performance"),
        _request("2B2S", ("milc", "bzip2", "hmmer", "sjeng"), "random",
                 seed=11, mode=AceCounterMode.ROB_ONLY),
        _request("1B1S", ("zeusmp", "mcf"), "reliability", seed=5),
        _request("1B1S", ("milc", "povray"), "random", seed=9),
    ]


def _dicts(results) -> list[dict]:
    return [run_result_to_dict(result) for result in results]


class TestScalarEquivalence:
    def test_batch_of_one_equals_scalar_exactly(self):
        for machine_name, names, scheduler, seed in (
            ("1B1S", ("milc", "povray"), "random", 7),
            ("2B2S", ("zeusmp", "mcf", "gobmk", "libquantum"),
             "reliability", 0),
            ("1B1S", ("gobmk", "libquantum"), "performance", 0),
        ):
            request = _request(machine_name, names, scheduler, seed=seed)
            batched = run_workload_batch([request])[0]
            scalar = run_workload(
                STANDARD_MACHINES[machine_name](),
                names,
                scheduler,
                instructions=INSTRUCTIONS,
                seed=seed,
            )
            assert run_result_to_dict(batched) == run_result_to_dict(scalar)

    def test_rob_only_counter_mode_matches_scalar(self):
        request = _request(
            "2B2S",
            ("milc", "bzip2", "hmmer", "sjeng"),
            "reliability",
            mode=AceCounterMode.ROB_ONLY,
        )
        batched = run_workload_batch([request])[0]
        scalar = run_workload(
            request.machine,
            request.benchmarks,
            request.scheduler,
            instructions=INSTRUCTIONS,
            seed=request.seed,
            counter_mode=AceCounterMode.ROB_ONLY,
        )
        assert run_result_to_dict(batched) == run_result_to_dict(scalar)


class TestBatchAlgebra:
    def test_permutation_invariance(self):
        requests = _mixed_requests()
        baseline = _dicts(run_workload_batch(requests))
        order = list(np.random.default_rng(0).permutation(len(requests)))
        permuted = _dicts(
            run_workload_batch([requests[i] for i in order])
        )
        for slot, original in enumerate(order):
            assert permuted[slot] == baseline[original]

    def test_split_in_halves_and_concatenate_equals_full_batch(self):
        requests = _mixed_requests()
        full = _dicts(run_workload_batch(requests))
        half = len(requests) // 2
        first = _dicts(run_workload_batch(requests[:half]))
        second = _dicts(run_workload_batch(requests[half:]))
        assert first + second == full


class TestSeedHandoff:
    """Per-run RNG streams follow request content, not batch position.

    The random scheduler is the seed-sensitive one: if any stream were
    derived from a run's position in the batch, dropping or reordering
    neighbors would change its decisions.
    """

    def test_batched_result_survives_filtering(self):
        requests = _mixed_requests()
        full = _dicts(run_workload_batch(requests))
        for index in (0, 3, 5):
            alone = _dicts(run_workload_batch([requests[index]]))
            assert alone == [full[index]]

    def test_scalar_engine_results_follow_spec_not_queue_position(self):
        from repro.runtime.engine import ExecutionEngine
        from repro.sim.campaign import RunSpec

        specs = [
            RunSpec("1B1S", ("milc", "povray"), "random",
                    INSTRUCTIONS, seed=7),
            RunSpec("1B1S", ("zeusmp", "mcf"), "random",
                    INSTRUCTIONS, seed=3),
            RunSpec("1B1S", ("gobmk", "libquantum"), "reliability",
                    INSTRUCTIONS, seed=0),
        ]
        baseline = _dicts(ExecutionEngine(jobs=1).run_many(specs).results)
        reordered = _dicts(
            ExecutionEngine(jobs=1).run_many(specs[::-1]).results
        )
        assert reordered == baseline[::-1]
        filtered = _dicts(
            ExecutionEngine(jobs=1).run_many([specs[1]]).results
        )
        assert filtered == [baseline[1]]

    def test_scalar_sweep_seeds_follow_workload_index(self):
        """`experiment.sweep` derives each run's seed from the workload's
        index in the list -- never from the flat job position -- so
        filtering the *scheduler* list cannot shift any seeds."""
        from repro.sim.experiment import sweep

        machine = STANDARD_MACHINES["1B1S"]()
        workloads = [("milc", "povray"), ("zeusmp", "mcf")]
        full = sweep(
            machine,
            workloads,
            ("random", "reliability"),
            instructions=INSTRUCTIONS,
        )
        only_random = sweep(
            machine, workloads, ("random",), instructions=INSTRUCTIONS
        )
        assert _dicts(only_random["random"]) == _dicts(full["random"])

    def test_batched_sweep_matches_scalar_sweep_grid(self):
        from repro.sim.experiment import sweep

        machine = STANDARD_MACHINES["1B1S"]()
        workloads = [("milc", "povray"), ("gobmk", "libquantum")]
        scalar = sweep(
            machine,
            workloads,
            ("random", "reliability"),
            instructions=INSTRUCTIONS,
        )
        batched = sweep(
            machine,
            workloads,
            ("random", "reliability"),
            instructions=INSTRUCTIONS,
            batched=True,
        )
        for scheduler in ("random", "reliability"):
            assert _dicts(batched[scheduler]) == _dicts(scalar[scheduler])


class TestSimState:
    def test_allocate_layout(self):
        state = SimState.allocate([(100, 200), (300, 400, 500), (600,)])
        assert state.num_runs == 3
        assert state.num_lanes == 6
        assert state.lanes_of(1) == (2, 5)
        assert state.profile_instructions.tolist() == [
            100, 200, 300, 400, 500, 600,
        ]
        assert state.active.all()

    def test_select_compacts_lane_ranges(self):
        state = SimState.allocate([(100, 200), (300, 400, 500), (600,)])
        state.positions[:] = np.arange(6)
        state.quantum[:] = [10, 20, 30]
        sub = state.select([2, 0])
        assert sub.num_runs == 2
        assert sub.lanes_of(0) == (0, 1)
        assert sub.lanes_of(1) == (1, 3)
        assert sub.positions.tolist() == [5, 0, 1]
        assert sub.quantum.tolist() == [30, 10]
        # The copy is independent of the parent state.
        sub.positions[0] = -1
        assert state.positions[5] == 5


class TestGoldenAgreement:
    def test_batched_golden_agrees_with_scalar_golden(self):
        """The committed fig06 goldens -- one scalar, one batched --
        freeze identical payloads; drift in either engine breaks this
        before the slower golden replay does."""
        scalar = json.loads((GOLDEN_DIR / "fig06_1b1s.json").read_text())
        batched = json.loads(
            (GOLDEN_DIR / "fig06_batched.json").read_text()
        )
        assert batched["payload"] == scalar["payload"]

    def test_batched_golden_pipeline_registered(self):
        from repro.check.golden import GOLDEN_PIPELINES

        assert "fig06_batched" in GOLDEN_PIPELINES


class TestEquivalenceInvariant:
    def test_check_batch_flags_field_level_divergence(self):
        from repro.check import check_batch

        request = _request("1B1S", ("milc", "povray"), "random", seed=7)
        scalar = run_workload_batch([request])
        batched = run_workload_batch([request])
        report = check_batch(scalar, batched)
        assert report.ok

        batched[0].apps[0].abc_seconds *= 1.0 + 1e-6
        report = check_batch(scalar, batched)
        assert not report.ok
        assert any(
            "abc_seconds" in v.message for v in report.violations
        )
        assert all(
            v.invariant == "batched_sweep_equivalence"
            for v in report.violations
        )
