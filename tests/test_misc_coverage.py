"""Small tests covering remaining utility paths."""

import pytest

from repro.config import machine_2b2s
from repro.sim.campaign import Campaign, RunSpec
from repro.workloads.generator import generate_trace
from repro.workloads.profiling import measure_intervals
from repro.workloads.spec2006 import benchmark


class TestCampaignRunAll:
    def test_run_all_order_preserved(self, tmp_path):
        campaign = Campaign(tmp_path)
        specs = [
            RunSpec("2B2S", ("povray", "milc", "gobmk", "bzip2"),
                    scheduler, 1_500_000)
            for scheduler in ("random", "reliability")
        ]
        results = campaign.run_all(specs)
        assert [r.scheduler_name for r in results] == [
            "random", "reliability"
        ]


class TestCliVerboseSweep:
    def test_verbose_writes_progress_to_stderr(self, capsys):
        from repro.cli.main import main
        assert main(["sweep", "--machine", "1B1S", "--programs", "2",
                     "--instructions", "1000000", "--verbose"]) == 0
        err = capsys.readouterr().err
        assert "sser=" in err


class TestIntervalCharacteristics:
    def test_to_characteristics_valid(self):
        trace = generate_trace(benchmark("soplex"), 20_000, seed=2)
        stats = measure_intervals(trace, interval=10_000)
        for interval in stats:
            chars = interval.to_characteristics()
            assert chars.l1d_mpki >= chars.l2_mpki >= chars.l3_mpki
            assert chars.mlp >= 1.0
            assert chars.dep_distance_mean >= 1.0

    def test_feature_vector_shape(self):
        trace = generate_trace(benchmark("soplex"), 10_000, seed=2)
        stats = measure_intervals(trace, interval=10_000)
        assert stats[0].feature_vector().shape == (8,)


class TestConstrainedHysteresis:
    def test_stays_put_within_threshold(self):
        from repro.config import BIG
        from repro.sched.base import Observation
        from repro.sched.constrained import ConstrainedReliabilityScheduler

        m = machine_2b2s()
        sched = ConstrainedReliabilityScheduler(m, 4, max_stp_loss=1.0,
                                                swap_threshold=0.5)
        # Near-tied applications: huge threshold must freeze placement.
        for q in range(2):
            plans = sched.plan_quantum(q)
            for plan in plans:
                obs = []
                for i in range(4):
                    t = plan.assignment.core_type_of(i, m)
                    abc = (1000.0 + i) if t == BIG else 100.0
                    obs.append(Observation(
                        i, plan.assignment.core_of[i], t, 1e-3,
                        1_000_000, abc * 1e-3,
                    ))
                sched.observe(plan, obs)
        first = sched.plan_quantum(2)[-1].assignment
        second = sched.plan_quantum(3)[-1].assignment
        assert first.core_of == second.core_of
