"""Slow cross-model test: multiprogram static-schedule ordering.

The ultimate validation of the mechanistic path: for one workload mix,
the *ranking of static schedules by SSER* must agree between the
mechanistic engine (paper-scale tool) and the trace-driven engine with
a physically shared L3 (the detailed reference).
"""

import itertools

import pytest

from repro.config import machine_1b1s
from repro.sched.oracle import StaticScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.sim.tracedriven import (
    run_trace_workload,
    trace_applications,
    trace_driven_models,
)
from repro.sim.isolated import ReferenceTimes, run_isolated
from repro.cores.ooo import OutOfOrderCoreModel
from repro.workloads.spec2006 import benchmark

# A pair with a *large* reliability contrast so the ordering is far
# outside both engines' noise: milc (high AVF) vs gobmk (low AVF).
MIX = ("milc", "gobmk")
TRACE_LENGTH = 60_000


@pytest.mark.slow
class TestStaticOrderingAgreement:
    def _mechanistic_ssers(self):
        machine = machine_1b1s()
        profiles = [benchmark(n).scaled(50_000_000) for n in MIX]
        ssers = {}
        for big_app in (0, 1):
            run = MulticoreSimulation(
                machine, profiles, StaticScheduler(machine, 2, (big_app,))
            ).run()
            ssers[big_app] = run.sser
        return ssers

    def _trace_driven_ssers(self):
        machine = machine_1b1s()
        ssers = {}
        for big_app in (0, 1):
            apps = trace_applications(MIX, TRACE_LENGTH, seed=9)
            # Scale quantum like run_trace_workload does.
            import dataclasses
            quantum = TRACE_LENGTH / 50 / machine.big.frequency_hz
            scaled = dataclasses.replace(
                machine,
                quantum_seconds=quantum,
                sampling_quantum_seconds=quantum / 10,
                migration_overhead_seconds=0.0,
            )
            reference_model = OutOfOrderCoreModel(scaled.big, scaled.memory)
            references = []
            for app in apps:
                run_isolated(reference_model, app)
                run = run_isolated(reference_model, app)
                references.append(ReferenceTimes.uniform(
                    app, run.cycles / scaled.big.frequency_hz
                ))
            result = MulticoreSimulation(
                scaled, apps, StaticScheduler(scaled, 2, (big_app,)),
                models=trace_driven_models(scaled),
                reference_times=references,
            ).run()
            ssers[big_app] = result.sser
        return ssers

    def test_both_engines_prefer_gobmk_on_big(self):
        mech = self._mechanistic_ssers()
        trace = self._trace_driven_ssers()
        # Placing low-AVF gobmk (index 1) on the big core must beat
        # placing high-AVF milc (index 0) there, in both engines.
        assert mech[1] < mech[0]
        assert trace[1] < trace[0]
        # And the contrast is substantial in both.
        assert mech[0] / mech[1] > 1.15
        assert trace[0] / trace[1] > 1.10
