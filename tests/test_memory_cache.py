"""Tests for the set-associative LRU cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.machines import CacheLevelConfig
from repro.memory.cache import SetAssociativeCache


def _tiny_cache(sets=2, ways=2, line=64):
    return SetAssociativeCache(
        CacheLevelConfig(sets * ways * line, ways, 1, line_bytes=line), "t"
    )


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = _tiny_cache()
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same line
        assert not c.access(64)  # next line, different set

    def test_lru_eviction(self):
        c = _tiny_cache(sets=1, ways=2)
        lines = [0, 64, 128]  # all map to the single set
        c.access(lines[0])
        c.access(lines[1])
        c.access(lines[0])  # line 0 is now MRU
        c.access(lines[2])  # evicts line 1 (LRU)
        assert c.contains(lines[0])
        assert not c.contains(lines[1])
        assert c.contains(lines[2])

    def test_stats(self):
        c = _tiny_cache()
        c.access(0)
        c.access(0)
        c.access(4096)
        assert c.stats.accesses == 3
        assert c.stats.misses == 2
        assert c.stats.hits == 1
        assert c.stats.miss_rate == pytest.approx(2 / 3)
        c.stats.reset()
        assert c.stats.accesses == 0

    def test_flush(self):
        c = _tiny_cache()
        c.access(0)
        c.flush()
        assert not c.contains(0)
        assert c.resident_lines == 0

    def test_contains_does_not_touch_lru(self):
        c = _tiny_cache(sets=1, ways=2)
        c.access(0)
        c.access(64)
        c.contains(0)  # must NOT refresh line 0
        c.access(128)  # evicts the true LRU: line 0
        assert not c.contains(0)

    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(CacheLevelConfig(960, 2, 1, line_bytes=60))


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    def test_resident_lines_bounded_by_capacity(self, addresses):
        c = _tiny_cache(sets=4, ways=2)
        for a in addresses:
            c.access(a)
        assert c.resident_lines <= 8

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    def test_immediate_rereference_always_hits(self, addresses):
        c = _tiny_cache(sets=4, ways=4)
        for a in addresses:
            c.access(a)
            assert c.access(a)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=100))
    def test_working_set_within_capacity_never_misses_twice(self, refs):
        # 8 lines working set, 8-line fully-assoc-per-set cache layout
        # with 1 set: everything fits, so each line misses at most once.
        c = _tiny_cache(sets=1, ways=8)
        misses = 0
        for r in refs:
            if not c.access(r * 64):
                misses += 1
        assert misses <= 8
