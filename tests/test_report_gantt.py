"""Tests for the ASCII schedule chart."""

import pytest

from repro.config import machine_2b2s
from repro.report.gantt import migration_summary, schedule_chart, schedule_strips
from repro.sim.experiment import run_workload
from repro.sim.multicore import MulticoreSimulation
from repro.sched.oversubscribed import OversubscribedReliabilityScheduler
from repro.workloads.spec2006 import benchmark

NAMES = ("milc", "zeusmp", "mcf", "gobmk")


@pytest.fixture(scope="module")
def run():
    return run_workload(machine_2b2s(), NAMES, "reliability",
                        instructions=10_000_000, record_timeline=True)


class TestScheduleStrips:
    def test_one_strip_per_app(self, run):
        strips = schedule_strips(run.timeline, width=40)
        assert set(strips) == set(NAMES)
        assert all(0 < len(s) <= 40 for s in strips.values())
        assert all(set(s) <= {"B", "s", "."} for s in strips.values())

    def test_vulnerable_apps_mostly_small(self, run):
        strips = schedule_strips(run.timeline, width=40)
        assert strips["milc"].count("s") > strips["milc"].count("B")
        assert strips["gobmk"].count("B") > strips["gobmk"].count("s")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            schedule_strips([])


class TestScheduleChart:
    def test_renders(self, run):
        chart = schedule_chart(run, width=50)
        assert "B=big, s=small" in chart
        for name in NAMES:
            assert name in chart

    def test_parked_symbol_under_oversubscription(self):
        machine = machine_2b2s()
        profiles = [benchmark(n).scaled(2_000_000)
                    for n in (*NAMES, "povray", "bzip2")]
        result = MulticoreSimulation(
            machine, profiles,
            OversubscribedReliabilityScheduler(machine, 6),
            record_timeline=True,
        ).run()
        chart = schedule_chart(result, width=60)
        assert "." in chart  # parked periods visible


class TestMigrationSummary:
    def test_one_line_per_app(self, run):
        text = migration_summary(run)
        assert len(text.splitlines()) == len(NAMES)
        assert "migrations" in text
