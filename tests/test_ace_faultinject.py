"""Tests for Monte-Carlo fault injection vs ACE counting."""

import pytest

from repro.ace.faultinject import FaultInjector
from repro.config import MemoryConfig, big_core_config, small_core_config
from repro.cores.base import ISOLATED
from repro.cores.ooo import OutOfOrderCoreModel
from repro.cores.tracebase import TraceApplication
from repro.workloads.generator import generate_trace
from repro.workloads.spec2006 import benchmark


def _injector(name="hmmer", instructions=15_000, seed=0):
    model = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
    trace = generate_trace(benchmark(name), instructions, seed=seed)
    app = TraceApplication(trace)
    timing = model.simulate_window(app, 0, 10_000_000, ISOLATED)
    return FaultInjector(big_core_config(), timing)


class TestFaultInjector:
    def test_requires_big_core(self):
        injector = _injector()
        with pytest.raises(ValueError):
            FaultInjector(small_core_config(), injector.timing)

    def test_estimate_converges_to_counting_avf(self):
        injector = _injector("hmmer")
        result = injector.inject(trials=40_000, seed=1)
        counting = injector.counting_avf()
        low, high = result.confidence_interval(z=3.5)
        assert low <= counting <= high
        assert result.avf_estimate == pytest.approx(counting, rel=0.12)

    def test_estimate_tracks_benchmark_differences(self):
        """Fault injection must see gobmk's lower AVF vs milc's."""
        low = _injector("gobmk").inject(trials=20_000, seed=2)
        high = _injector("milc").inject(trials=20_000, seed=2)
        assert high.avf_estimate > 1.3 * low.avf_estimate

    def test_per_structure_accounting(self):
        result = _injector().inject(trials=10_000, seed=3)
        trials = sum(t for t, _ in result.per_structure.values())
        hits = sum(h for _, h in result.per_structure.values())
        assert trials == result.trials
        assert hits == result.ace_hits
        # The ROB receives the most trials (largest bit capacity
        # among the entry-addressable structures... second to RF).
        assert result.per_structure["rob"][0] > 1000

    def test_deterministic_per_seed(self):
        injector = _injector()
        a = injector.inject(trials=5_000, seed=7)
        b = injector.inject(trials=5_000, seed=7)
        c = injector.inject(trials=5_000, seed=8)
        assert a.ace_hits == b.ace_hits
        assert a.ace_hits != c.ace_hits

    def test_confidence_interval_shrinks_with_trials(self):
        injector = _injector()
        small = injector.inject(trials=1_000, seed=4)
        large = injector.inject(trials=30_000, seed=4)
        width = lambda r: r.confidence_interval()[1] - r.confidence_interval()[0]
        assert width(large) < width(small)

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            _injector().inject(trials=0)

    def test_avf_estimate_requires_trials(self):
        from repro.ace.faultinject import FaultInjectionResult
        with pytest.raises(ValueError):
            FaultInjectionResult(trials=0, ace_hits=0).avf_estimate
