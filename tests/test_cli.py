"""Tests for the `repro` command-line interface."""

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(
            ["run", "--benchmarks", "milc,mcf"]
        )
        args.machine == "2B2S"
        assert args.scheduler == "reliability"
        assert not args.rob_only

    def test_bad_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--benchmarks", "milc", "--scheduler", "fifo"]
            )

    def test_runtime_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--jobs", "4", "--event-log", "ev.jsonl"]
        )
        assert args.jobs == 4 and args.event_log == "ev.jsonl"
        args = build_parser().parse_args(["figure", "fig06", "--jobs", "2"])
        assert args.jobs == 2 and args.event_log is None


class TestCommands:
    ARGS = ["--benchmarks", "povray,milc,gobmk,bzip2",
            "--instructions", "2000000"]

    def test_run(self, capsys):
        assert main(["run", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "SSER" in out and "milc" in out

    def test_run_with_power_and_rob_only(self, capsys):
        assert main(["run", *self.ARGS, "--power", "--rob-only"]) == 0
        assert "chip" in capsys.readouterr().out

    def test_run_unknown_benchmark(self, capsys):
        code = main(["run", "--benchmarks", "doom3"])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_run_unknown_machine(self, capsys):
        code = main(["run", *self.ARGS, "--machine", "9B9S"])
        assert code == 2
        assert "unknown machine" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "SSER (lower is better)" in out
        assert "reliability" in out

    def test_avf(self, capsys):
        assert main(["avf", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "milc" in out
        assert "|" in out  # the chart

    def test_oracle(self, capsys):
        assert main(["oracle", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "reliability oracle" in out
        assert "SER gain" in out

    def test_oracle_wrong_count(self, capsys):
        code = main(["oracle", "--benchmarks", "milc,mcf",
                     "--instructions", "1000000"])
        assert code == 2

    def test_workloads(self, capsys):
        assert main(["workloads", "--programs", "2"]) == 0
        out = capsys.readouterr().out
        assert "HH" in out
        assert out.count("\n") >= 36

    def test_trace(self, capsys):
        assert main(["trace", "mcf", "--length", "5000"]) == 0
        out = capsys.readouterr().out
        assert "branch MPKI" in out

    def test_trace_simulate(self, capsys):
        assert main(["trace", "povray", "--length", "5000",
                     "--simulate"]) == 0
        out = capsys.readouterr().out
        assert "AVF %" in out

    def test_trace_unknown(self, capsys):
        assert main(["trace", "doom3"]) == 2

    def test_inject(self, capsys):
        assert main(["inject", "mcf", "--length", "4000",
                     "--trials", "2000"]) == 0
        out = capsys.readouterr().out
        assert "fault-injection AVF" in out
        assert "rob" in out

    def test_inject_unknown_benchmark(self, capsys):
        assert main(["inject", "doom3"]) == 2

    def test_cost(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "904" in out and "296" in out and "67" in out

    def test_sweep_small(self, capsys):
        assert main(["sweep", "--machine", "1B1S", "--programs", "2",
                     "--instructions", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "SSER mean" in out

    def test_sweep_parallel_with_event_log(self, capsys, tmp_path):
        log = tmp_path / "events.jsonl"
        assert main(["sweep", "--machine", "1B1S", "--programs", "2",
                     "--instructions", "1000000", "--jobs", "2",
                     "--verbose", "--event-log", str(log)]) == 0
        captured = capsys.readouterr()
        assert "SSER mean" in captured.out
        assert "campaign finished" in captured.err
        from repro.runtime import replay_timings
        timings = replay_timings(log)
        assert len(timings) == 108  # 36 mixes x 3 schedulers
        assert all(t.status == "ok" for t in timings)

    def test_figure_parallel_and_events_replay(self, capsys, tmp_path):
        log = tmp_path / "events.jsonl"
        cache = tmp_path / "cache"
        argv = ["figure", "fig06", "--machine", "1B1S", "--programs", "2",
                "--instructions", "1000000", "--jobs", "2",
                "--cache-dir", str(cache), "--event-log", str(log)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 cached runs, 108 simulated" in first
        # Second invocation is fully cache-served.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "108 cached runs, 0 simulated" in second
        # The JSONL log replays to per-job timings.
        # The JSONL log replays to per-job timings; both campaigns
        # appended to it, and the replayed (last) status is "cached".
        assert main(["events", str(log)]) == 0
        replay = capsys.readouterr().out
        assert "status" in replay
        assert "108 jobs: 0 executed" in replay and "108 cached" in replay

    def test_events_missing_file(self, capsys):
        assert main(["events", "/nonexistent/events.jsonl"]) == 2
        assert "cannot replay" in capsys.readouterr().err

    def test_small_frequency_flag(self, capsys):
        assert main(["run", *self.ARGS, "--small-frequency", "1.33"]) == 0


class TestCheckCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.seed == 0
        assert args.golden_dir == "tests/golden"
        assert not args.update_goldens

    def test_check_flag_on_sweep_and_figure(self):
        args = build_parser().parse_args(["sweep", "--check"])
        assert args.check
        args = build_parser().parse_args(["figure", "fig06"])
        assert not args.check

    def test_fuzz_only(self, capsys):
        assert main(["check", "--seed", "0", "--skip-goldens",
                     "--model-cases", "0", "--run-cases", "1",
                     "--stack-cases", "1"]) == 0
        out = capsys.readouterr().out
        assert "fuzz seed=0" in out and "run/0" in out

    def test_goldens_roundtrip_in_tmp_dir(self, capsys, tmp_path):
        golden = tmp_path / "golden"
        assert main(["check", "--update-goldens",
                     "--golden-dir", str(golden)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["check", "--skip-fuzz",
                     "--golden-dir", str(golden)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_missing_goldens_fail_with_advice(self, capsys, tmp_path):
        assert main(["check", "--skip-fuzz",
                     "--golden-dir", str(tmp_path / "nowhere")]) == 1
        assert "--update-goldens" in capsys.readouterr().out

    def test_sweep_with_check_flag(self, capsys):
        assert main(["sweep", "--machine", "1B1S", "--programs", "2",
                     "--instructions", "1000000", "--check"]) == 0
        assert "SSER mean" in capsys.readouterr().out


class TestObservability:
    MIX = ["--benchmarks", "soplex,milc,namd,povray",
           "--instructions", "2000000"]

    def test_parser_obs_flags(self):
        args = build_parser().parse_args(["sweep", "--metrics"])
        assert args.metrics
        args = build_parser().parse_args(
            ["run", "--benchmarks", "milc,mcf", "--profile",
             "--obs-out", "obs.json"]
        )
        assert args.profile and args.obs_out == "obs.json"
        args = build_parser().parse_args(["trace", "--spans", "obs.json"])
        assert args.benchmark is None and args.spans == "obs.json"
        args = build_parser().parse_args(["explain", "--schema"])
        assert args.schema and args.scheduler == "reliability"

    def test_trace_without_benchmark_or_spans(self, capsys):
        assert main(["trace"]) == 2
        assert "benchmark" in capsys.readouterr().err

    def test_run_profile_and_trace_spans(self, capsys, tmp_path):
        obs = tmp_path / "obs.json"
        assert main(["run", *self.MIX, "--profile",
                     "--obs-out", str(obs)]) == 0
        out = capsys.readouterr().out
        assert "span tree:" in out and "metrics:" in out
        assert "sim.runs" in out
        assert main(["trace", "--spans", str(obs)]) == 0
        out = capsys.readouterr().out
        assert "top self time" in out

    def test_sweep_metrics_then_stats(self, capsys, tmp_path):
        log = tmp_path / "events.jsonl"
        csv = tmp_path / "metrics.csv"
        assert main(["sweep", "--machine", "1B1S", "--programs", "2",
                     "--instructions", "1000000", "--jobs", "2",
                     "--metrics", "--event-log", str(log)]) == 0
        capsys.readouterr()
        assert main(["stats", str(log), "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "sim.runs" in out and "108" in out
        assert csv.read_text().startswith("name,labels,kind,field,value")

    def test_stats_without_metrics_advises(self, capsys, tmp_path):
        log = tmp_path / "events.jsonl"
        assert main(["sweep", "--machine", "1B1S", "--programs", "2",
                     "--instructions", "1000000",
                     "--event-log", str(log)]) == 0
        capsys.readouterr()
        assert main(["stats", str(log)]) == 1
        assert "--metrics" in capsys.readouterr().err

    def test_explain_records_and_replays(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["explain", *self.MIX, "--json", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "quantum" in out and "replay" in out
        assert trace.exists()
        assert main(["explain", "--replay", str(trace)]) == 0
        assert "replay" in capsys.readouterr().out

    def test_explain_schema_matches_fixture(self, capsys):
        import json
        from pathlib import Path

        assert main(["explain", "--schema"]) == 0
        printed = json.loads(capsys.readouterr().out)
        fixture = Path("tests/fixtures/decision_trace_schema.json")
        assert printed == json.loads(fixture.read_text())

    def test_explain_wrong_benchmark_count(self, capsys):
        assert main(["explain", "--benchmarks", "milc,mcf"]) == 2
        assert "benchmark" in capsys.readouterr().err


class TestResume:
    SWEEP = ["sweep", "--machine", "1B1S", "--programs", "2",
             "--instructions", "1000000"]

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["resume", "ev.jsonl", "--store", "dir", "--jobs", "2"]
        )
        assert args.path == "ev.jsonl" and args.store == "dir"
        args = build_parser().parse_args(["sweep", "--store", "results"])
        assert args.store == "results"
        args = build_parser().parse_args(["check", "--resume-cases", "1"])
        assert args.resume_cases == 1

    def test_interrupted_sweep_resumes_identically(self, capsys, tmp_path):
        log = tmp_path / "events.jsonl"
        store = tmp_path / "store"
        argv = [*self.SWEEP, "--store", str(store), "--event-log", str(log)]
        assert main(argv) == 0
        expected = capsys.readouterr().out
        assert "SSER mean" in expected

        # Simulate a kill partway through: drop the tail of the event
        # log and a few persisted results.
        lines = log.read_text().splitlines()
        log.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        for path in sorted(store.glob("*.json"))[:5]:
            path.unlink()

        assert main(["resume", str(log)]) == 0
        captured = capsys.readouterr()
        assert captured.out == expected
        assert "resuming" in captured.err

        # Resuming a finished campaign is a cache-served no-op with
        # the same stdout again.
        assert main(["resume", str(log)]) == 0
        assert capsys.readouterr().out == expected

    def test_resume_without_plan_record_fails(self, capsys, tmp_path):
        log = tmp_path / "events.jsonl"
        log.write_text('{"kind": "campaign_started", "total": 3}\n')
        assert main(["resume", str(log)]) == 2
        assert "no campaign plan" in capsys.readouterr().err

    def test_resume_without_store_advises(self, capsys, tmp_path):
        from repro.runtime import ExecutionEngine, JsonlEventSink
        from repro.sim.campaign import RunSpec

        log = tmp_path / "events.jsonl"
        engine = ExecutionEngine(sinks=[JsonlEventSink(log)])
        engine.run_many([
            RunSpec("1B1S", ("povray", "milc"), "random", 100_000)
        ])
        engine.close()
        assert main(["resume", str(log)]) == 2
        assert "--store" in capsys.readouterr().err

    def test_events_and_stats_tolerate_unknown_kinds(
        self, capsys, tmp_path
    ):
        # Logs written by a newer engine may contain event kinds this
        # version has never heard of; `repro events` and `repro stats`
        # must keep working on the lines they understand.
        log = tmp_path / "events.jsonl"
        assert main([*self.SWEEP, "--jobs", "2", "--metrics",
                     "--event-log", str(log)]) == 0
        capsys.readouterr()
        with log.open("a") as handle:
            handle.write('{"kind": "from_the_future", "payload": 7}\n')
            handle.write('{"kind": "campaign_paused"}\n')
        assert main(["events", str(log)]) == 0
        replay = capsys.readouterr().out
        assert "108 jobs: 108 executed" in replay
        assert main(["stats", str(log)]) == 0
        assert "sim.runs" in capsys.readouterr().out


class TestServiceCommands:
    LOAD = ["load", "--machine", "1B1S", "--arrivals", "30",
            "--rates", "2000", "--queue-limit", "4",
            "--deadline", "0.005", "--instructions", "2000000",
            "--seed", "0"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.scheduler == "reliability"
        assert args.admission == "fifo"
        assert args.queue_limit == 16
        assert args.socket is None
        args = build_parser().parse_args(["load"])
        assert args.arrivals == 200
        assert args.rates == "400"
        assert args.process == "poisson"
        assert args.min_shed_rate is None
        args = build_parser().parse_args(["check", "--service-cases", "0"])
        assert args.service_cases == 0

    def test_load_prints_summary_table(self, capsys):
        assert main(self.LOAD) == 0
        out = capsys.readouterr().out
        assert "rate/s" in out and "shed%" in out and "sser" in out
        assert " 30 " in out  # the arrived column

    def test_load_digest_reproducible(self, capsys):
        assert main([*self.LOAD, "--digest"]) == 0
        first = capsys.readouterr().out
        assert main([*self.LOAD, "--digest"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "feed sha256 @ 2000/s:" in first

    def test_load_min_shed_rate_gate(self, capsys):
        assert main([*self.LOAD, "--min-shed-rate", "0.01"]) == 0
        capsys.readouterr()
        # A lightly loaded system sheds nothing: the gate must fail.
        assert main(["load", "--machine", "1B1S", "--arrivals", "10",
                     "--rates", "100", "--instructions", "200000",
                     "--min-shed-rate", "0.01"]) == 1
        captured = capsys.readouterr()
        assert "below the" in captured.err

    def test_load_event_feed_written(self, capsys, tmp_path):
        feed = tmp_path / "feed.jsonl"
        assert main([*self.LOAD, "--event-feed", str(feed)]) == 0
        capsys.readouterr()
        lines = feed.read_text().splitlines()
        assert lines
        import json as json_mod
        events = [json_mod.loads(line) for line in lines]
        assert {e["event"] for e in events} >= {"arrive", "start", "depart"}

    def test_load_bad_rates_rejected(self, capsys):
        assert main(["load", "--rates", "fast"]) == 1
        assert "bad --rates" in capsys.readouterr().err

    def test_load_unknown_machine(self, capsys):
        assert main(["load", "--machine", "9B9S"]) == 1
        assert "unknown machine" in capsys.readouterr().err


class TestShard:
    SWEEP = ["--machine", "1B1S", "--programs", "2",
             "--instructions", "1000000"]

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["shard", "--shards", "4", "--batched",
             "--transport", "inprocess", "--event-log", "ev.jsonl",
             "--shard-logs", "--status-socket", "fleet.sock"]
        )
        assert args.shards == 4 and args.batched
        assert args.transport == "inprocess" and args.shard_logs
        assert args.status_socket == "fleet.sock"
        args = build_parser().parse_args(["shard"])
        assert args.shards == 2 and args.transport == "process"
        args = build_parser().parse_args(["resume", "ev.jsonl",
                                          "--shards", "3"])
        assert args.shards == 3
        args = build_parser().parse_args(["check", "--shard-cases", "1"])
        assert args.shard_cases == 1
        args = build_parser().parse_args(["bench",
                                          "--min-shard-speedup", "1.6"])
        assert args.min_shard_speedup == 1.6
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "--transport", "carrier"])

    def test_shard_stdout_matches_sweep(self, capsys, tmp_path):
        assert main(["sweep", *self.SWEEP,
                     "--store", str(tmp_path / "sweep")]) == 0
        expected = capsys.readouterr().out
        assert "SSER mean" in expected
        for shards in ("1", "2"):
            assert main(["shard", *self.SWEEP, "--shards", shards,
                         "--transport", "inprocess",
                         "--store", str(tmp_path / f"s{shards}")]) == 0
            captured = capsys.readouterr()
            assert captured.out == expected
            assert "fleet" in captured.err

    def test_shard_logs_merge_and_resume(self, capsys, tmp_path):
        log = tmp_path / "fleet.jsonl"
        assert main(["shard", *self.SWEEP, "--shards", "2",
                     "--transport", "inprocess", "--metrics",
                     "--store", str(tmp_path / "store"),
                     "--event-log", str(log), "--shard-logs"]) == 0
        expected = capsys.readouterr().out

        # Satellite: several event logs merge deterministically.
        shard_logs = [str(log) + f".shard{s}.jsonl" for s in (0, 1)]
        assert main(["events", *shard_logs]) == 0
        out = capsys.readouterr().out
        assert "108 jobs" in out
        assert main(["stats", *shard_logs]) == 0
        out = capsys.readouterr().out
        assert "sim.runs" in out and "108" in out

        # The merged canonical log replays and resumes (sharded, as
        # recorded in its plan) to the same stdout.
        assert main(["events", str(log)]) == 0
        capsys.readouterr()
        assert main(["resume", str(log)]) == 0
        captured = capsys.readouterr()
        assert captured.out == expected
        assert "resuming" in captured.err

    def test_multi_log_merge_is_order_insensitive(self, capsys, tmp_path):
        logs = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for log in logs:
            assert main(["sweep", *self.SWEEP, "--jobs", "1",
                         "--store", str(tmp_path / "store"),
                         "--event-log", str(log)]) == 0
        capsys.readouterr()
        assert main(["events", str(logs[0]), str(logs[1])]) == 0
        forward = capsys.readouterr().out
        assert main(["events", str(logs[1]), str(logs[0])]) == 0
        backward = capsys.readouterr().out
        # Same jobs either way; per-job facts agree (the second run is
        # all cache hits, so statuses and counts are stable).
        assert "108 jobs" in forward and "108 jobs" in backward
