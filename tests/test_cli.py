"""Tests for the `repro` command-line interface."""

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(
            ["run", "--benchmarks", "milc,mcf"]
        )
        args.machine == "2B2S"
        assert args.scheduler == "reliability"
        assert not args.rob_only

    def test_bad_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--benchmarks", "milc", "--scheduler", "fifo"]
            )


class TestCommands:
    ARGS = ["--benchmarks", "povray,milc,gobmk,bzip2",
            "--instructions", "2000000"]

    def test_run(self, capsys):
        assert main(["run", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "SSER" in out and "milc" in out

    def test_run_with_power_and_rob_only(self, capsys):
        assert main(["run", *self.ARGS, "--power", "--rob-only"]) == 0
        assert "chip" in capsys.readouterr().out

    def test_run_unknown_benchmark(self, capsys):
        code = main(["run", "--benchmarks", "doom3"])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_run_unknown_machine(self, capsys):
        code = main(["run", *self.ARGS, "--machine", "9B9S"])
        assert code == 2
        assert "unknown machine" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "SSER (lower is better)" in out
        assert "reliability" in out

    def test_avf(self, capsys):
        assert main(["avf", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "milc" in out
        assert "|" in out  # the chart

    def test_oracle(self, capsys):
        assert main(["oracle", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "reliability oracle" in out
        assert "SER gain" in out

    def test_oracle_wrong_count(self, capsys):
        code = main(["oracle", "--benchmarks", "milc,mcf",
                     "--instructions", "1000000"])
        assert code == 2

    def test_workloads(self, capsys):
        assert main(["workloads", "--programs", "2"]) == 0
        out = capsys.readouterr().out
        assert "HH" in out
        assert out.count("\n") >= 36

    def test_trace(self, capsys):
        assert main(["trace", "mcf", "--length", "5000"]) == 0
        out = capsys.readouterr().out
        assert "branch MPKI" in out

    def test_trace_simulate(self, capsys):
        assert main(["trace", "povray", "--length", "5000",
                     "--simulate"]) == 0
        out = capsys.readouterr().out
        assert "AVF %" in out

    def test_trace_unknown(self, capsys):
        assert main(["trace", "doom3"]) == 2

    def test_inject(self, capsys):
        assert main(["inject", "mcf", "--length", "4000",
                     "--trials", "2000"]) == 0
        out = capsys.readouterr().out
        assert "fault-injection AVF" in out
        assert "rob" in out

    def test_inject_unknown_benchmark(self, capsys):
        assert main(["inject", "doom3"]) == 2

    def test_cost(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "904" in out and "296" in out and "67" in out

    def test_sweep_small(self, capsys):
        assert main(["sweep", "--machine", "1B1S", "--programs", "2",
                     "--instructions", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "SSER mean" in out

    def test_small_frequency_flag(self, capsys):
        assert main(["run", *self.ARGS, "--small-frequency", "1.33"]) == 0
