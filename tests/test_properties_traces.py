"""Property-based tests on trace containers and generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instruction import InstructionClass
from repro.isa.trace import Trace
from repro.workloads.generator import generate_phase_trace
from repro.workloads.characteristics import PhaseCharacteristics


def _random_trace(n, seed):
    rng = np.random.default_rng(seed)
    return Trace(
        classes=rng.integers(0, 10, size=n).astype(np.int8),
        dep1=np.minimum(
            rng.geometric(0.3, size=n), np.arange(n)
        ).astype(np.int32),
        dep2=np.zeros(n, dtype=np.int32),
        addresses=rng.integers(0, 1 << 20, size=n).astype(np.int64),
        mispredicted=rng.random(n) < 0.02,
        icache_miss=rng.random(n) < 0.01,
        name="prop",
    )


class TestSliceProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 500),
        seed=st.integers(0, 100),
        data=st.data(),
    )
    def test_slice_dependencies_stay_in_window(self, n, seed, data):
        trace = _random_trace(n, seed)
        start = data.draw(st.integers(0, n - 1))
        stop = data.draw(st.integers(start + 1, n))
        window = trace.slice(start, stop)
        index = np.arange(len(window))
        assert (window.dep1 <= index).all()
        assert (window.dep2 <= index).all()

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 300), seed=st.integers(0, 50))
    def test_full_slice_preserves_content(self, n, seed):
        trace = _random_trace(n, seed)
        window = trace.slice(0, n)
        assert np.array_equal(window.classes, trace.classes)
        assert np.array_equal(window.dep1, trace.dep1)

    @settings(max_examples=30, deadline=None)
    @given(
        parts=st.lists(st.integers(1, 100), min_size=1, max_size=5),
        seed=st.integers(0, 20),
    )
    def test_concatenation_length(self, parts, seed):
        traces = [_random_trace(k, seed + i) for i, k in enumerate(parts)]
        joined = Trace.concatenate(traces)
        assert len(joined) == sum(parts)


class TestGeneratorProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        brm=st.floats(0.0, 15.0),
        icm=st.floats(0.0, 10.0),
        seed=st.integers(0, 30),
    )
    def test_rates_track_targets(self, brm, icm, seed):
        chars = PhaseCharacteristics(branch_mpki=brm, icache_mpki=icm)
        rng = np.random.default_rng(seed)
        trace = generate_phase_trace(chars, 40_000, rng)
        assert trace.branch_mpki == pytest.approx(brm, abs=2.0)
        assert trace.icache_mpki == pytest.approx(icm, abs=2.0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 30))
    def test_memory_ops_have_line_aligned_reuse(self, seed):
        chars = PhaseCharacteristics(l1d_mpki=20, l2_mpki=10, l3_mpki=3)
        rng = np.random.default_rng(seed)
        trace = generate_phase_trace(chars, 20_000, rng)
        mem = np.isin(trace.classes, np.array(
            [InstructionClass.LOAD, InstructionClass.STORE], dtype=np.int8
        ))
        addresses = trace.addresses[mem]
        # Substantial reuse: far fewer distinct lines than accesses.
        lines = set(int(a) // 64 for a in addresses)
        assert len(lines) < 0.6 * len(addresses)
