"""Tests for the crash flight recorder (repro.obs.flight)."""

import json

import pytest

from repro.obs import flight as obs_flight
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.context import TraceContext, activate
from repro.obs.flight import (
    FlightRecorder,
    dump_bundle,
    find_bundles,
    format_bundle,
    load_bundle,
    recording,
)


class TestRing:
    def test_keeps_last_n(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.note("tick", i=i)
        snap = recorder.snapshot()
        assert [e["i"] for e in snap["events"]] == [7, 8, 9]
        assert snap["dropped"] == 7
        assert snap["capacity"] == 3

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_record_copies_entries(self):
        recorder = FlightRecorder()
        entry = {"event": "job_started", "index": 1}
        recorder.record(entry)
        entry["index"] = 99
        assert recorder.snapshot()["events"][0]["index"] == 1

    def test_note_stamps_timestamp(self):
        recorder = FlightRecorder()
        recorder.note("ooo.simulate_window", app="soplex")
        (entry,) = recorder.snapshot()["events"]
        assert entry["note"] == "ooo.simulate_window"
        assert entry["app"] == "soplex"
        assert entry["timestamp"] > 0


class TestMetricDeltas:
    def test_counter_deltas_since_baseline(self):
        recorder = FlightRecorder()
        with obs_metrics.collecting() as registry:
            registry.counter("sim.runs").inc(5)
            recorder.mark_metrics_baseline()
            registry.counter("sim.runs").inc(2)
            registry.counter("sim.instructions", core="big").inc(100)
            deltas = recorder.metric_deltas()
        assert deltas["sim.runs"] == 2
        assert deltas["sim.instructions{core=big}"] == 100

    def test_no_registry_no_deltas(self):
        recorder = FlightRecorder()
        recorder.mark_metrics_baseline()
        assert recorder.metric_deltas() == {}


class TestActivation:
    def test_dormant_by_default(self):
        assert obs_flight.ACTIVE is None

    def test_recording_installs_and_restores(self):
        with recording() as recorder:
            assert obs_flight.ACTIVE is recorder
        assert obs_flight.ACTIVE is None


class TestBundles:
    def test_dump_load_round_trip(self, tmp_path):
        recorder = FlightRecorder(fingerprint={"jobs": 2})
        recorder.note("tick", i=0)
        trace = TraceContext(campaign="cafe12", shard=1, run_key="k" * 24)
        path = dump_bundle(
            tmp_path,
            "k" * 24,
            label="HH/0 random",
            reason="failed",
            error="RuntimeError: boom",
            trace=trace,
            recorder=recorder,
        )
        assert path == tmp_path / "postmortems" / (("k" * 24) + ".json")
        bundle = load_bundle(path)
        assert bundle["schema"] == obs_flight.BUNDLE_SCHEMA_VERSION
        assert bundle["key"] == "k" * 24
        assert bundle["reason"] == "failed"
        assert bundle["trace"] == trace.to_dict()
        assert bundle["flight"]["fingerprint"] == {"jobs": 2}
        assert bundle["flight"]["events"][0]["note"] == "tick"

    def test_dump_uses_ambient_recorder_and_context(self, tmp_path):
        trace = TraceContext(campaign="feed00", shard=0)
        with activate(trace), recording() as recorder:
            recorder.note("tick")
            path = dump_bundle(tmp_path, "key1", reason="timeout")
        bundle = load_bundle(path)
        assert bundle["trace"] == trace.to_dict()
        assert bundle["flight"]["events"][0]["note"] == "tick"

    def test_dump_without_recorder_still_records_facts(self, tmp_path):
        path = dump_bundle(tmp_path, "key2", reason="abandoned")
        bundle = load_bundle(path)
        assert bundle["reason"] == "abandoned"
        assert bundle["flight"]["events"] == []

    def test_captures_active_span_stack(self, tmp_path):
        recorder = FlightRecorder()
        with obs_tracing.collecting():
            with obs_tracing.span("sim.run"), obs_tracing.span(
                "sim.exec", core="big"
            ):
                path = dump_bundle(tmp_path, "key3", recorder=recorder)
        stack = load_bundle(path)["flight"]["span_stack"]
        assert stack == ["sim.run", "sim.exec{core=big}"]

    def test_find_bundles_sorted(self, tmp_path):
        for key in ("bbb", "aaa", "ccc"):
            dump_bundle(tmp_path, key)
        assert [p.stem for p in find_bundles(tmp_path)] == [
            "aaa",
            "bbb",
            "ccc",
        ]
        assert find_bundles(tmp_path / "missing") == []

    def test_bundle_is_valid_sorted_json(self, tmp_path):
        path = dump_bundle(tmp_path, "key4")
        text = path.read_text()
        assert json.loads(text) == load_bundle(path)
        assert text == json.dumps(
            json.loads(text), indent=2, sort_keys=True
        ) + "\n"

    def test_no_tmp_file_left_behind(self, tmp_path):
        dump_bundle(tmp_path, "key5")
        leftovers = list((tmp_path / "postmortems").glob("*.tmp"))
        assert leftovers == []


class TestFormatBundle:
    def test_renders_facts_and_ring(self, tmp_path):
        recorder = FlightRecorder(fingerprint={"jobs": 1})
        recorder.record({"event": "job_started", "index": 0, "label": "a"})
        recorder.note("ooo.simulate_window", app="soplex")
        path = dump_bundle(
            tmp_path,
            "key6",
            label="HH/0 random",
            reason="timeout",
            error="timed out after 1.0s",
            trace=TraceContext(campaign="cafe12", shard=1),
            recorder=recorder,
        )
        text = format_bundle(load_bundle(path))
        assert "postmortem key6" in text
        assert "reason: timeout" in text
        assert "campaign=cafe12" in text
        assert "shard=1" in text
        assert "job_started" in text
        assert "note ooo.simulate_window" in text
        assert "jobs=1" in text

    def test_long_attributes_clipped_in_text_only(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record({"event": "campaign_plan", "keys": ["k" * 500]})
        path = dump_bundle(tmp_path, "key7", recorder=recorder)
        bundle = load_bundle(path)
        # JSON keeps full fidelity; the rendering elides.
        assert bundle["flight"]["events"][0]["keys"] == ["k" * 500]
        rendered = format_bundle(bundle)
        assert "k" * 500 not in rendered
        assert "chars>" in rendered
