"""Tests for the service operational timeline (repro.service.load)."""

import pytest

from repro.config import machine_1b1s
from repro.service import (
    ServiceConfig,
    ServiceFeed,
    make_process,
    run_load_point,
    service_benchmark_pool,
)
from repro.service.load import (
    TimelineWindow,
    format_timeline,
    service_timeline,
)


def synthetic_feed():
    """A hand-built feed: 3 arrivals, 2 starts, 1 shed, 2 departs."""
    return [
        {"event": "arrive", "time": 0.0, "job": 0},
        {"event": "start", "time": 0.5, "job": 0, "wait_seconds": 0.5},
        {"event": "arrive", "time": 1.0, "job": 1},
        {"event": "shed", "time": 1.1, "job": 1},
        {"event": "depart", "time": 2.0, "job": 0},
        {"event": "arrive", "time": 3.0, "job": 2},
        {"event": "start", "time": 3.5, "job": 2, "wait_seconds": 0.5},
        {"event": "depart", "time": 4.0, "job": 2},
    ]


class TestServiceTimeline:
    def test_empty_feed_empty_timeline(self):
        assert service_timeline([]) == []

    def test_window_count(self):
        windows = service_timeline(synthetic_feed(), windows=4)
        assert len(windows) == 4

    def test_explicit_window_seconds(self):
        windows = service_timeline(synthetic_feed(), window_seconds=2.0)
        assert len(windows) == 2
        assert windows[0].end_seconds == pytest.approx(2.0)

    def test_counts_partition_the_feed(self):
        windows = service_timeline(synthetic_feed(), windows=3)
        assert sum(w.arrived for w in windows) == 3
        assert sum(w.started for w in windows) == 2
        assert sum(w.shed for w in windows) == 1
        assert sum(w.departed for w in windows) == 2

    def test_conservation_identities(self):
        windows = service_timeline(synthetic_feed(), windows=4)
        arrived = started = shed = departed = 0
        for window in windows:
            arrived += window.arrived
            started += window.started
            shed += window.shed
            departed += window.departed
            assert window.queue_depth == arrived - started - shed
            assert window.running == started - departed
            assert window.queue_depth >= 0

    def test_start_latency_percentiles(self):
        windows = service_timeline(synthetic_feed(), windows=1)
        (window,) = windows
        assert window.p50_start_latency == pytest.approx(0.5)
        assert window.p95_start_latency == pytest.approx(0.5)

    def test_windows_without_starts_have_no_latency(self):
        feed = [
            {"event": "arrive", "time": 0.0, "job": 0},
            {"event": "shed", "time": 10.0, "job": 0},
        ]
        for window in service_timeline(feed, windows=2):
            assert window.p50_start_latency is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            service_timeline(synthetic_feed(), windows=0)
        with pytest.raises(ValueError):
            service_timeline(synthetic_feed(), window_seconds=-1.0)

    def test_deterministic_on_real_feed(self):
        config = ServiceConfig(machine=machine_1b1s())
        feeds = []
        for _ in range(2):
            feed = ServiceFeed()
            run_load_point(
                config,
                make_process(
                    "poisson",
                    30.0,
                    service_benchmark_pool(),
                    seed=7,
                    instructions=40_000,
                ),
                20,
                feed=feed,
            )
            feeds.append(feed)
        t0 = [w.to_dict() for w in service_timeline(feeds[0].events)]
        t1 = [w.to_dict() for w in service_timeline(feeds[1].events)]
        assert t0 == t1
        assert sum(w["arrived"] for w in t0) == 20


class TestFormatTimeline:
    def test_empty(self):
        assert format_timeline([]) == "(empty timeline)"

    def test_renders_header_and_rows(self):
        windows = service_timeline(synthetic_feed(), windows=2)
        text = format_timeline(windows)
        lines = text.splitlines()
        assert "arrive" in lines[0] and "p95_start_ms" in lines[0]
        assert len(lines) == 2 + len(windows)  # header + rule + rows

    def test_missing_latency_rendered_as_dash(self):
        window = TimelineWindow(
            start_seconds=0.0, end_seconds=1.0, arrived=1, started=0,
            shed=0, departed=0, queue_depth=1, running=0,
            p50_start_latency=None, p95_start_latency=None,
        )
        assert "-" in format_timeline([window])
