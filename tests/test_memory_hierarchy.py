"""Tests for the multi-level cache hierarchy."""

import pytest

from repro.config.machines import MemoryConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.hierarchy import CacheHierarchy


class TestDataPath:
    def test_cold_access_goes_to_dram(self, memory):
        h = CacheHierarchy(memory, 2.66)
        outcome = h.access_data(0x1000)
        assert outcome.level == "dram"
        assert outcome.latency_cycles == pytest.approx(
            4 + 8 + 30 + 45 * 2.66
        )
        assert h.dram_accesses == 1
        assert h.l3_accesses == 1

    def test_second_access_hits_l1(self, memory):
        h = CacheHierarchy(memory, 2.66)
        h.access_data(0x1000)
        outcome = h.access_data(0x1000)
        assert outcome.level == "l1"
        assert outcome.latency_cycles == 4

    def test_l2_hit_after_l1_eviction(self, memory):
        h = CacheHierarchy(memory, 2.66)
        h.access_data(0)
        # Fill L1D set 0: 32KB/8way/64B = 64 sets; lines that map to
        # set 0 are 64*64 bytes apart.
        stride = 64 * 64
        for i in range(1, 9):
            h.access_data(i * stride)
        outcome = h.access_data(0)
        assert outcome.level == "l2"

    def test_instruction_path(self, memory):
        h = CacheHierarchy(memory, 2.66)
        first = h.access_instruction(0x400000)
        again = h.access_instruction(0x400000)
        assert first.level == "dram"
        assert again.level == "l1"
        assert again.latency_cycles == 0.0

    def test_shared_l3(self, memory):
        shared = SetAssociativeCache(memory.l3, "l3")
        h1 = CacheHierarchy(memory, 2.66, shared_l3=shared)
        h2 = CacheHierarchy(memory, 2.66, shared_l3=shared)
        h1.access_data(0x2000)
        # The same line misses h2's private levels but hits shared L3.
        outcome = h2.access_data(0x2000)
        assert outcome.level == "l3"

    def test_reset_stats(self, memory):
        h = CacheHierarchy(memory, 2.66)
        h.access_data(0)
        h.reset_stats()
        assert h.dram_accesses == 0
        assert h.l1d.stats.accesses == 0

    def test_dram_latency_scales_with_frequency(self, memory):
        fast = CacheHierarchy(memory, 2.66)
        slow = CacheHierarchy(memory, 1.33)
        assert fast.dram_latency_cycles == pytest.approx(
            2 * slow.dram_latency_cycles
        )
