"""Tests for the activity-based power model."""

import pytest

from repro.config import machine_2b2s, machine_4b4s
from repro.power.model import PowerBreakdown, PowerModel
from repro.sched.oracle import StaticScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.sim.results import AppRunRecord, RunResult
from repro.workloads.spec2006 import benchmark


def _run(machine, big_apps=(0, 1), n=2_000_000):
    profiles = [benchmark(b).scaled(n)
                for b in ("povray", "milc", "gobmk", "bzip2")]
    sim = MulticoreSimulation(
        machine, profiles, StaticScheduler(machine, 4, big_apps)
    )
    return sim.run()


class TestPowerBreakdown:
    def test_chip_and_system_composition(self):
        p = PowerBreakdown(
            core_dynamic_watts=2.0,
            core_static_watts=1.0,
            occupancy_watts=0.5,
            l3_watts=1.5,
            dram_watts=2.0,
        )
        assert p.chip_watts == pytest.approx(5.0)
        assert p.system_watts == pytest.approx(7.0)


class TestPowerModel:
    def test_positive_and_ordered(self, machine):
        power = PowerModel(machine).run_power(_run(machine))
        assert 0 < power.core_dynamic_watts
        assert 0 < power.chip_watts < power.system_watts

    def test_static_power_scales_with_cores(self):
        small = PowerModel(machine_2b2s()).run_power(_run(machine_2b2s()))
        # Same workload class but on an 8-core machine: static power up.
        m8 = machine_4b4s()
        profiles = [benchmark(b).scaled(2_000_000) for b in
                    ("povray", "milc", "gobmk", "bzip2",
                     "lbm", "mcf", "namd", "soplex")]
        sim = MulticoreSimulation(
            m8, profiles, StaticScheduler(m8, 8, (0, 1, 2, 3))
        )
        big = PowerModel(m8).run_power(sim.run())
        assert big.core_static_watts > small.core_static_watts

    def test_high_occupancy_apps_on_big_burn_more_power(self, machine):
        """The Figure 12 mechanism: placing the high-ABC applications
        on big cores raises chip power."""
        pm = PowerModel(machine)
        # milc (index 1) is the high-occupancy app here.
        milc_on_big = pm.run_power(_run(machine, big_apps=(1, 3)))
        milc_on_small = pm.run_power(_run(machine, big_apps=(0, 2)))
        assert milc_on_big.occupancy_watts > milc_on_small.occupancy_watts

    def test_zero_duration_rejected(self, machine):
        empty = RunResult(
            machine_name="2B2S", scheduler_name="x", quanta=0,
            duration_seconds=0.0, apps=[AppRunRecord(name="a")],
        )
        with pytest.raises(ValueError):
            PowerModel(machine).run_power(empty)
