"""Tests for the bounded admission queue and admission policies."""

import pytest

from repro.service.admission import (
    ADMISSION_POLICIES,
    FifoAdmission,
    SserPriorityAdmission,
    make_admission,
)
from repro.service.arrivals import JobArrival
from repro.service.queue import AdmissionQueue
from repro.workloads.spec2006 import benchmark, big_core_avf


def arrival(job_id, time, name="mcf", deadline=None):
    return JobArrival(job_id, time, name, 100_000, deadline_seconds=deadline)


class TestAdmissionQueue:
    def test_offer_is_bounded(self):
        queue = AdmissionQueue(2)
        assert queue.offer(arrival(0, 0.0)) is not None
        assert queue.offer(arrival(1, 0.1)) is not None
        assert queue.offer(arrival(2, 0.2)) is None  # full: shed
        assert len(queue) == 2
        assert [j.job_id for j in queue.jobs] == [0, 1]

    def test_take_frees_capacity(self):
        queue = AdmissionQueue(1)
        job = queue.offer(arrival(0, 0.0))
        queue.take(job)
        assert len(queue) == 0
        assert queue.offer(arrival(1, 0.1)) is not None

    def test_service_deadline_applies_to_plain_arrivals(self):
        queue = AdmissionQueue(4, deadline_seconds=0.01)
        job = queue.offer(arrival(0, 0.5))
        assert job.deadline_time == pytest.approx(0.51)

    def test_per_job_deadline_overrides_service_deadline(self):
        queue = AdmissionQueue(4, deadline_seconds=0.01)
        job = queue.offer(arrival(0, 0.5, deadline=0.002))
        assert job.deadline_time == pytest.approx(0.502)

    def test_no_deadline_never_expires(self):
        queue = AdmissionQueue(4)
        queue.offer(arrival(0, 0.0))
        assert queue.expire(1e9) == []

    def test_expire_removes_only_overdue_jobs(self):
        queue = AdmissionQueue(4, deadline_seconds=0.01)
        queue.offer(arrival(0, 0.0))   # deadline 0.01
        queue.offer(arrival(1, 0.02))  # deadline 0.03
        expired = queue.expire(0.02)   # strictly past 0.01 only
        assert [j.job_id for j in expired] == [0]
        assert [j.job_id for j in queue.jobs] == [1]
        assert queue.expire(0.01) == []  # boundary is not yet overdue

    def test_wait_seconds_is_measured_from_arrival(self):
        queue = AdmissionQueue(4)
        job = queue.offer(arrival(0, 0.25))
        assert job.wait_seconds(0.75) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionQueue(0)
        with pytest.raises(ValueError, match="deadline"):
            AdmissionQueue(1, deadline_seconds=0.0)


class TestAdmissionPolicies:
    def test_registry(self):
        assert sorted(ADMISSION_POLICIES) == ["fifo", "sser"]
        assert isinstance(make_admission("fifo"), FifoAdmission)
        assert isinstance(make_admission("sser"), SserPriorityAdmission)
        with pytest.raises(ValueError, match="unknown admission policy"):
            make_admission("lifo")

    def test_fifo_selects_earliest_arrival(self):
        queue = AdmissionQueue(4)
        queue.offer(arrival(0, 0.3))
        queue.offer(arrival(1, 0.1))
        queue.offer(arrival(2, 0.2))
        picked = FifoAdmission().select(queue.jobs, now=0.4)
        assert picked.job_id == 1

    def test_fifo_ties_break_on_job_id(self):
        queue = AdmissionQueue(4)
        queue.offer(arrival(5, 0.1))
        queue.offer(arrival(2, 0.1))
        assert FifoAdmission().select(queue.jobs, now=0.2).job_id == 2

    def test_sser_prefers_lowest_big_core_avf(self):
        # Pick two benchmarks with clearly different big-core AVF and
        # enqueue the high-AVF one *first*: FIFO would admit it, the
        # reliability-aware policy must not.
        lo, hi = sorted(
            ("povray", "milc"), key=lambda n: big_core_avf(benchmark(n))
        )
        queue = AdmissionQueue(4)
        queue.offer(arrival(0, 0.0, name=hi))
        queue.offer(arrival(1, 0.1, name=lo))
        policy = SserPriorityAdmission()
        assert policy.select(queue.jobs, now=0.2).job_id == 1
        assert FifoAdmission().select(queue.jobs, now=0.2).job_id == 0

    def test_sser_same_benchmark_falls_back_to_fifo_order(self):
        queue = AdmissionQueue(4)
        queue.offer(arrival(0, 0.2, name="mcf"))
        queue.offer(arrival(1, 0.1, name="mcf"))
        assert SserPriorityAdmission().select(queue.jobs, now=0.3).job_id == 1
