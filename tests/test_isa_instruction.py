"""Tests for instruction classes and latency tables."""

import numpy as np

from repro.isa.instruction import (
    EXECUTION_LATENCY,
    FP_WRITERS,
    INT_WRITERS,
    NUM_CLASSES,
    InstructionClass,
    fu_bits_table,
    latency_table,
)


class TestClasses:
    def test_dense_values(self):
        values = sorted(c.value for c in InstructionClass)
        assert values == list(range(NUM_CLASSES))

    def test_latencies_match_table2(self):
        assert EXECUTION_LATENCY[InstructionClass.INT_ALU] == 1
        assert EXECUTION_LATENCY[InstructionClass.INT_MUL] == 3
        assert EXECUTION_LATENCY[InstructionClass.INT_DIV] == 18
        assert EXECUTION_LATENCY[InstructionClass.FP_ADD] == 3
        assert EXECUTION_LATENCY[InstructionClass.FP_MUL] == 5
        assert EXECUTION_LATENCY[InstructionClass.FP_DIV] == 6

    def test_writer_sets_disjoint(self):
        assert not (INT_WRITERS & FP_WRITERS)
        assert InstructionClass.STORE not in INT_WRITERS | FP_WRITERS
        assert InstructionClass.BRANCH not in INT_WRITERS | FP_WRITERS

    def test_tables_dense(self):
        lat = latency_table()
        bits = fu_bits_table()
        assert len(lat) == len(bits) == NUM_CLASSES
        assert lat[InstructionClass.INT_DIV] == 18
        assert bits[InstructionClass.NOP] == 0
        assert bits[InstructionClass.FP_MUL] == 128
        assert lat.dtype == np.int32
