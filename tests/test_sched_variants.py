"""Tests for the ablation scheduler variants."""

import pytest

from repro.config import BIG, SMALL, machine_2b2s
from repro.sched.base import Observation
from repro.sched.variants import ExhaustiveReliabilityScheduler, RawSerScheduler
from repro.sim.experiment import run_workload
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark


def _feed(sched, m, abc_big, abc_small, ips_big=1e9, ips_small=5e8):
    """Run the initial sampling quanta with synthetic counter data."""
    for q in range(2):
        plans = sched.plan_quantum(q)
        for plan in plans:
            obs = []
            for i in range(sched.num_apps):
                t = plan.assignment.core_type_of(i, m)
                ips = ips_big if t == BIG else ips_small
                abc = abc_big[i] if t == BIG else abc_small[i]
                obs.append(Observation(
                    app_index=i, core_id=plan.assignment.core_of[i],
                    core_type=t, duration_seconds=1e-3,
                    instructions=int(ips * 1e-3),
                    measured_abc_seconds=abc * 1e-3,
                ))
            sched.observe(plan, obs)


class TestExhaustiveScheduler:
    def test_finds_global_optimum(self):
        m = machine_2b2s()
        sched = ExhaustiveReliabilityScheduler(m, 4)
        # Apps 1 and 2 have the lowest big-core ABC: optimal big set.
        _feed(sched, m, abc_big=[50e3, 1e3, 2e3, 60e3],
              abc_small=[1e3, 1e3, 1e3, 1e3])
        assignment = sched.plan_quantum(2)[-1].assignment
        assert assignment.core_type_of(1, m) == BIG
        assert assignment.core_type_of(2, m) == BIG
        assert assignment.core_type_of(0, m) == SMALL
        assert assignment.core_type_of(3, m) == SMALL

    def test_keeps_unmoved_apps_on_their_cores(self):
        m = machine_2b2s()
        sched = ExhaustiveReliabilityScheduler(m, 4)
        _feed(sched, m, abc_big=[50e3, 1e3, 2e3, 60e3],
              abc_small=[1e3, 1e3, 1e3, 1e3])
        before = sched.plan_quantum(2)[-1].assignment
        after = sched.plan_quantum(3)[-1].assignment
        assert before.core_of == after.core_of  # stable once optimal

    def test_no_worse_than_greedy_end_to_end(self, machine):
        names = ("milc", "lbm", "mcf", "gobmk")
        profiles = [benchmark(n).scaled(30_000_000) for n in names]
        greedy = run_workload(machine, names, "reliability",
                              instructions=30_000_000)
        exhaustive = MulticoreSimulation(
            machine, profiles, ExhaustiveReliabilityScheduler(machine, 4)
        ).run()
        assert exhaustive.sser <= greedy.sser * 1.10


class TestRawSerScheduler:
    def test_ignores_reference_performance(self):
        m = machine_2b2s()
        sched = RawSerScheduler(m, 4)
        _feed(sched, m, abc_big=[10e3] * 4, abc_small=[1e3] * 4)
        # Raw objective = abc rate, independent of big-core IPS.
        assert sched.objective_value(0, BIG) == pytest.approx(10e3)
        assert sched.objective_value(0, SMALL) == pytest.approx(1e3)

    def test_runs_end_to_end(self, machine):
        names = ("milc", "lbm", "mcf", "gobmk")
        profiles = [benchmark(n).scaled(20_000_000) for n in names]
        result = MulticoreSimulation(
            machine, profiles, RawSerScheduler(machine, 4)
        ).run()
        assert result.sser > 0
        assert result.stp > 0
