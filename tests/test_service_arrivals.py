"""Tests for the seeded, deterministic arrival processes."""

import pytest

from repro.service.arrivals import (
    ARRIVAL_PROCESSES,
    BurstyArrivals,
    DiurnalArrivals,
    JobArrival,
    PoissonArrivals,
    make_process,
    service_benchmark_pool,
)
from repro.workloads.spec2006 import SUITE


class TestBenchmarkPool:
    def test_pool_is_deduplicated_and_known(self):
        pool = service_benchmark_pool()
        assert pool
        assert len(pool) == len(set(pool))
        assert all(name in SUITE for name in pool)

    def test_pool_is_deterministic(self):
        assert service_benchmark_pool() == service_benchmark_pool()


class TestJobArrival:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="arrival time"):
            JobArrival(0, -0.1, "mcf", 1000)

    def test_rejects_non_positive_instructions(self):
        with pytest.raises(ValueError, match="instruction budget"):
            JobArrival(0, 0.0, "mcf", 0)

    def test_per_job_deadline_defaults_to_none(self):
        assert JobArrival(0, 0.0, "mcf", 1000).deadline_seconds is None


class TestProcesses:
    def test_registry_names(self):
        assert sorted(ARRIVAL_PROCESSES) == ["bursty", "diurnal", "poisson"]
        assert ARRIVAL_PROCESSES["poisson"] is PoissonArrivals
        assert ARRIVAL_PROCESSES["bursty"] is BurstyArrivals
        assert ARRIVAL_PROCESSES["diurnal"] is DiurnalArrivals

    @pytest.mark.parametrize("name", sorted(ARRIVAL_PROCESSES))
    def test_stream_deterministic_increasing_and_labeled(self, name):
        process = make_process(name, 500.0, seed=3)
        stream = process.stream(50)
        assert stream == make_process(name, 500.0, seed=3).stream(50)
        assert [job.job_id for job in stream] == list(range(50))
        times = [job.time_seconds for job in stream]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert times[0] > 0.0
        assert all(job.benchmark in process.benchmarks for job in stream)

    @pytest.mark.parametrize("name", sorted(ARRIVAL_PROCESSES))
    def test_seed_changes_stream(self, name):
        a = make_process(name, 500.0, seed=0).stream(20)
        b = make_process(name, 500.0, seed=1).stream(20)
        assert [j.time_seconds for j in a] != [j.time_seconds for j in b]

    def test_poisson_mean_rate_matches_target(self):
        stream = make_process("poisson", 1000.0, seed=7).stream(2000)
        span = stream[-1].time_seconds
        assert 2000 / span == pytest.approx(1000.0, rel=0.1)

    def test_stream_prefix_stability(self):
        process = make_process("bursty", 800.0, seed=5)
        # Arrival *times* are generated sequentially, so a longer
        # stream extends a shorter one (benchmark draws follow the
        # time draws, hence only times are prefix-stable).
        short = [j.time_seconds for j in process.stream(10)]
        long = [j.time_seconds for j in process.stream(30)]
        assert long[: len(short)] == short

    def test_deadline_propagates_to_arrivals(self):
        stream = make_process(
            "poisson", 500.0, seed=0, deadline_seconds=0.01
        ).stream(5)
        assert all(job.deadline_seconds == 0.01 for job in stream)

    def test_instructions_propagate_to_arrivals(self):
        stream = make_process(
            "poisson", 500.0, seed=0, instructions=123_456
        ).stream(5)
        assert all(job.instructions == 123_456 for job in stream)

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_process("sawtooth", 100.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError, match="instruction budget"):
            PoissonArrivals(100.0, instructions=0)
        with pytest.raises(ValueError, match="benchmark pool"):
            PoissonArrivals(100.0, benchmarks=())
        with pytest.raises(ValueError, match="burst factor"):
            BurstyArrivals(100.0, burst_factor=0.5)
        with pytest.raises(ValueError, match="dwell"):
            BurstyArrivals(100.0, calm_seconds=0.0)
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(100.0, amplitude=1.5)
        with pytest.raises(ValueError, match="period"):
            DiurnalArrivals(100.0, period_seconds=0.0)
        with pytest.raises(ValueError, match="count"):
            PoissonArrivals(100.0).stream(-1)
