"""Tests for the line-oriented JSON scheduler-service protocol."""

import asyncio
import io
import json

import pytest

from repro.config import machine_1b1s
from repro.service import (
    OpenSystem,
    SchedulerService,
    ServiceConfig,
    ServiceFeed,
)


def build_service(**overrides):
    config = ServiceConfig(machine=machine_1b1s(), **overrides)
    return SchedulerService(OpenSystem(config, feed=ServiceFeed()))


def dispatch(service, request):
    return asyncio.run(service.handle(request))


class TestDispatch:
    def test_submit_step_job_lifecycle(self):
        service = build_service()
        response = dispatch(
            service,
            {"op": "submit", "benchmark": "povray",
             "instructions": 200_000},
        )
        assert response == {"ok": True, "job_id": 0}
        response = dispatch(service, {"op": "step", "quanta": 5})
        assert response["ok"] and response["quantum"] == 5
        assert response["time"] == pytest.approx(5e-3)
        response = dispatch(service, {"op": "job", "job_id": 0})
        assert response["ok"]
        assert response["job"]["status"] == "completed"
        assert response["job"]["wser"] > 0

    def test_submit_uses_default_instructions(self):
        service = build_service()
        service.default_instructions = 50_000
        dispatch(service, {"op": "submit", "benchmark": "mcf"})
        dispatch(service, {"op": "step"})
        assert service.system.jobs[0].instructions == 50_000

    def test_placement_lists_every_slot(self):
        service = build_service()
        dispatch(service, {"op": "submit", "benchmark": "povray"})
        dispatch(service, {"op": "step"})
        response = dispatch(service, {"op": "placement"})
        assert response["ok"]
        placement = response["placement"]
        assert [entry["slot"] for entry in placement] == [0, 1]
        assert {entry["core_type"] for entry in placement} == {
            "big", "small",
        }

    def test_stats_reports_conservation_fields(self):
        service = build_service()
        dispatch(service, {"op": "submit", "benchmark": "povray"})
        dispatch(service, {"op": "step"})  # arrivals drain at boundaries
        response = dispatch(service, {"op": "stats"})
        stats = response["stats"]
        assert stats["arrived"] == 1
        assert stats["arrived"] == stats["admitted"] + stats["shed"]
        assert "queue_depth" in stats

    def test_shutdown_closes_session(self):
        service = build_service()
        assert dispatch(service, {"op": "shutdown"}) == {
            "ok": True, "shutdown": True,
        }
        assert service.closed

    def test_errors_are_reported_not_raised(self):
        service = build_service()
        assert not dispatch(service, {"op": "warp"})["ok"]
        assert not dispatch(service, {"op": "job", "job_id": 99})["ok"]
        assert not dispatch(service, {"op": "step", "quanta": 0})["ok"]
        response = dispatch(service, {"op": "submit", "benchmark": "doom3"})
        assert not response["ok"] and "error" in response

    def test_handle_line_tolerates_bad_input(self):
        service = build_service()
        assert asyncio.run(service.handle_line("")) == ""
        response = json.loads(asyncio.run(service.handle_line("not json")))
        assert not response["ok"] and "bad json" in response["error"]
        response = json.loads(asyncio.run(service.handle_line("[1, 2]")))
        assert not response["ok"]


class TestStdioTransport:
    def test_serve_stdio_round_trip(self):
        service = build_service()
        requests = "\n".join(
            json.dumps(r)
            for r in (
                {"op": "submit", "benchmark": "povray",
                 "instructions": 200_000},
                {"op": "step", "quanta": 3},
                {"op": "stats"},
                {"op": "shutdown"},
            )
        )
        infile, outfile = io.StringIO(requests + "\n"), io.StringIO()
        asyncio.run(service.serve_stdio(infile, outfile))
        responses = [
            json.loads(line) for line in outfile.getvalue().splitlines()
        ]
        assert len(responses) == 4
        assert all(r["ok"] for r in responses)
        assert responses[-1]["shutdown"] is True


class TestSocketTransport:
    def test_serve_socket_round_trip(self, tmp_path):
        socket_path = str(tmp_path / "repro.sock")

        async def scenario():
            service = build_service()
            server_task = asyncio.ensure_future(
                service.serve_socket(socket_path)
            )
            # Wait for the socket to come up.
            for _ in range(100):
                try:
                    reader, writer = await asyncio.open_unix_connection(
                        socket_path
                    )
                    break
                except (ConnectionRefusedError, FileNotFoundError):
                    await asyncio.sleep(0.01)
            else:
                pytest.fail("service socket never came up")

            async def rpc(request):
                writer.write(json.dumps(request).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            submitted = await rpc(
                {"op": "submit", "benchmark": "povray",
                 "instructions": 200_000}
            )
            stepped = await rpc({"op": "step", "quanta": 4})
            job = await rpc({"op": "job", "job_id": 0})
            closed = await rpc({"op": "shutdown"})
            writer.close()
            await asyncio.wait_for(server_task, timeout=5.0)
            return submitted, stepped, job, closed

        submitted, stepped, job, closed = asyncio.run(scenario())
        assert submitted == {"ok": True, "job_id": 0}
        assert stepped["ok"] and stepped["quantum"] == 4
        assert job["job"]["status"] == "completed"
        assert closed["shutdown"] is True
