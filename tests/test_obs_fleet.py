"""Fleet-wide correlated telemetry: trace propagation, span shipping,
postmortem bundles, the frozen event schema, and old-log compatibility.

These are the integration-level guarantees of the observability layer:
every event in a merged fleet log resolves to one campaign id, span
snapshots from any shard graft into one forest, failures leave a
postmortem bundle behind, and logs written before any of this existed
still replay unchanged.
"""

import json
import socket
import threading
from pathlib import Path

import pytest

from repro.obs import context as obs_context
from repro.obs import flight as obs_flight
from repro.obs import tracing as obs_tracing
from repro.obs.openmetrics import counter_totals, parse_exposition
from repro.runtime import (
    ExecutionEngine,
    FailurePolicy,
    FaultPlan,
    FleetStatus,
    FleetStatusServer,
    InProcessShardTransport,
    JsonlEventSink,
    ResultStore,
    ResumeState,
    ShardCoordinator,
    read_events,
)
from repro.runtime.events import (
    PostmortemWritten,
    SpanSnapshot,
    UnknownEvent,
    event_from_dict,
    event_schema,
    replay_timings,
)
from repro.service.framing import decode_line, encode_line
from repro.sim.campaign import RunSpec

FIXTURES = Path(__file__).parent / "fixtures"


def specs_1b1s(count=5, instructions=120_000):
    pairs = [("povray", "milc"), ("gobmk", "bzip2"), ("mcf", "lbm")]
    return [
        RunSpec("1B1S", pairs[i % len(pairs)], "random", instructions,
                seed=i)
        for i in range(count)
    ]


def run_fleet(shards, specs, *, log=None, store=None, **kwargs):
    """An in-process fleet run, optionally logging to ``log``."""
    sink = JsonlEventSink(log) if log is not None else None
    coordinator = ShardCoordinator(
        shards,
        transport_factory=InProcessShardTransport,
        log_sink=sink,
        **kwargs,
    )
    try:
        return coordinator.run(specs, store=store)
    finally:
        if sink is not None:
            sink.close()


# ---------------------------------------------------------------------------
# Frozen event schema
# ---------------------------------------------------------------------------


class TestEventSchemaFrozen:
    def test_schema_matches_fixture(self):
        """The wire schema is frozen: changing an event's fields must be
        a deliberate act that updates tests/fixtures/event_schema.json
        (and considers old-reader compatibility)."""
        with open(FIXTURES / "event_schema.json") as handle:
            frozen = json.load(handle)
        assert event_schema() == frozen

    def test_new_kinds_degrade_for_old_readers(self):
        """A PR-8-era reader sees unknown kinds as UnknownEvent (the
        same mechanism current readers use for any future kind), so new
        logs never crash old tooling."""
        for event in (
            SpanSnapshot(index=0, label="a", spans={"name": "sim.run"}),
            PostmortemWritten(index=1, label="b", key="k", reason="failed"),
        ):
            data = json.loads(json.dumps(event.to_dict()))
            # Simulate an old reader: its registry has no such kind.
            data["event"] = "unreleased_" + data["event"]
            degraded = event_from_dict(data)
            assert isinstance(degraded, UnknownEvent)
            assert degraded.to_dict() == data

    def test_new_kinds_round_trip_for_current_readers(self):
        for event in (
            SpanSnapshot(index=0, label="a", spans={"name": "sim.run"}),
            PostmortemWritten(index=1, label="b", key="k", reason="timeout",
                              path="/tmp/x.json"),
        ):
            data = json.loads(json.dumps(event.to_dict()))
            assert event_from_dict(data) == event


class TestOldLogsStillReplay:
    def test_pr8_log_parses_without_unknowns(self):
        events = read_events(FIXTURES / "pr8_event_log.jsonl")
        assert events, "fixture must not be empty"
        assert not any(isinstance(e, UnknownEvent) for e in events)
        assert all(e.trace is None for e in events)

    def test_pr8_log_replays_timings(self):
        timings = replay_timings(FIXTURES / "pr8_event_log.jsonl")
        assert len(timings) == 3
        assert all(t.wall_seconds >= 0 for t in timings)

    def test_pr8_log_loads_as_resume_state(self):
        state = ResumeState.load(FIXTURES / "pr8_event_log.jsonl")
        assert len(state.specs) == 3
        assert len(state.completed) == 3
        assert not state.pending


# ---------------------------------------------------------------------------
# Trace propagation across a fleet
# ---------------------------------------------------------------------------


class TestFleetTracePropagation:
    def test_every_merged_event_carries_one_campaign(self, tmp_path):
        log = tmp_path / "fleet.jsonl"
        report = run_fleet(
            2,
            specs_1b1s(6),
            log=log,
            store=tmp_path / "store",
            metrics=True,
            spans=True,
            fault_plan=FaultPlan(fail_attempts={2: 9}),
            failure_policy=FailurePolicy.COLLECT,
        )
        assert len(report.failures) == 1

        events = read_events(log)
        assert all(e.trace is not None for e in events)
        campaigns = {e.trace["campaign"] for e in events}
        assert len(campaigns) == 1
        shards = {
            e.trace["shard"] for e in events if "shard" in e.trace
        }
        assert shards == {0, 1}

    def test_run_key_resolves_to_store_entry(self, tmp_path):
        log = tmp_path / "fleet.jsonl"
        specs = specs_1b1s(4)
        run_fleet(2, specs, log=log, store=tmp_path / "store")
        keys = {spec.key() for spec in specs}
        stamped = [
            e for e in read_events(log)
            if e.trace and e.trace.get("run_key")
        ]
        assert stamped
        for event in stamped:
            assert event.trace["run_key"] in keys

    def test_ambient_context_is_inherited(self, tmp_path):
        outer = obs_context.TraceContext(campaign="feedf00dcafe")
        log = tmp_path / "fleet.jsonl"
        with obs_context.activate(outer):
            run_fleet(2, specs_1b1s(4), log=log)
        campaigns = {
            e.trace["campaign"] for e in read_events(log) if e.trace
        }
        assert campaigns == {"feedf00dcafe"}

    def test_campaign_id_stable_across_shard_counts(self, tmp_path):
        ids = []
        for shards in (1, 2):
            log = tmp_path / f"fleet{shards}.jsonl"
            run_fleet(shards, specs_1b1s(4), log=log)
            (campaign,) = {
                e.trace["campaign"] for e in read_events(log) if e.trace
            }
            ids.append(campaign)
        assert ids[0] == ids[1]


class TestFleetSpanForest:
    def test_span_forest_merged_across_shards(self, tmp_path):
        report = run_fleet(2, specs_1b1s(6), spans=True)
        assert report.spans is not None
        names = {name for name, _ in report.spans.children}
        assert "sim.run" in names
        total_runs = sum(
            child.count
            for (name, _), child in report.spans.children.items()
            if name == "sim.run"
        )
        assert total_runs == 6

    def test_span_snapshots_in_merged_log(self, tmp_path):
        log = tmp_path / "fleet.jsonl"
        run_fleet(2, specs_1b1s(4), log=log, spans=True)
        snapshots = [
            e for e in read_events(log) if isinstance(e, SpanSnapshot)
        ]
        assert len(snapshots) == 4
        merged = obs_tracing.merge_trees(
            obs_tracing.SpanNode.from_dict(s.spans) for s in snapshots
        )
        assert merged.children

    def test_no_span_events_when_disabled(self, tmp_path):
        log = tmp_path / "fleet.jsonl"
        report = run_fleet(2, specs_1b1s(4), log=log)
        assert report.spans is None
        assert not any(
            isinstance(e, SpanSnapshot) for e in read_events(log)
        )


# ---------------------------------------------------------------------------
# Postmortem bundles
# ---------------------------------------------------------------------------


class TestPostmortems:
    def test_failed_job_dumps_bundle_with_trace(self, tmp_path):
        store = tmp_path / "store"
        specs = specs_1b1s(6)
        report = run_fleet(
            2,
            specs,
            store=store,
            fault_plan=FaultPlan(fail_attempts={2: 9}),
            failure_policy=FailurePolicy.COLLECT,
        )
        (failure,) = report.failures

        bundles = obs_flight.find_bundles(store)
        assert len(bundles) == 1
        bundle = obs_flight.load_bundle(bundles[0])
        assert bundle["key"] == specs[failure.index].key()
        assert bundle["reason"] == "failed"
        assert "InjectedFault" in bundle["error"]
        assert bundle["trace"]["shard"] in (0, 1)
        assert bundle["flight"]["events"], "ring must hold recent events"
        rendered = obs_flight.format_bundle(bundle)
        assert "postmortem" in rendered and "InjectedFault" in rendered

    def test_postmortem_marker_event_in_log(self, tmp_path):
        log = tmp_path / "fleet.jsonl"
        run_fleet(
            2,
            specs_1b1s(5),
            log=log,
            store=tmp_path / "store",
            fault_plan=FaultPlan(fail_attempts={1: 9}),
            failure_policy=FailurePolicy.COLLECT,
        )
        markers = [
            e for e in read_events(log)
            if isinstance(e, PostmortemWritten)
        ]
        assert len(markers) == 1
        assert markers[0].reason == "failed"
        assert markers[0].path.endswith(".json")

    def test_timeout_dumps_timeout_bundle(self, tmp_path):
        store = tmp_path / "store"
        engine = ExecutionEngine(
            jobs=2,
            timeout_seconds=0.5,
            fault_plan=FaultPlan(sleep_seconds={0: 5.0}),
            failure_policy=FailurePolicy.COLLECT,
        )
        report = engine.run_many(
            specs_1b1s(2, instructions=2000), store=store
        )
        engine.close()
        assert len(report.failures) == 1
        (bundle_path,) = obs_flight.find_bundles(store)
        assert obs_flight.load_bundle(bundle_path)["reason"] == "timeout"

    def test_no_bundles_without_store(self):
        engine = ExecutionEngine(
            jobs=1,
            fault_plan=FaultPlan(fail_attempts={0: 9}),
            failure_policy=FailurePolicy.COLLECT,
        )
        report = engine.run_many(specs_1b1s(2))
        assert len(report.failures) == 1  # no store -> nowhere to dump

    def test_clean_fleet_leaves_no_bundles(self, tmp_path):
        store = tmp_path / "store"
        run_fleet(2, specs_1b1s(4), store=store)
        assert obs_flight.find_bundles(store) == []

    def test_retried_recovery_leaves_no_bundle(self, tmp_path):
        store = tmp_path / "store"
        report = run_fleet(
            2,
            specs_1b1s(4),
            store=store,
            max_attempts=3,
            fault_plan=FaultPlan(fail_attempts={0: 1}),
        )
        assert report.ok  # the injected fault was retried away
        assert obs_flight.find_bundles(store) == []

    def test_store_digest_unaffected_by_bundles(self, tmp_path):
        store = tmp_path / "store"
        run_fleet(1, specs_1b1s(4), store=store)
        before = ResultStore(store).digest()
        # postmortems/ is a subdirectory, outside the digest's
        # non-recursive ``*.json`` glob.
        obs_flight.dump_bundle(store, "deadbeef", reason="failed")
        assert obs_flight.find_bundles(store)
        assert ResultStore(store).digest() == before


# ---------------------------------------------------------------------------
# Status socket: metrics op + client-thread hygiene
# ---------------------------------------------------------------------------


def query_socket(path, op):
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
        client.connect(str(path))
        with client.makefile("rw") as stream:
            stream.write(encode_line({"op": op}) + "\n")
            stream.flush()
            return decode_line(stream.readline())


class TestStatusSocketMetrics:
    def test_metrics_op_returns_parseable_exposition(self, tmp_path):
        status = FleetStatus([2, 2])
        status.mark_started(0)
        server = FleetStatusServer(status, tmp_path / "status.sock")
        server.start()
        try:
            response = query_socket(tmp_path / "status.sock", "metrics")
            assert response["ok"] is True
            exposition = parse_exposition(response["openmetrics"])
            assert exposition.saw_eof
            assert exposition.value("repro_fleet_total") == 4
        finally:
            server.close()

    def test_metrics_source_overrides_fallback(self, tmp_path):
        custom = "# TYPE x counter\nx_total 1\n# EOF\n"
        server = FleetStatusServer(
            FleetStatus([1]),
            tmp_path / "status.sock",
            metrics_source=lambda: custom,
        )
        server.start()
        try:
            response = query_socket(tmp_path / "status.sock", "metrics")
            assert response["openmetrics"] == custom
        finally:
            server.close()

    def test_close_joins_connected_client_threads(self, tmp_path):
        """The satellite fix: serve_client threads must be tracked and
        joined on close, even with a client parked mid-connection."""
        server = FleetStatusServer(FleetStatus([1]), tmp_path / "s.sock")
        server.start()
        before = set(threading.enumerate())
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        client.connect(str(tmp_path / "s.sock"))
        with client.makefile("rw") as stream:
            stream.write(encode_line({"op": "ping"}) + "\n")
            stream.flush()
            assert decode_line(stream.readline())["ok"] is True
            # The client holds its end open; close() must still return
            # and reap the handler thread.
            server.close()
        client.close()
        lingering = [
            t for t in set(threading.enumerate()) - before if t.is_alive()
        ]
        assert lingering == []

    def test_repeated_start_close_cycles(self, tmp_path):
        baseline = threading.active_count()
        for cycle in range(3):
            server = FleetStatusServer(
                FleetStatus([1]), tmp_path / f"s{cycle}.sock"
            )
            server.start()
            response = query_socket(tmp_path / f"s{cycle}.sock", "fleet")
            assert response["ok"] is True
            server.close()
        assert threading.active_count() == baseline


# ---------------------------------------------------------------------------
# OpenMetrics totals are shard-count invariant
# ---------------------------------------------------------------------------


class TestFleetMetricsInvariance:
    def test_counter_totals_identical_across_shard_counts(self):
        from repro.obs.openmetrics import render_snapshot

        specs = specs_1b1s(6)
        rendered = {}
        for shards in (1, 2, 4):
            report = run_fleet(shards, specs, metrics=True)
            assert report.metrics is not None
            rendered[shards] = render_snapshot(report.metrics)
        totals = {
            shards: counter_totals(parse_exposition(text))
            for shards, text in rendered.items()
        }
        assert totals[1] == totals[2] == totals[4]
        assert totals[1][("sim_runs", ())] == 6
