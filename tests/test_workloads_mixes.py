"""Tests for workload-mix generation (paper Section 5)."""

from collections import Counter

import pytest

from repro.workloads.mixes import (
    CATEGORIES,
    WORKLOADS_PER_CATEGORY,
    WorkloadMix,
    generate_workloads,
)
from repro.workloads.spec2006 import classify_benchmarks


class TestWorkloadMix:
    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            WorkloadMix("HH", ("milc", "milc"))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            WorkloadMix("HHL", ("milc", "lbm"))


class TestGeneration:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_thirty_six_workloads(self, n):
        workloads = generate_workloads(n)
        assert len(workloads) == 6 * WORKLOADS_PER_CATEGORY == 36
        assert all(len(w.benchmarks) == n for w in workloads)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_six_per_category(self, n):
        counts = Counter(w.category for w in generate_workloads(n))
        assert set(counts) == set(CATEGORIES[n])
        assert all(c == WORKLOADS_PER_CATEGORY for c in counts.values())

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_category_composition_respected(self, n):
        classes = classify_benchmarks()
        for w in generate_workloads(n):
            for letter, bench in zip(w.category, w.benchmarks):
                assert classes[bench] == letter, (w.category, bench)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_every_benchmark_occurs(self, n):
        """Paper: "we also make sure that each benchmark occurs at
        least once"."""
        used = Counter(
            b for w in generate_workloads(n) for b in w.benchmarks
        )
        assert len(used) == 29

    def test_no_duplicates_within_workload(self):
        for w in generate_workloads(8):
            assert len(set(w.benchmarks)) == 8

    def test_deterministic(self):
        assert generate_workloads(4) == generate_workloads(4)
        assert generate_workloads(4, seed=1) != generate_workloads(4, seed=2)

    def test_invalid_program_count(self):
        with pytest.raises(ValueError):
            generate_workloads(3)

    def test_custom_classes(self):
        # A tiny custom pool still satisfies the constraints.
        pools = {
            "H": ["h1", "h2"],
            "M": ["m1", "m2"],
            "L": ["l1", "l2"],
        }
        workloads = generate_workloads(2, classes=pools)
        used = {b for w in workloads for b in w.benchmarks}
        assert used == {"h1", "h2", "m1", "m2", "l1", "l2"}
