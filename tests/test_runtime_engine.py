"""Tests for the parallel campaign execution engine."""

import json

import pytest

from repro.runtime.engine import (
    ExecutionEngine,
    FaultPlan,
    default_jobs,
)
from repro.runtime.events import (
    CallbackSink,
    CampaignFinished,
    CampaignStarted,
    CheckFailed,
    JobCached,
    JobFailed,
    JobFinished,
    JobReconciled,
)
from repro.runtime.retry import CampaignError, FailurePolicy, RetryPolicy
from repro.sim.campaign import Campaign, RunSpec
from repro.sim.serialize import run_result_to_dict

NAMES_2B2S = ("povray", "milc", "gobmk", "bzip2")

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_seconds=0.0)


def specs_1b1s(count=3, instructions=500_000):
    pairs = [("povray", "milc"), ("gobmk", "bzip2"), ("mcf", "lbm")]
    return [
        RunSpec("1B1S", pairs[i % len(pairs)], scheduler, instructions, seed=i)
        for i in range(count)
        for scheduler in ("random", "reliability")
    ]


def recording_engine(**kwargs):
    events = []
    engine = ExecutionEngine(sinks=[CallbackSink(events.append)], **kwargs)
    return engine, events


def canonical(results):
    return [
        json.dumps(run_result_to_dict(r), sort_keys=True) for r in results
    ]


class TestSerialParallelEquivalence:
    def test_parallel_identical_to_serial_2b2s(self):
        specs = [
            RunSpec("2B2S", NAMES_2B2S, scheduler, 1_000_000, seed=seed)
            for seed in range(2)
            for scheduler in ("random", "performance", "reliability")
        ]
        serial = ExecutionEngine(jobs=1).run_many(specs)
        parallel = ExecutionEngine(jobs=4).run_many(specs)
        assert canonical(serial.results) == canonical(parallel.results)
        assert [o.index for o in parallel.outcomes] == list(range(len(specs)))

    def test_order_deterministic_despite_completion_reordering(self):
        # Delay job 0 so it finishes last; results must stay in
        # submission order anyway.
        specs = specs_1b1s(2)
        plan = FaultPlan(sleep_seconds={0: 0.4})
        serial = ExecutionEngine(jobs=1).run_many(specs)
        parallel = ExecutionEngine(jobs=2, fault_plan=plan).run_many(specs)
        assert canonical(serial.results) == canonical(parallel.results)


class TestRetry:
    def test_retry_then_succeed(self):
        engine, events = recording_engine(
            jobs=1,
            retry=FAST_RETRY,
            fault_plan=FaultPlan(fail_attempts={0: 2}),
        )
        report = engine.run_many(specs_1b1s(1))
        assert report.ok
        assert report.outcomes[0].attempts == 3
        assert all(o.attempts == 1 for o in report.outcomes[1:])
        finished = [e for e in events if isinstance(e, JobFinished)]
        assert finished[0].attempts == 3 or any(
            e.attempts == 3 for e in finished
        )

    def test_retry_exhaustion_fails_job(self):
        engine, events = recording_engine(
            jobs=1,
            retry=RetryPolicy(max_attempts=2, base_delay_seconds=0.0),
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(fail_attempts={0: 99}),
        )
        report = engine.run_many(specs_1b1s(1))
        assert len(report.failures) == 1
        assert "InjectedFault" in report.failures[0].error
        assert any(isinstance(e, JobFailed) for e in events)


class TestFailurePolicies:
    def test_fail_fast_raises_campaign_error(self):
        engine, events = recording_engine(
            jobs=1, fault_plan=FaultPlan(fail_attempts={0: 99})
        )
        with pytest.raises(CampaignError) as excinfo:
            engine.run_many(specs_1b1s(2))
        report = excinfo.value.report
        assert len(report.outcomes) == 4
        # Job 0 failed; the rest were skipped, never run.
        assert report.outcomes[0].error is not None
        assert all("skipped" in o.error for o in report.outcomes[1:])
        assert isinstance(events[-1], CampaignFinished)
        assert events[-1].failed == 4

    def test_fail_fast_parallel_preserves_completed_results(self):
        engine, _ = recording_engine(
            jobs=2,
            retry=RetryPolicy(max_attempts=1),
            fault_plan=FaultPlan(
                fail_attempts={3: 99}, sleep_seconds={3: 0.2}
            ),
        )
        with pytest.raises(CampaignError) as excinfo:
            engine.run_many(specs_1b1s(2))
        report = excinfo.value.report
        completed = [o for o in report.outcomes if o.ok]
        assert completed, "jobs finished before the abort must survive"

    def test_collect_preserves_partial_results(self):
        engine, events = recording_engine(
            jobs=2,
            retry=RetryPolicy(max_attempts=1),
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(fail_attempts={1: 99}),
        )
        report = engine.run_many(specs_1b1s(2))
        assert len(report.failures) == 1
        assert report.results[1] is None
        assert sum(1 for r in report.results if r is not None) == 3
        failed = [e for e in events if isinstance(e, JobFailed)]
        assert len(failed) == 1 and failed[0].index == 1


class TestCollectPolicy:
    """Event ordering and partial-report contents under COLLECT."""

    def test_event_stream_ordering(self):
        engine, events = recording_engine(
            jobs=1,
            retry=RetryPolicy(max_attempts=1),
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(fail_attempts={1: 99}),
        )
        engine.run_many(specs_1b1s(2))
        assert isinstance(events[0], CampaignStarted)
        assert isinstance(events[-1], CampaignFinished)
        terminal = [
            e for e in events
            if isinstance(e, (JobFinished, JobFailed, JobCached))
        ]
        # Serial execution: exactly one terminal event per job, in order.
        assert [e.index for e in terminal] == list(range(4))
        assert isinstance(terminal[1], JobFailed)

    def test_partial_report_contents(self):
        engine, _ = recording_engine(
            jobs=2,
            retry=RetryPolicy(max_attempts=1),
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(fail_attempts={0: 99, 2: 99}),
        )
        report = engine.run_many(specs_1b1s(2))
        assert not report.ok
        assert len(report.failures) == 2
        assert {o.index for o in report.failures} == {0, 2}
        assert report.results[0] is None and report.results[2] is None
        for index in (1, 3):
            assert report.results[index] is not None
            assert report.outcomes[index].ok
        completed = [o for o in report.outcomes if o.ok]
        assert len(completed) == 2
        assert all(o.error is None for o in completed)


def _fail_gobmk_mixes(result):
    """Check hook failing any run whose mix contains gobmk."""
    from repro.check.invariants import CheckReport, Severity, Violation

    names = [app.name for app in result.apps]
    if "gobmk" in names:
        return CheckReport(
            subject="hook",
            checked=("synthetic_gobmk_ban",),
            violations=(
                Violation(
                    invariant="synthetic_gobmk_ban",
                    severity=Severity.ERROR,
                    subject="hook",
                    message="gobmk is banned by this hook",
                ),
            ),
        )
    return CheckReport(subject="hook", checked=("synthetic_gobmk_ban",))


class TestCheckHook:
    """The opt-in per-job invariant hook (``checks=``)."""

    def test_real_checks_pass_clean_runs(self):
        from repro.check import default_run_checks

        engine, events = recording_engine(jobs=1, checks=default_run_checks)
        report = engine.run_many(specs_1b1s(1))
        assert report.ok
        assert not [e for e in events if isinstance(e, CheckFailed)]

    def test_check_failure_fails_job_without_aborting_siblings(self):
        # specs_1b1s(2) jobs 2 and 3 run the (gobmk, bzip2) pair.
        engine, events = recording_engine(
            jobs=1,
            failure_policy=FailurePolicy.COLLECT,
            checks=_fail_gobmk_mixes,
        )
        report = engine.run_many(specs_1b1s(2))
        assert {o.index for o in report.failures} == {2, 3}
        for outcome in report.failures:
            assert "check failed" in outcome.error
            assert "synthetic_gobmk_ban" in outcome.error
        # Siblings completed normally.
        for index in (0, 1):
            assert report.results[index] is not None

    def test_check_failed_event_precedes_job_failed(self):
        engine, events = recording_engine(
            jobs=1,
            failure_policy=FailurePolicy.COLLECT,
            checks=_fail_gobmk_mixes,
        )
        engine.run_many(specs_1b1s(2))
        checks = [e for e in events if isinstance(e, CheckFailed)]
        assert [e.index for e in checks] == [2, 3]
        assert checks[0].invariants == ("synthetic_gobmk_ban",)
        assert "banned" in checks[0].detail
        for check in checks:
            failed = [
                e for e in events
                if isinstance(e, JobFailed) and e.index == check.index
            ]
            assert failed, "CheckFailed must be followed by JobFailed"
            assert events.index(check) < events.index(failed[0])

    def test_check_failure_aborts_under_fail_fast(self):
        engine, _ = recording_engine(jobs=1, checks=_fail_gobmk_mixes)
        with pytest.raises(CampaignError, match="synthetic_gobmk_ban"):
            engine.run_many(specs_1b1s(2))

    def test_cached_results_are_checked_too(self, tmp_path):
        campaign = Campaign(tmp_path)
        specs = specs_1b1s(2)
        campaign.run_all(specs)

        engine, events = recording_engine(
            jobs=1, failure_policy=FailurePolicy.COLLECT
        )
        again = Campaign(tmp_path)
        results = again.run_all(specs, engine=engine,
                                checks=_fail_gobmk_mixes)
        assert [r is None for r in results] == [False, False, True, True]
        cached = [e for e in events if isinstance(e, JobCached)]
        assert {e.index for e in cached} == {0, 1}
        checks = [e for e in events if isinstance(e, CheckFailed)]
        assert {e.index for e in checks} == {2, 3}

    def test_parallel_check_failures_match_serial(self):
        serial_engine, _ = recording_engine(
            jobs=1,
            failure_policy=FailurePolicy.COLLECT,
            checks=_fail_gobmk_mixes,
        )
        parallel_engine, _ = recording_engine(
            jobs=2,
            failure_policy=FailurePolicy.COLLECT,
            checks=_fail_gobmk_mixes,
        )
        specs = specs_1b1s(2)
        serial = serial_engine.run_many(specs)
        parallel = parallel_engine.run_many(specs)
        assert [o.error is None for o in serial.outcomes] == \
            [o.error is None for o in parallel.outcomes]
        assert canonical([r for r in serial.results if r is not None]) == \
            canonical([r for r in parallel.results if r is not None])


class TestTimeout:
    def test_slow_job_times_out_others_finish(self):
        engine, events = recording_engine(
            jobs=2,
            timeout_seconds=0.5,
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(sleep_seconds={0: 3.0}),
        )
        report = engine.run_many(specs_1b1s(1))
        assert len(report.failures) == 1
        assert "timed out" in report.failures[0].error
        assert report.results[1] is not None
        assert any(isinstance(e, JobFailed) for e in events)

    def test_queued_jobs_do_not_time_out(self):
        # Regression: the timeout clock used to start at submission,
        # so with more specs than workers a job could "time out"
        # purely from queue wait, without ever running.  Four jobs
        # over two workers, each sleeping 1.2s with a 2.4s budget:
        # per-job runtime (sleep + worker overhead) is well under the
        # timeout, but the second wave's queue wait + runtime is past
        # it, so the old submission-based clock would flag it.
        engine, _ = recording_engine(
            jobs=2,
            timeout_seconds=2.4,
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(
                sleep_seconds={i: 1.2 for i in range(4)}
            ),
        )
        report = engine.run_many(specs_1b1s(2, instructions=2000))
        assert report.failures == []
        assert all(result is not None for result in report.results)

    def test_serial_engine_enforces_timeout_post_hoc(self):
        # jobs=1 cannot preempt a running job, but it must still fail
        # one that blew its budget (shard workers run serial engines
        # and rely on this to honor the fleet's --timeout).
        engine, events = recording_engine(
            jobs=1,
            timeout_seconds=1.0,
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(sleep_seconds={0: 2.0}),
        )
        report = engine.run_many(specs_1b1s(1, instructions=2000))
        assert len(report.failures) == 1
        assert "timed out" in report.failures[0].error
        assert report.results[1] is not None
        assert any(isinstance(e, JobFailed) for e in events)

    def test_timeout_reports_zero_attempts(self):
        # A timed-out job's in-flight attempt was killed mid-run; the
        # parent cannot know how many attempts completed, so it must
        # not claim attempts=1 (the worker may have been on any retry).
        engine, events = recording_engine(
            jobs=2,
            retry=FAST_RETRY,
            timeout_seconds=0.5,
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(sleep_seconds={0: 3.0}),
        )
        report = engine.run_many(specs_1b1s(1, instructions=2000))
        timed_out = [e for e in events if isinstance(e, JobFailed)]
        assert len(timed_out) == 1 and timed_out[0].attempts == 0
        assert report.failures[0].attempts == 0


class TestOrphanReconciliation:
    def test_late_completion_reconciled_and_stored(self, tmp_path):
        # future.cancel() is a no-op on a running process-pool job:
        # the worker keeps grinding after the timeout fires.  The
        # engine must reconcile the late completion explicitly -- the
        # result stays out of the report, but the worker persisted it
        # to the store, where the next run finds it.
        engine, events = recording_engine(
            jobs=2,
            timeout_seconds=0.4,
            orphan_grace_seconds=30.0,
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(sleep_seconds={0: 1.2}),
        )
        specs = specs_1b1s(1, instructions=2000)
        report = engine.run_many(specs, store=tmp_path)
        assert "timed out" in report.failures[0].error

        reconciled = [e for e in events if isinstance(e, JobReconciled)]
        assert [e.outcome for e in reconciled] == ["completed"]
        assert reconciled[0].index == 0
        assert reconciled[0].attempts >= 1
        assert reconciled[0].stored

        # The orphan's worker wrote its result; re-running serves the
        # formerly timed-out job as a cache hit.
        again = ExecutionEngine(jobs=1).run_many(specs, store=tmp_path)
        assert again.failures == [] and again.cache_hits == len(specs)

    def test_unfinished_orphan_reported_abandoned(self):
        engine, events = recording_engine(
            jobs=2,
            timeout_seconds=0.3,
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(sleep_seconds={0: 8.0}),
        )
        report = engine.run_many(specs_1b1s(1, instructions=2000))
        assert "timed out" in report.failures[0].error
        reconciled = [e for e in events if isinstance(e, JobReconciled)]
        assert [e.outcome for e in reconciled] == ["abandoned"]


class TestAttemptAccounting:
    def test_collect_attempts_and_wall_consistent(self, tmp_path):
        # One COLLECT campaign with a timeout, an exhausted retry and
        # a retried success: the outcomes, the emitted events and the
        # replayed JSONL log must all tell the same story.
        from repro.runtime import JsonlEventSink, replay_timings

        log = tmp_path / "events.jsonl"
        events = []
        engine = ExecutionEngine(
            jobs=2,
            retry=FAST_RETRY,
            timeout_seconds=0.6,
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(
                sleep_seconds={0: 3.0},
                fail_attempts={
                    1: 99,
                    2: FAST_RETRY.max_attempts - 1,
                },
            ),
            sinks=[CallbackSink(events.append), JsonlEventSink(log)],
        )
        specs = specs_1b1s(2, instructions=2000)[:3]
        report = engine.run_many(specs)
        engine.close()

        by_index = {o.index: o for o in report.outcomes}
        assert "timed out" in by_index[0].error
        assert by_index[0].attempts == 0  # killed mid-attempt
        assert by_index[1].error is not None
        assert by_index[1].attempts == FAST_RETRY.max_attempts
        assert by_index[2].ok
        assert by_index[2].attempts == FAST_RETRY.max_attempts

        for event in events:
            if isinstance(event, (JobFinished, JobFailed)):
                outcome = by_index[event.index]
                assert event.attempts == outcome.attempts
                assert event.wall_seconds == outcome.wall_seconds

        timings = {t.index: t for t in replay_timings(log)}
        for index, outcome in by_index.items():
            assert timings[index].attempts == outcome.attempts
            assert timings[index].status == (
                "ok" if outcome.ok else "failed"
            )


class TestGracefulDegradation:
    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        def no_pool(max_workers):
            raise OSError("no process support here")

        monkeypatch.setattr(
            ExecutionEngine, "_executor_factory", staticmethod(no_pool)
        )
        specs = specs_1b1s(2)
        expected = canonical(ExecutionEngine(jobs=1).run_many(specs).results)
        with pytest.warns(UserWarning, match="process pool unavailable"):
            report = ExecutionEngine(jobs=4).run_many(specs)
        assert canonical(report.results) == expected


class TestEngineCache:
    def test_cache_hits_skip_execution(self, tmp_path):
        campaign = Campaign(tmp_path)
        specs = specs_1b1s(2)
        first = campaign.run_all(specs, jobs=2)
        assert campaign.misses == len(specs) and campaign.hits == 0

        engine, events = recording_engine(jobs=2)
        again = Campaign(tmp_path)
        second = again.run_all(specs, engine=engine)
        assert again.hits == len(specs) and again.misses == 0
        assert canonical(first) == canonical(second)
        assert sum(1 for e in events if isinstance(e, JobCached)) == len(specs)

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        campaign = Campaign(tmp_path)
        specs = specs_1b1s(1)
        first = campaign.run_all(specs)
        # Corrupt one entry and truncate the other mid-JSON.
        paths = sorted(tmp_path.glob("*.json"))
        paths[0].write_text("{ not json")
        paths[1].write_text(paths[1].read_text()[:40])

        again = Campaign(tmp_path)
        second = again.run_all(specs, jobs=1)
        assert again.misses == 2 and again.hits == 0
        assert canonical(first) == canonical(second)
        # The corrupt entries were rewritten and are valid again.
        third = Campaign(tmp_path)
        third.run_all(specs)
        assert third.hits == 2


class TestDefaultJobs:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.warns(UserWarning, match="REPRO_JOBS"):
            assert default_jobs() == 1


class TestRunSpecMachine:
    def test_unknown_machine_raises_value_error(self):
        spec = RunSpec("9B9S", ("povray", "milc"), "random", 1_000)
        with pytest.raises(ValueError, match="known machines: .*2B2S"):
            spec.build_machine()

    def test_campaign_run_accepts_machine_override(self, tmp_path):
        from repro.config import machine_1b1s

        campaign = Campaign(tmp_path)
        spec = RunSpec(
            "custom-tag", ("povray", "milc"), "random", 500_000
        )
        result = campaign.run(spec, machine=machine_1b1s())
        assert result.machine_name == "1B1S"
        # Cached under the custom tag; the override is only needed on miss.
        assert campaign.run(spec).sser == pytest.approx(result.sser)
        assert campaign.hits == 1

    def test_campaign_run_unknown_machine_message(self, tmp_path):
        campaign = Campaign(tmp_path)
        spec = RunSpec("custom-tag", ("povray", "milc"), "random", 500_000)
        with pytest.raises(ValueError, match="machine override"):
            campaign.run(spec)


class TestExperimentSweepJobs:
    def test_sweep_parallel_matches_serial(self):
        from repro.config import machine_1b1s
        from repro.sim.experiment import sweep
        from repro.workloads.mixes import WorkloadMix

        workloads = [
            WorkloadMix("MH", ("povray", "milc")),
            WorkloadMix("LM", ("gobmk", "bzip2")),
        ]
        machine = machine_1b1s()
        serial = sweep(machine, workloads, ("random", "reliability"),
                       instructions=500_000, jobs=1)
        parallel = sweep(machine, workloads, ("random", "reliability"),
                         instructions=500_000, jobs=2)
        for name in serial:
            assert canonical(serial[name]) == canonical(parallel[name])

    def test_sweep_progress_callback_still_works(self):
        from repro.config import machine_1b1s
        from repro.sim.experiment import sweep
        from repro.workloads.mixes import WorkloadMix

        lines = []
        sweep(machine_1b1s(), [WorkloadMix("MH", ("povray", "milc"))],
              ("random",), instructions=500_000, progress=lines.append)
        assert len(lines) == 1
        assert lines[0].startswith("MH/0 random: sser=")


def _cube(x):
    return x ** 3


class TestMapTasks:
    def test_parallel_map_preserves_item_order(self):
        engine = ExecutionEngine(jobs=2)
        try:
            assert engine.map_tasks(_cube, range(7)) == [
                _cube(i) for i in range(7)
            ]
            # The pool persists across calls.
            first = engine._map_executor
            assert first is not None
            engine.map_tasks(_cube, range(4))
            assert engine._map_executor is first
        finally:
            engine.close()
        assert engine._map_executor is None

    def test_serial_paths_never_create_a_pool(self):
        engine = ExecutionEngine(jobs=1)
        assert engine.map_tasks(_cube, range(5)) == [
            _cube(i) for i in range(5)
        ]
        assert engine._map_executor is None
        engine = ExecutionEngine(jobs=4)
        try:
            assert engine.map_tasks(_cube, [3]) == [27]
            assert engine._map_executor is None  # single item: no pool
        finally:
            engine.close()

    def test_pool_unavailable_maps_in_process(self, monkeypatch):
        def no_pool(max_workers):
            raise OSError("no process support here")

        monkeypatch.setattr(
            ExecutionEngine, "_executor_factory", staticmethod(no_pool)
        )
        engine = ExecutionEngine(jobs=2)
        with pytest.warns(UserWarning, match="process pool unavailable"):
            assert engine.map_tasks(_cube, range(4)) == [
                _cube(i) for i in range(4)
            ]
        # Creation is not retried on the next call.
        assert engine.map_tasks(_cube, range(4)) == [
            _cube(i) for i in range(4)
        ]
