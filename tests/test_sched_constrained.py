"""Tests for the STP-constrained reliability scheduler extension."""

import pytest

from repro.config import BIG, SMALL, machine_2b2s
from repro.sched.base import Observation
from repro.sched.constrained import ConstrainedReliabilityScheduler
from repro.sim.experiment import run_workload
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark


def _feed(sched, m, abc_big, abc_small, ips_big, ips_small):
    for q in range(2):
        plans = sched.plan_quantum(q)
        for plan in plans:
            obs = []
            for i in range(sched.num_apps):
                t = plan.assignment.core_type_of(i, m)
                ips = ips_big[i] if t == BIG else ips_small[i]
                abc = abc_big[i] if t == BIG else abc_small[i]
                obs.append(Observation(
                    app_index=i, core_id=plan.assignment.core_of[i],
                    core_type=t, duration_seconds=1e-3,
                    instructions=int(ips * 1e-3),
                    measured_abc_seconds=abc * 1e-3,
                ))
            sched.observe(plan, obs)


class TestConstruction:
    def test_loss_bound_validated(self):
        m = machine_2b2s()
        ConstrainedReliabilityScheduler(m, 4, max_stp_loss=0.0)
        ConstrainedReliabilityScheduler(m, 4, max_stp_loss=1.0)
        with pytest.raises(ValueError):
            ConstrainedReliabilityScheduler(m, 4, max_stp_loss=-0.1)
        with pytest.raises(ValueError):
            ConstrainedReliabilityScheduler(m, 4, max_stp_loss=1.5)


class TestConstraintBehaviour:
    # Apps 0, 1: big speedup 4x, high big-core ABC.
    # Apps 2, 3: big speedup 1.1x, low big-core ABC.
    IPS_BIG = [4e9, 4e9, 1.1e9, 1.1e9]
    IPS_SMALL = [1e9, 1e9, 1e9, 1e9]
    ABC_BIG = [50e3, 50e3, 5e3, 5e3]
    ABC_SMALL = [2e3, 2e3, 2e3, 2e3]

    def _assignment(self, max_stp_loss):
        m = machine_2b2s()
        sched = ConstrainedReliabilityScheduler(
            m, 4, max_stp_loss=max_stp_loss
        )
        _feed(sched, m, self.ABC_BIG, self.ABC_SMALL,
              self.IPS_BIG, self.IPS_SMALL)
        return sched.plan_quantum(2)[-1].assignment, m

    def test_zero_loss_is_performance_optimal(self):
        assignment, m = self._assignment(max_stp_loss=0.0)
        # Performance demands the 4x-speedup apps on big.
        assert assignment.core_type_of(0, m) == BIG
        assert assignment.core_type_of(1, m) == BIG

    def test_unbounded_loss_is_reliability_optimal(self):
        assignment, m = self._assignment(max_stp_loss=1.0)
        # Reliability demands the low-ABC apps on big.
        assert assignment.core_type_of(2, m) == BIG
        assert assignment.core_type_of(3, m) == BIG

    def test_intermediate_bound_respected(self):
        """With a tight bound the scheduler may not fully sacrifice
        throughput: its chosen assignment's estimated STP stays within
        the bound of the best."""
        m = machine_2b2s()
        sched = ConstrainedReliabilityScheduler(m, 4, max_stp_loss=0.10)
        _feed(sched, m, self.ABC_BIG, self.ABC_SMALL,
              self.IPS_BIG, self.IPS_SMALL)
        assignment = sched.plan_quantum(2)[-1].assignment
        types = [assignment.core_type_of(i, m) for i in range(4)]
        stp = sum(
            (self.IPS_BIG[i] if types[i] == BIG else self.IPS_SMALL[i])
            / self.IPS_BIG[i]
            for i in range(4)
        )
        best_stp = 2.0 + 2 * (1e9 / 1.1e9)  # apps 0,1 big; 2,3 small
        assert stp >= 0.90 * best_stp - 1e-9


@pytest.mark.slow
class TestEndToEnd:
    def test_interpolates_between_schedulers(self, machine):
        names = ("milc", "lbm", "mcf", "gobmk")
        n = 50_000_000
        profiles = [benchmark(x).scaled(n) for x in names]
        rel = run_workload(machine, names, "reliability", instructions=n)
        perf = run_workload(machine, names, "performance", instructions=n)
        constrained = MulticoreSimulation(
            machine, profiles,
            ConstrainedReliabilityScheduler(machine, 4, max_stp_loss=0.03),
        ).run()
        # STP within the bound's ballpark of the performance scheduler,
        # SSER no worse than the performance scheduler.
        assert constrained.stp >= 0.90 * perf.stp
        assert constrained.sser <= perf.sser * 1.02
        # And the unconstrained scheduler remains the SSER lower bound.
        assert rel.sser <= constrained.sser * 1.05
