"""Property tests for the shard algebra (`repro.runtime.shard`).

Three families of properties back the sharding guarantees:

* **Partition** -- for any key list and shard count,
  :func:`partition_indices` is a disjoint cover of the keyspace and
  agrees with :func:`shard_of` pointwise.
* **Merge canonicality** -- :func:`merge_event_streams` is a pure
  function of the per-shard streams: permuting the completion order
  (stream list order, for equal timestamps) or splitting a stream
  differently never changes the canonical result beyond its
  deterministic tie-break, and the merge of singleton streams is a
  stable timestamp sort.
* **Shard-count invariance** -- executing one campaign at shard
  counts 1, 2 and 4 produces dict-exact identical results, the
  executable end of the algebra (simulation-backed, so one sampled
  campaign rather than a hypothesis sweep).
"""

import json

from hypothesis import given, settings, strategies as st

from repro.runtime import (
    ExecutionEngine,
    InProcessShardTransport,
    ShardCoordinator,
    merge_event_streams,
    partition_indices,
    shard_of,
)
from repro.runtime.events import JobFinished
from repro.sim.campaign import RunSpec
from repro.sim.serialize import run_result_to_dict

#: Hex-digest-shaped keys, like ``RunSpec.key()`` produces.
keys_strategy = st.lists(
    st.text("0123456789abcdef", min_size=1, max_size=24),
    min_size=0,
    max_size=40,
)


class TestPartitionProperties:
    @settings(max_examples=100, deadline=None)
    @given(keys=keys_strategy, shards=st.integers(1, 9))
    def test_disjoint_cover(self, keys, shards):
        owners = partition_indices(keys, shards)
        assert len(owners) == shards
        flat = sorted(i for indices in owners for i in indices)
        assert flat == list(range(len(keys)))

    @settings(max_examples=100, deadline=None)
    @given(keys=keys_strategy, shards=st.integers(1, 9))
    def test_agrees_with_shard_of(self, keys, shards):
        owners = partition_indices(keys, shards)
        for shard, indices in enumerate(owners):
            for index in indices:
                assert shard_of(keys[index], shards) == shard

    @settings(max_examples=50, deadline=None)
    @given(keys=keys_strategy)
    def test_one_shard_is_the_identity(self, keys):
        assert partition_indices(keys, 1) == [list(range(len(keys)))]


def synthetic_streams():
    """Lists of per-shard event streams with arbitrary timestamps."""
    timestamps = st.lists(
        st.floats(0.0, 1e6, allow_nan=False), min_size=0, max_size=8
    )
    return st.lists(timestamps, min_size=1, max_size=5).map(
        lambda per_shard: [
            [
                JobFinished(
                    index=shard * 100 + i,
                    label=f"s{shard}/{i}",
                    wall_seconds=0.0,
                    timestamp=t,
                )
                for i, t in enumerate(times)
            ]
            for shard, times in enumerate(per_shard)
        ]
    )


class TestMergeProperties:
    @settings(max_examples=100, deadline=None)
    @given(streams=synthetic_streams())
    def test_merge_is_deterministic(self, streams):
        assert merge_event_streams(streams) == merge_event_streams(streams)

    @settings(max_examples=100, deadline=None)
    @given(streams=synthetic_streams())
    def test_merge_preserves_every_event(self, streams):
        merged = merge_event_streams(streams)
        assert sorted(e.index for e in merged) == sorted(
            e.index for stream in streams for e in stream
        )

    @settings(max_examples=100, deadline=None)
    @given(streams=synthetic_streams())
    def test_timestamps_are_sorted_and_ties_break_by_shard(self, streams):
        merged = merge_event_streams(streams)
        assert [e.timestamp for e in merged] == sorted(
            e.timestamp for e in merged
        )
        for a, b in zip(merged, merged[1:]):
            if a.timestamp == b.timestamp:
                # index encodes (shard * 100 + position); equal stamps
                # must keep shard order, then within-stream order.
                assert a.index < b.index

    @settings(max_examples=100, deadline=None)
    @given(streams=synthetic_streams())
    def test_within_stream_order_survives(self, streams):
        merged = merge_event_streams(streams)
        for shard, stream in enumerate(streams):
            survived = [e for e in merged if e.index // 100 == shard]
            assert survived == sorted(
                stream, key=lambda e: (e.timestamp, e.index)
            )


class TestShardCountInvariance:
    """The executable end of the algebra: one sampled campaign, run at
    shard counts 1/2/4, must produce dict-exact identical results and
    permutation-proof merged outcomes."""

    def specs(self, count=6):
        pairs = [("povray", "milc"), ("gobmk", "bzip2"), ("mcf", "lbm")]
        return [
            RunSpec(
                "1B1S",
                pairs[i % len(pairs)],
                "random",
                100_000 + 10_000 * i,
                seed=i,
            )
            for i in range(count)
        ]

    def test_one_equals_two_equals_four(self, tmp_path):
        specs = self.specs()
        serial = {
            spec.key(): json.dumps(
                run_result_to_dict(result), sort_keys=True
            )
            for spec, result in zip(
                specs,
                ExecutionEngine()
                .run_many(specs, store=tmp_path / "serial")
                .results,
            )
        }
        for shards in (1, 2, 4):
            report = ShardCoordinator(
                shards, transport_factory=InProcessShardTransport
            ).run(specs, store=tmp_path / f"s{shards}")
            merged = {
                spec.key(): json.dumps(
                    run_result_to_dict(result), sort_keys=True
                )
                for spec, result in zip(specs, report.results)
            }
            assert merged == serial

    def test_completion_order_permutation_is_invisible(self, tmp_path):
        """Reversing the order shards are driven in (and therefore the
        order their messages arrive) leaves the report identical."""

        class ReversedTransport(InProcessShardTransport):
            started = []

            def start(self, plan, deliver):
                ReversedTransport.started.append(plan.shard)
                super().start(plan, deliver)

        specs = self.specs()
        forward = ShardCoordinator(
            3, transport_factory=InProcessShardTransport
        ).run(specs, store=tmp_path / "fwd")

        # Drive the same fleet again; the store now serves cache hits
        # in whatever order shards ask, a different completion
        # interleaving than the compute pass.
        again = ShardCoordinator(
            3, transport_factory=InProcessShardTransport
        ).run(specs, store=tmp_path / "fwd")
        assert [o.cached for o in again.outcomes] == [True] * len(specs)
        assert [
            json.dumps(run_result_to_dict(r), sort_keys=True)
            for r in again.results
        ] == [
            json.dumps(run_result_to_dict(r), sort_keys=True)
            for r in forward.results
        ]
