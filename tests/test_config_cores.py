"""Tests for core configurations (Table 2)."""

import pytest

from repro.config.cores import big_core_config, small_core_config
from repro.config.structures import StructureKind
from repro.isa.instruction import InstructionClass


class TestBigCore:
    def test_table2_geometry(self, big_core):
        assert big_core.out_of_order
        assert big_core.width == 4
        assert big_core.frontend_depth == 8
        assert big_core.rob.entries == 128
        assert big_core.rob.bits_per_entry == 76
        assert big_core.issue_queue.entries == 64
        assert big_core.load_queue.entries == 64
        assert big_core.store_queue.entries == 64
        assert big_core.register_file.int_registers == 120
        assert big_core.register_file.fp_registers == 96

    def test_default_frequency(self, big_core):
        assert big_core.frequency_ghz == pytest.approx(2.66)
        assert big_core.frequency_hz == pytest.approx(2.66e9)

    def test_functional_units_match_table2(self, big_core):
        counts = {p.instruction_class: p.count for p in big_core.functional_units}
        assert counts[InstructionClass.INT_ALU] == 3
        assert counts[InstructionClass.INT_MUL] == 1
        latencies = {
            p.instruction_class: p.latency for p in big_core.functional_units
        }
        assert latencies[InstructionClass.INT_DIV] == 18
        assert latencies[InstructionClass.FP_MUL] == 5

    def test_dividers_unpipelined(self, big_core):
        for pool in big_core.functional_units:
            if pool.instruction_class in (
                InstructionClass.INT_DIV,
                InstructionClass.FP_DIV,
            ):
                assert not pool.pipelined
                assert pool.throughput == pytest.approx(1 / pool.latency)
            else:
                assert pool.pipelined
                assert pool.throughput == pool.count

    def test_total_ace_capacity(self, big_core):
        # ROB + IQ + LQ + SQ + RF + FU
        expected = 9728 + 64 * 32 + 64 * 80 + 64 * 144 + 19968
        expected += big_core.fu_total_bits
        assert big_core.total_ace_capacity_bits == expected

    def test_fu_pool_fallback_to_alu(self, big_core):
        pool = big_core.fu_pool(InstructionClass.LOAD)
        assert pool.instruction_class == InstructionClass.INT_ALU

    def test_with_frequency(self, big_core):
        slow = big_core.with_frequency(1.33)
        assert slow.frequency_ghz == pytest.approx(1.33)
        assert big_core.frequency_ghz == pytest.approx(2.66)  # unchanged


class TestSmallCore:
    def test_table2_geometry(self, small_core):
        assert not small_core.out_of_order
        assert small_core.width == 2
        assert small_core.frontend_depth == 5
        assert small_core.rob is None
        assert small_core.issue_queue.entries == 4
        assert small_core.store_queue.entries == 10
        assert small_core.pipeline_latches.entries == 10
        assert small_core.pipeline_latches.bits_per_entry == 76

    def test_tracked_structures(self, small_core):
        kinds = set(small_core.tracked_structures())
        assert StructureKind.PIPELINE_LATCHES in kinds
        assert StructureKind.ROB not in kinds

    def test_capacity_smaller_than_big(self, big_core, small_core):
        assert (
            small_core.total_ace_capacity_bits
            < big_core.total_ace_capacity_bits / 4
        )
