"""Focused tests for the small-core mechanistic model."""

import pytest

from repro.config import MemoryConfig, small_core_config
from repro.config.structures import StructureKind
from repro.cores.base import ISOLATED, MemoryEnvironment
from repro.cores.mechanistic import MechanisticCoreModel, analyze_small_phase
from repro.workloads.characteristics import PhaseCharacteristics
from repro.workloads.spec2006 import benchmark


def _chars(**kwargs):
    return PhaseCharacteristics(**kwargs)


class TestSmallCoreCpi:
    def test_base_cpi_is_half(self, small_core, memory):
        analysis = analyze_small_phase(_chars(), small_core, memory, ISOLATED)
        assert analysis.cpi_components["base"] == pytest.approx(0.5)

    def test_misses_fully_exposed(self, small_core, memory):
        """In-order stall-on-use: L2-hit latency is fully exposed,
        unlike the out-of-order core which hides most of it."""
        chars = _chars(l1d_mpki=20, l2_mpki=0.0, l3_mpki=0.0)
        analysis = analyze_small_phase(chars, small_core, memory, ISOLATED)
        expected = 0.02 * memory.l2.latency_cycles
        assert analysis.cpi_components["l2"] == pytest.approx(expected)

    def test_no_memory_level_parallelism(self, small_core, memory):
        """The in-order core cannot overlap DRAM accesses: its memory
        CPI is independent of the profile's (big-core) MLP."""
        base = dict(l1d_mpki=20, l2_mpki=10, l3_mpki=5)
        serial = analyze_small_phase(
            _chars(**base, mlp=1.0), small_core, memory, ISOLATED
        )
        deep = analyze_small_phase(
            _chars(**base, mlp=6.0), small_core, memory, ISOLATED
        )
        assert serial.cpi_components["mem"] == pytest.approx(
            deep.cpi_components["mem"]
        )

    def test_shallow_mispredict_penalty(self, small_core, memory):
        clean = analyze_small_phase(_chars(branch_mpki=0.0), small_core,
                                    memory, ISOLATED)
        noisy = analyze_small_phase(_chars(branch_mpki=10.0), small_core,
                                    memory, ISOLATED)
        penalty = (noisy.cpi_components["bpred"] -
                   clean.cpi_components["bpred"]) / 0.010
        assert penalty == pytest.approx(small_core.frontend_depth)


class TestSmallCoreAce:
    def test_pipeline_latches_dominate_structures(self, small_core, memory):
        analysis = analyze_small_phase(_chars(), small_core, memory, ISOLATED)
        latches = analysis.ace_bits_per_cycle[StructureKind.PIPELINE_LATCHES]
        queues = (
            analysis.ace_bits_per_cycle[StructureKind.ISSUE_QUEUE]
            + analysis.ace_bits_per_cycle[StructureKind.STORE_QUEUE]
        )
        assert latches > queues

    def test_stalls_fill_the_latches(self, small_core, memory):
        flowing = analyze_small_phase(
            _chars(l1d_mpki=0.5, l2_mpki=0.2, l3_mpki=0.0),
            small_core, memory, ISOLATED,
        )
        stalled = analyze_small_phase(
            _chars(l1d_mpki=40, l2_mpki=30, l3_mpki=20),
            small_core, memory, ISOLATED,
        )
        assert (
            stalled.ace_bits_per_cycle[StructureKind.PIPELINE_LATCHES]
            > flowing.ace_bits_per_cycle[StructureKind.PIPELINE_LATCHES]
        )

    def test_register_file_floor_present(self, small_core, memory):
        analysis = analyze_small_phase(_chars(), small_core, memory, ISOLATED)
        assert analysis.ace_bits_per_cycle[StructureKind.REGISTER_FILE] > 0

    def test_environment_affects_small_core_too(self, small_core, memory):
        chars = _chars(l1d_mpki=25, l2_mpki=15, l3_mpki=4,
                       cache_sensitivity=0.8)
        contended = MemoryEnvironment(l3_share_fraction=0.2,
                                      dram_latency_multiplier=2.0)
        iso = analyze_small_phase(chars, small_core, memory, ISOLATED)
        shared = analyze_small_phase(chars, small_core, memory, contended)
        assert shared.ipc < iso.ipc


class TestSmallCoreRunCycles:
    def test_budget_and_phases(self, memory):
        model = MechanisticCoreModel(small_core_config(), memory)
        prof = benchmark("calculix").scaled(5_000_000)
        result = model.run_cycles(prof, 0, 200_000, ISOLATED)
        assert result.cycles == pytest.approx(200_000, rel=0.01)
        assert result.instructions > 0
        assert StructureKind.PIPELINE_LATCHES in result.ace_bit_cycles
