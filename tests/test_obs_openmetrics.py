"""Tests for the OpenMetrics exposition (repro.obs.openmetrics)."""

import math

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.openmetrics import (
    counter_totals,
    parse_exposition,
    render_fleet,
    render_snapshot,
    sanitize_name,
)


def populated_registry(scale=1):
    registry = MetricsRegistry()
    registry.counter("sim.runs").inc(3 * scale)
    registry.counter("sim.instructions", core="big").inc(1000 * scale)
    registry.counter("sim.instructions", core="small").inc(500 * scale)
    registry.gauge("queue.depth").set(7)
    for i in range(4 * scale):
        registry.timer("runtime.job_seconds").observe(0.01 * (i + 1))
    registry.histogram("sim.quantum_instructions").observe(1e6)
    return registry


class TestSanitizeName:
    def test_dots_become_underscores(self):
        assert sanitize_name("sim.runs") == "sim_runs"

    def test_leading_digit_prefixed(self):
        name = sanitize_name("0bad")
        assert name[0] not in "0123456789"


class TestRenderSnapshot:
    def test_deterministic(self):
        snapshot = populated_registry().snapshot()
        assert render_snapshot(snapshot) == render_snapshot(snapshot)

    def test_ends_with_eof(self):
        text = render_snapshot(populated_registry().snapshot())
        assert text.endswith("# EOF\n")

    def test_accepts_plain_dict_and_none(self):
        snapshot = populated_registry().snapshot()
        assert render_snapshot(snapshot.to_dict()) == render_snapshot(
            snapshot
        )
        assert render_snapshot(None) == "# EOF\n"

    def test_counter_becomes_total_with_labels(self):
        text = render_snapshot(populated_registry().snapshot())
        assert 'repro_sim_instructions_total{core="big"} 1000' in text
        assert "# TYPE repro_sim_instructions counter" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        histogram.observe(1e-9)  # below the first boundary
        histogram.observe(1e9)  # above the last boundary
        exposition = parse_exposition(render_snapshot(registry.snapshot()))
        assert exposition.value("repro_h_bucket", le="+Inf") == 2
        assert exposition.value("repro_h_count") == 2


class TestScrapeRoundTrip:
    def test_parsed_totals_match_source_snapshot(self):
        registry = populated_registry()
        snapshot = registry.snapshot()
        exposition = parse_exposition(render_snapshot(snapshot))
        assert exposition.saw_eof
        totals = counter_totals(exposition)
        assert totals[("sim_runs", ())] == 3
        assert totals[("sim_instructions", (("core", "big"),))] == 1000
        assert totals[("sim_instructions", (("core", "small"),))] == 500
        # Every counter in the source appears in the scrape.
        source_counters = sum(
            1
            for (_, _), (kind, _) in snapshot.series.items()
            if kind == "counter"
        )
        assert len(totals) == source_counters

    def test_gauge_and_histogram_values_survive(self):
        exposition = parse_exposition(
            render_snapshot(populated_registry().snapshot())
        )
        assert exposition.value("repro_queue_depth") == 7
        assert exposition.value("repro_runtime_job_seconds_count") == 4
        total = exposition.value("repro_runtime_job_seconds_sum")
        assert total == pytest.approx(0.01 + 0.02 + 0.03 + 0.04)

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("}{ not a metric line")

    def test_special_values(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(float("nan"))
        exposition = parse_exposition(render_snapshot(registry.snapshot()))
        assert math.isnan(exposition.value("repro_g"))


class TestMergeRenderCommutes:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_merge_then_render_counter_totals(self, shards):
        """Summing per-shard scraped counters equals scraping the
        merged snapshot -- the property CI's byte-identity check
        relies on."""
        snapshots = [
            populated_registry(scale=s + 1).snapshot()
            for s in range(shards)
        ]
        merged = merge_snapshots(snapshots)
        merged_totals = counter_totals(
            parse_exposition(render_snapshot(merged))
        )
        summed: dict = {}
        for snapshot in snapshots:
            for key, value in counter_totals(
                parse_exposition(render_snapshot(snapshot))
            ).items():
                summed[key] = summed.get(key, 0.0) + value
        assert summed == merged_totals

    def test_merge_order_does_not_change_rendering(self):
        a = populated_registry(scale=1).snapshot()
        b = populated_registry(scale=3).snapshot()
        assert render_snapshot(merge_snapshots([a, b])) == render_snapshot(
            merge_snapshots([b, a])
        )


class TestRenderFleet:
    FLEET = {
        "shards": [
            {"shard": 0, "total": 3, "done": 2, "failed": 1, "cached": 0,
             "queued": 0, "started": True, "finished": True},
            {"shard": 1, "total": 3, "done": 3, "failed": 0, "cached": 1,
             "queued": 0, "started": True, "finished": False},
        ],
        "total": 6,
        "done": 5,
        "failed": 1,
        "queued": 0,
        "cached": 1,
        "elapsed_seconds": 2.5,
        "runs_per_s": 2.4,
        "eta_seconds": 0.0,
    }

    def test_fleet_gauges(self):
        exposition = parse_exposition(
            render_snapshot(None, fleet=self.FLEET)
        )
        assert exposition.value("repro_fleet_done") == 5
        assert exposition.value("repro_fleet_shard_done", shard="0") == 2
        assert exposition.value("repro_fleet_shard_done", shard="1") == 3
        assert exposition.value("repro_fleet_shard_finished", shard="1") == 0

    def test_none_eta_omitted(self):
        fleet = dict(self.FLEET, eta_seconds=None)
        text = render_fleet(fleet)
        assert "eta_seconds" not in text
