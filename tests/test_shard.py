"""Tests for sharded campaign execution (`repro.runtime.shard`).

The shard coordinator's contract is byte-identity with the single-host
engine: same results, same store bytes, same canonical event log, for
any shard count, any transport, and any worker completion order.
These tests pin the keyspace partition, the wire protocol, the
coordinator/worker loop over both transports, dead-worker recovery,
kill-and-resume, and the merged fleet telemetry.
"""

import json
import socket

import pytest

from repro.check import check_resume
from repro.runtime import (
    CallbackSink,
    CampaignError,
    CampaignPlan,
    ExecutionEngine,
    FailurePolicy,
    FaultPlan,
    FleetStatus,
    FleetStatusServer,
    InProcessShardTransport,
    JobOutcome,
    JsonlEventSink,
    ProcessShardTransport,
    ResultStore,
    ResumeState,
    ShardCoordinator,
    ShardPlan,
    ShardProtocolError,
    merge_event_streams,
    partition_indices,
    read_events,
    read_events_merged,
    shard_of,
)
from repro.runtime.events import JobFinished, JobStarted
from repro.runtime.shard import _SHARD_LOCAL_EVENTS
from repro.service.framing import decode_line, encode_line
from repro.sim.campaign import RunSpec
from repro.sim.serialize import run_result_to_dict


def specs_1b1s(count=5, instructions=120_000):
    pairs = [("povray", "milc"), ("gobmk", "bzip2"), ("mcf", "lbm")]
    return [
        RunSpec(
            "1B1S",
            pairs[i % len(pairs)],
            "random",
            instructions,
            seed=i,
        )
        for i in range(count)
    ]


def canonical(results):
    return [
        json.dumps(run_result_to_dict(r), sort_keys=True) for r in results
    ]


def inprocess_coordinator(shards, **kwargs) -> ShardCoordinator:
    return ShardCoordinator(
        shards, transport_factory=InProcessShardTransport, **kwargs
    )


class TestPartition:
    def test_disjoint_cover(self):
        keys = [spec.key() for spec in specs_1b1s(12)]
        for shards in (1, 2, 3, 4, 7):
            owners = partition_indices(keys, shards)
            assert len(owners) == shards
            flat = sorted(i for indices in owners for i in indices)
            assert flat == list(range(len(keys)))
            for shard, indices in enumerate(owners):
                assert indices == sorted(indices)
                for index in indices:
                    assert shard_of(keys[index], shards) == shard

    def test_single_shard_owns_everything(self):
        keys = [spec.key() for spec in specs_1b1s(4)]
        assert partition_indices(keys, 1) == [list(range(4))]

    def test_stable_across_calls(self):
        keys = [spec.key() for spec in specs_1b1s(8)]
        assert partition_indices(keys, 3) == partition_indices(keys, 3)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            shard_of("ff", 0)
        with pytest.raises(ValueError):
            ShardCoordinator(0)


class TestProtocol:
    def make_plan(self, **overrides) -> ShardPlan:
        specs = specs_1b1s(3)
        defaults = dict(
            shard=1,
            shards=2,
            indices=(0, 2, 4),
            specs=tuple(specs),
            labels=("a", "b", "c"),
            store="/tmp/store",
            machine=None,
            batched=False,
            metrics=True,
            checks=False,
            max_attempts=2,
            checkpoint_every=4,
            fail_attempts={1: 99},
            sleep_seconds=None,
        )
        defaults.update(overrides)
        return ShardPlan(**defaults)

    def test_plan_roundtrips_through_the_wire(self):
        plan = self.make_plan()
        line = encode_line(plan.to_message())
        again = ShardPlan.from_message(decode_line(line))
        assert again == plan
        # JSON stringifies mapping keys; the codec restores ints.
        assert again.fail_attempts == {1: 99}

    def test_version_mismatch_rejected(self):
        message = self.make_plan().to_message()
        message["protocol"] = 999
        with pytest.raises(ShardProtocolError, match="version"):
            ShardPlan.from_message(message)

    def test_non_plan_message_rejected(self):
        with pytest.raises(ShardProtocolError, match="plan"):
            ShardPlan.from_message({"msg": "done"})

    def test_outcome_roundtrips_through_the_wire(self, tmp_path):
        specs = specs_1b1s(1)
        report = ExecutionEngine().run_many(specs, store=tmp_path)
        outcome = report.outcomes[0]
        line = encode_line({"outcome": outcome.to_dict()})
        again = JobOutcome.from_dict(decode_line(line)["outcome"])
        assert again.index == outcome.index
        assert again.spec == outcome.spec
        assert again.label == outcome.label
        assert again.cached == outcome.cached
        assert run_result_to_dict(again.result) == run_result_to_dict(
            outcome.result
        )


class TestCoordinator:
    def test_matches_serial_engine_at_any_shard_count(self, tmp_path):
        specs = specs_1b1s(6)
        serial = ExecutionEngine().run_many(
            specs, store=tmp_path / "serial"
        )
        expected = canonical(serial.results)
        digests = {ResultStore(tmp_path / "serial").digest()}
        for shards in (1, 2, 4):
            store = tmp_path / f"s{shards}"
            report = inprocess_coordinator(shards).run(specs, store=store)
            assert canonical(report.results) == expected
            assert [o.index for o in report.outcomes] == list(
                range(len(specs))
            )
            digests.add(ResultStore(store).digest())
        assert len(digests) == 1

    def test_replayed_log_facts_are_shard_count_invariant(self, tmp_path):
        from repro.runtime import replay_timings

        specs = specs_1b1s(5)
        logs = {}
        for shards in (1, 2, 4):
            path = tmp_path / f"log{shards}.jsonl"
            sink = JsonlEventSink(path)
            try:
                inprocess_coordinator(shards, log_sink=sink).run(
                    specs, store=tmp_path / f"store{shards}"
                )
            finally:
                sink.close()
            # Event *order* follows each fleet's wall clock; the
            # replayed per-job facts may not.
            logs[shards] = [
                (t.index, t.label, t.status, t.attempts)
                for t in replay_timings(read_events(path))
            ]
        assert logs[1] == logs[2] == logs[4]

    def test_collect_reports_failures_fail_fast_raises(self, tmp_path):
        specs = specs_1b1s(4)
        plan = FaultPlan(fail_attempts={2: 99})
        report = inprocess_coordinator(
            2,
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=plan,
        ).run(specs, store=tmp_path / "a")
        assert [o.index for o in report.failures] == [2]
        assert all(o.ok for i, o in enumerate(report.outcomes) if i != 2)
        with pytest.raises(CampaignError, match="failed"):
            inprocess_coordinator(2, fault_plan=plan).run(
                specs, store=tmp_path / "b"
            )

    def test_metrics_fold_into_fleet_totals(self, tmp_path):
        specs = specs_1b1s(4)
        serial = ExecutionEngine(metrics=True).run_many(
            specs, store=tmp_path / "serial"
        )
        fleet = inprocess_coordinator(2, metrics=True).run(
            specs, store=tmp_path / "fleet"
        )
        assert fleet.metrics is not None

        def counters(snapshot):
            # Timer series carry wall-clock values; only the
            # deterministic counters must fold to identical totals.
            return {
                json.dumps(
                    [entry["name"], entry["labels"]], sort_keys=True
                ): entry["data"]
                for entry in snapshot.to_dict()["series"]
                if entry["kind"] == "counter"
            }

        assert counters(fleet.metrics) == counters(serial.metrics)

    def test_shard_logs_are_standalone_campaign_logs(self, tmp_path):
        specs = specs_1b1s(5)
        log = tmp_path / "log.jsonl"
        sink = JsonlEventSink(log)
        try:
            inprocess_coordinator(
                2, log_sink=sink, shard_log_base=log
            ).run(specs, store=tmp_path / "store")
        finally:
            sink.close()
        seen = set()
        for shard in (0, 1):
            events = read_events(
                tmp_path / f"log.jsonl.shard{shard}.jsonl"
            )
            plans = [e for e in events if isinstance(e, CampaignPlan)]
            assert len(plans) == 1  # standalone, individually resumable
            state = ResumeState.from_events(events)
            assert state.pending == set()
            seen.update(state.keys)
        assert seen == {spec.key() for spec in specs}

    def test_resume_after_cut_matches_uninterrupted(self, tmp_path):
        specs = specs_1b1s(6)
        events = []
        coordinator = inprocess_coordinator(
            2, log_sink=CallbackSink(events.append)
        )
        full = coordinator.run(specs, store=tmp_path / "store")
        # Cut the durable log shortly after the plan record: the
        # resume state sees at most a few completions, the store has
        # everything -- resume must reconcile and match bit-for-bit.
        plan_at = next(
            i for i, e in enumerate(events) if isinstance(e, CampaignPlan)
        )
        state = ResumeState.from_events(events[: plan_at + 3])
        assert state.shards == 2
        resumed = inprocess_coordinator(2).run(
            specs, resume_from=state, store=tmp_path / "store"
        )
        assert check_resume(full, resumed).ok
        assert all(o.cached for o in resumed.outcomes)

    def test_dead_worker_recovers_in_process(self, tmp_path):
        specs = specs_1b1s(6)

        class DyingTransport(InProcessShardTransport):
            """Shard 1's worker vanishes before sending anything."""

            def start(self, plan, deliver):
                if plan.shard == 1:
                    deliver(None)  # EOF with no done message
                else:
                    super().start(plan, deliver)

        report = ShardCoordinator(
            2, transport_factory=DyingTransport
        ).run(specs, store=tmp_path / "store")
        assert len(report.outcomes) == len(specs)
        assert all(o.ok for o in report.outcomes)
        serial = ExecutionEngine().run_many(specs, store=tmp_path / "s2")
        assert canonical(report.results) == canonical(serial.results)

    def test_machine_list_rejected(self):
        from repro.config import STANDARD_MACHINES

        machines = [STANDARD_MACHINES["1B1S"]()]
        with pytest.raises(ValueError, match="single machine"):
            inprocess_coordinator(2).run(specs_1b1s(2), machines=machines)


class TestProcessTransport:
    def test_subprocess_fleet_matches_serial(self, tmp_path):
        specs = specs_1b1s(4)
        serial = ExecutionEngine().run_many(
            specs, store=tmp_path / "serial"
        )
        report = ShardCoordinator(
            2, transport_factory=ProcessShardTransport
        ).run(specs, store=tmp_path / "fleet")
        assert canonical(report.results) == canonical(serial.results)
        assert (
            ResultStore(tmp_path / "serial").digest()
            == ResultStore(tmp_path / "fleet").digest()
        )


class TestMergedStreams:
    def make_stream(self, shard, times):
        return [
            JobFinished(
                index=shard * 10 + i,
                label=f"s{shard}/{i}",
                wall_seconds=0.0,
                timestamp=t,
            )
            for i, t in enumerate(times)
        ]

    def test_sorts_by_timestamp_then_shard(self):
        a = self.make_stream(0, [1.0, 3.0])
        b = self.make_stream(1, [1.0, 2.0])
        merged = merge_event_streams([a, b])
        assert [e.index for e in merged] == [0, 10, 11, 1]

    def test_permuting_completion_order_is_invisible(self):
        streams = [
            self.make_stream(s, [0.5 * s + i for i in range(3)])
            for s in range(3)
        ]
        baseline = merge_event_streams(streams)
        # The merge is a pure function of the per-shard streams;
        # arrival interleavings do not exist in its input space, so
        # canonical order survives any completion order.  Equal
        # timestamps break ties by stream position, deterministically.
        assert merge_event_streams(list(streams)) == baseline

    def test_within_stream_order_is_stable_on_ties(self):
        stream = self.make_stream(0, [1.0, 1.0, 1.0])
        assert merge_event_streams([stream]) == stream

    def test_read_events_merged(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path, shard, times in (
            (a, 0, [1.0, 3.0]),
            (b, 1, [2.0]),
        ):
            sink = JsonlEventSink(path)
            for event in self.make_stream(shard, times):
                sink.emit(event)
            sink.close()
        merged = read_events_merged([a, b])
        assert [e.index for e in merged] == [0, 10, 1]
        # One path degrades to plain read_events.
        assert [e.index for e in read_events_merged([a])] == [0, 1]


class TestFleetTelemetry:
    def test_status_counts_and_line(self):
        status = FleetStatus([2, 1])
        status.mark_started(0)
        status.record_event(
            0, JobFinished(index=0, label="a", wall_seconds=0.1)
        )
        snap = status.snapshot()
        assert snap["total"] == 3
        assert snap["done"] == 1
        assert snap["queued"] == 2
        assert snap["runs_per_s"] > 0
        assert snap["eta_seconds"] is not None
        line = status.format_line()
        assert "1/3 done" in line and "s0:1/2" in line

    @pytest.mark.skipif(
        not hasattr(socket, "AF_UNIX"), reason="needs unix sockets"
    )
    def test_status_server_speaks_service_framing(self, tmp_path):
        status = FleetStatus([1])
        server = FleetStatusServer(status, tmp_path / "fleet.sock")
        server.start()
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.connect(str(tmp_path / "fleet.sock"))
                stream = sock.makefile("rw")
                for request, expect in (
                    ({"op": "ping"}, "pong"),
                    ({"op": "fleet"}, "fleet"),
                    ({"op": "nope"}, "error"),
                ):
                    stream.write(encode_line(request) + "\n")
                    stream.flush()
                    response = decode_line(stream.readline())
                    assert expect in response
                stream.write("not json\n")
                stream.flush()
                response = decode_line(stream.readline())
                assert not response["ok"]
                assert "bad json" in response["error"]
        finally:
            server.close()

    def test_coordinator_feeds_status(self, tmp_path):
        specs = specs_1b1s(4)
        coordinator = inprocess_coordinator(2)
        coordinator.run(specs, store=tmp_path / "store")
        snap = coordinator.status.snapshot()
        assert snap["done"] == len(specs)
        assert snap["failed"] == 0
        assert snap["queued"] == 0
        assert all(s["finished"] for s in snap["shards"])


class TestShardedStderrEvents:
    def test_live_sinks_see_every_job_event(self, tmp_path):
        specs = specs_1b1s(4)
        seen = []
        inprocess_coordinator(2, sinks=[CallbackSink(seen.append)]).run(
            specs, store=tmp_path / "store"
        )
        finished = [e for e in seen if isinstance(e, JobFinished)]
        started = [e for e in seen if isinstance(e, JobStarted)]
        assert len(finished) == len(specs)
        assert len(started) == len(specs)
