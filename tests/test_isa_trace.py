"""Tests for the trace container."""

import numpy as np
import pytest

from repro.isa.instruction import InstructionClass
from repro.isa.trace import Trace


def _trace(n=10, name="t"):
    return Trace(
        classes=np.full(n, InstructionClass.INT_ALU, dtype=np.int8),
        dep1=np.ones(n, dtype=np.int32),
        dep2=np.zeros(n, dtype=np.int32),
        addresses=np.zeros(n, dtype=np.int64),
        mispredicted=np.zeros(n, dtype=bool),
        icache_miss=np.zeros(n, dtype=bool),
        name=name,
    )


class TestTrace:
    def test_length(self):
        assert len(_trace(7)) == 7

    def test_mismatched_lengths_rejected(self):
        t = _trace(5)
        with pytest.raises(ValueError):
            Trace(
                classes=t.classes,
                dep1=t.dep1[:3],
                dep2=t.dep2,
                addresses=t.addresses,
                mispredicted=t.mispredicted,
                icache_miss=t.icache_miss,
            )

    def test_slice_clamps_out_of_window_dependencies(self):
        t = _trace(10)
        t.dep1[:] = 5  # everything depends 5 back
        window = t.slice(4, 10)
        # Instructions 0..4 of the window would reach before the start.
        assert list(window.dep1[:5]) == [0, 0, 0, 0, 0]
        assert window.dep1[5] == 5

    def test_slice_returns_views_when_no_clamping_needed(self):
        t = _trace(10)
        t.dep1[:] = 0
        t.dep1[6] = 2  # stays inside any window starting at <= 4
        window = t.slice(4, 10)
        assert np.shares_memory(window.dep1, t.dep1)
        assert np.shares_memory(window.dep2, t.dep2)
        assert np.shares_memory(window.classes, t.classes)
        assert list(window.dep1) == [0, 0, 2, 0, 0, 0]

    def test_slice_clamping_semantics_match_bruteforce(self):
        rng = np.random.default_rng(11)
        n = 400
        t = _trace(n)
        t.dep1[:] = rng.integers(0, 30, size=n)
        t.dep2[:] = rng.integers(0, 300, size=n)
        for start, stop in ((0, n), (7, 391), (250, 260), (399, 400)):
            window = t.slice(start, stop)
            index = np.arange(stop - start)
            for deps, got in ((t.dep1, window.dep1), (t.dep2, window.dep2)):
                expected = deps[start:stop].copy()
                expected[expected > index] = 0
                assert np.array_equal(got, expected), (start, stop)

    def test_slice_clamped_copy_leaves_parent_untouched(self):
        t = _trace(10)
        t.dep1[:] = 5
        window = t.slice(4, 10)
        assert window.dep1[0] == 0
        assert t.dep1[4] == 5  # clamping copied, parent unchanged

    def test_negative_dependencies_rejected(self):
        t = _trace(5)
        bad = t.dep1.copy()
        bad[3] = -2
        with pytest.raises(ValueError):
            Trace(
                classes=t.classes, dep1=bad, dep2=t.dep2,
                addresses=t.addresses, mispredicted=t.mispredicted,
                icache_miss=t.icache_miss,
            )

    def test_slice_bounds_checked(self):
        with pytest.raises(IndexError):
            _trace(5).slice(3, 9)

    def test_class_fraction(self):
        t = _trace(8)
        t.classes[:2] = InstructionClass.NOP
        assert t.nop_fraction == pytest.approx(0.25)
        assert t.class_fraction(InstructionClass.INT_ALU) == pytest.approx(0.75)

    def test_branch_and_icache_mpki(self):
        t = _trace(1000)
        t.classes[:100] = InstructionClass.BRANCH
        t.mispredicted[:5] = True
        t.icache_miss[:20] = True
        assert t.branch_mpki == pytest.approx(5.0)
        assert t.icache_mpki == pytest.approx(20.0)

    def test_concatenate(self):
        joined = Trace.concatenate([_trace(4), _trace(6)], name="j")
        assert len(joined) == 10
        assert joined.name == "j"

    def test_concatenate_empty(self):
        assert len(Trace.concatenate([])) == 0

    def test_empty(self):
        t = Trace.empty("x")
        assert len(t) == 0
        assert t.nop_fraction == 0.0
        assert t.branch_mpki == 0.0
