"""Tests for fleet trace-context propagation (repro.obs.context)."""

import json

import pytest

from repro.obs.context import (
    TraceContext,
    activate,
    campaign_id,
    current,
)


class TestCampaignId:
    def test_deterministic(self):
        keys = ["a" * 24, "b" * 24, "c" * 24]
        assert campaign_id(keys) == campaign_id(list(keys))

    def test_order_sensitive(self):
        keys = ["a" * 24, "b" * 24]
        assert campaign_id(keys) != campaign_id(keys[::-1])

    def test_not_concatenation_confusable(self):
        # The separator means ["ab"] and ["a", "b"] hash differently.
        assert campaign_id(["ab"]) != campaign_id(["a", "b"])

    def test_short_stable_hex(self):
        cid = campaign_id(["deadbeef"])
        assert len(cid) == 12
        int(cid, 16)  # parseable hex


class TestTraceContext:
    def test_minimal_dict_omits_unset_fields(self):
        context = TraceContext(campaign="abc123")
        assert context.to_dict() == {"campaign": "abc123"}

    def test_full_round_trip(self):
        context = TraceContext(
            campaign="abc123", shard=3, run_key="k" * 24, parent="sim.run"
        )
        data = json.loads(json.dumps(context.to_dict()))
        assert TraceContext.from_dict(data) == context

    def test_shard_zero_survives_round_trip(self):
        context = TraceContext(campaign="abc", shard=0)
        data = context.to_dict()
        assert data["shard"] == 0
        assert TraceContext.from_dict(data).shard == 0

    def test_with_run_and_parent_derive_new_contexts(self):
        base = TraceContext(campaign="abc", shard=1)
        derived = base.with_run("key1").with_parent("sim.exec")
        assert derived.run_key == "key1"
        assert derived.parent == "sim.exec"
        assert base.run_key is None and base.parent is None

    def test_frozen(self):
        context = TraceContext(campaign="abc")
        with pytest.raises(AttributeError):
            context.campaign = "other"


class TestActivation:
    def test_defaults_to_none(self):
        assert current() is None

    def test_activate_scopes_and_restores(self):
        outer = TraceContext(campaign="outer")
        inner = TraceContext(campaign="inner")
        with activate(outer):
            assert current() is outer
            with activate(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_activate_none_clears_within_scope(self):
        context = TraceContext(campaign="x")
        with activate(context):
            with activate(None):
                assert current() is None
            assert current() is context

    def test_restores_on_exception(self):
        context = TraceContext(campaign="x")
        with pytest.raises(RuntimeError):
            with activate(context):
                raise RuntimeError("boom")
        assert current() is None
