"""Tests for the synthetic SPEC CPU2006 suite and its classification."""

import pytest

from repro.workloads.spec2006 import (
    BENCHMARK_NAMES,
    SIMPOINT_INSTRUCTIONS,
    SUITE,
    benchmark,
    benchmarks_by_class,
    big_core_avf,
    classify_benchmarks,
)


class TestSuite:
    def test_twenty_nine_benchmarks(self):
        assert len(SUITE) == 29

    def test_simpoint_length(self):
        assert all(
            p.instructions == SIMPOINT_INSTRUCTIONS for p in SUITE.values()
        )

    def test_expected_members(self):
        for name in ("mcf", "libquantum", "milc", "zeusmp", "calculix",
                     "povray", "xalancbmk", "lbm", "perlbench"):
            assert name in SUITE

    def test_lookup(self):
        assert benchmark("mcf").name == "mcf"
        with pytest.raises(KeyError):
            benchmark("doom3")

    def test_calculix_has_late_low_phase(self):
        """Figure 4: calculix's ABC drops in its final phase."""
        prof = benchmark("calculix")
        assert len(prof.phases) == 2
        early, late = prof.phases[0][1], prof.phases[1][1]
        # The late phase is front-end bound (high mispredicts, low ILP).
        assert late.branch_mpki > early.branch_mpki
        assert late.dep_distance_mean < early.dep_distance_mean

    def test_povray_single_steady_phase(self):
        assert len(benchmark("povray").phases) == 1


class TestClassification:
    def test_class_sizes(self):
        classes = classify_benchmarks()
        counts = {c: sum(1 for v in classes.values() if v == c) for c in "HML"}
        assert counts == {"H": 8, "M": 13, "L": 8}

    def test_paper_named_examples(self):
        """Section 2.3 names milc/zeusmp as high and mcf/libquantum as
        low AVF; the synthetic suite must reproduce that."""
        classes = classify_benchmarks()
        assert classes["milc"] == "H"
        assert classes["zeusmp"] == "H"
        assert classes["mcf"] == "L"
        assert classes["libquantum"] == "L"

    def test_by_class_sorted_by_avf(self):
        grouped = benchmarks_by_class()
        avfs = [big_core_avf(SUITE[n]) for n in grouped["H"]]
        assert avfs == sorted(avfs)

    def test_avf_spread(self):
        """Figure 1: the AVF spectrum spans a wide range."""
        avfs = {n: big_core_avf(p) for n, p in SUITE.items()}
        assert max(avfs.values()) / min(avfs.values()) > 2.5
        assert 0.05 < min(avfs.values()) < max(avfs.values()) < 0.60

    def test_memory_intensity_does_not_determine_avf(self):
        """Section 2.3's take-away: mcf and libquantum are memory
        intensive yet low-AVF, while milc is memory intensive and
        high-AVF."""
        avfs = {n: big_core_avf(SUITE[n]) for n in ("mcf", "libquantum", "milc")}
        assert avfs["milc"] > 2 * avfs["mcf"]
        assert avfs["milc"] > 2 * avfs["libquantum"]
