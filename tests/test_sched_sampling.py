"""Tests for the sampling scheduler machinery (Algorithm 1 skeleton)."""

import pytest

from repro.config import BIG, SMALL, machine_1b3s, machine_2b2s
from repro.sched.base import Observation, SegmentPlan
from repro.sched.sampling import SamplingScheduler


class CountingScheduler(SamplingScheduler):
    """Test double: objective = externally supplied per-(app, type) value."""

    def __init__(self, machine, num_apps, values=None, **kwargs):
        super().__init__(machine, num_apps, **kwargs)
        self.values = values or {}

    def objective_value(self, app_index, core_type):
        return self.values.get((app_index, core_type), 1.0)


def _drive_segment(sched, plan, machine, ips=1e9, abc=1e3):
    """Feed synthetic observations for one executed segment."""
    observations = [
        Observation(
            app_index=i,
            core_id=plan.assignment.core_of[i],
            core_type=plan.assignment.core_type_of(i, machine),
            duration_seconds=plan.fraction * machine.quantum_seconds,
            instructions=int(ips * plan.fraction * machine.quantum_seconds),
            measured_abc_seconds=abc * plan.fraction,
        )
        for i in range(sched.num_apps)
    ]
    sched.observe(plan, observations)


def _run_quantum(sched, machine, q):
    plans = sched.plan_quantum(q)
    assert sum(p.fraction for p in plans) == pytest.approx(1.0)
    for plan in plans:
        _drive_segment(sched, plan, machine)
    return plans


class TestInitialSampling:
    def test_symmetric_machine_needs_two_quanta(self):
        m = machine_2b2s()
        sched = CountingScheduler(m, 4)
        plans0 = _run_quantum(sched, m, 0)
        assert plans0[0].is_sampling
        plans1 = _run_quantum(sched, m, 1)
        assert plans1[0].is_sampling
        # After two quanta, every app has both samples.
        for i in range(4):
            assert sched.sample(i, BIG) is not None
            assert sched.sample(i, SMALL) is not None
        # Third quantum is a regular one.
        plans2 = sched.plan_quantum(2)
        assert not plans2[0].is_sampling

    def test_asymmetric_machine_needs_more_quanta(self):
        """1B3S: four apps share one big core -> 4 initial quanta."""
        m = machine_1b3s()
        sched = CountingScheduler(m, 4)
        q = 0
        while any(
            sched.sample(i, BIG) is None or sched.sample(i, SMALL) is None
            for i in range(4)
        ):
            _run_quantum(sched, m, q)
            q += 1
            assert q <= 5
        assert q == 4


class TestStaleness:
    def test_sampling_phase_after_period(self):
        m = machine_2b2s()
        sched = CountingScheduler(m, 4)
        for q in range(2):  # initial sampling
            _run_quantum(sched, m, q)
        sampling_seen = False
        for q in range(2, 2 + m.sampling_period_quanta + 2):
            plans = _run_quantum(sched, m, q)
            if len(plans) == 2:
                sampling_seen = True
                assert plans[0].is_sampling
                assert plans[0].fraction == pytest.approx(0.1)
                # The sampling segment swaps pairs across core types.
                main = plans[1].assignment
                sample = plans[0].assignment
                changed = [
                    i for i in range(4) if main.core_of[i] != sample.core_of[i]
                ]
                assert changed
                for i in changed:
                    assert main.core_type_of(i, m) != sample.core_type_of(i, m)
        assert sampling_seen

    def test_staleness_bound_holds(self):
        """No application's off-type sample ever gets older than the
        sampling period plus one quantum."""
        m = machine_2b2s()
        sched = CountingScheduler(m, 4)
        for q in range(40):
            _run_quantum(sched, m, q)
            for i in range(4):
                for t in (BIG, SMALL):
                    sample = sched.sample(i, t)
                    if sample is not None:
                        assert sample.age_quanta <= m.sampling_period_quanta + 1


class TestGreedySwap:
    def test_swaps_toward_lower_objective(self):
        m = machine_2b2s()
        # Apps 0,1 start on big.  App 0 is terrible on big; app 3 is
        # great on big: a swap is clearly profitable.
        values = {
            (0, BIG): 100.0, (0, SMALL): 1.0,
            (1, BIG): 1.0, (1, SMALL): 1.0,
            (2, BIG): 1.0, (2, SMALL): 1.0,
            (3, BIG): 1.0, (3, SMALL): 100.0,
        }
        sched = CountingScheduler(m, 4, values)
        for q in range(2):
            _run_quantum(sched, m, q)
        plans = sched.plan_quantum(2)
        a = plans[-1].assignment
        assert a.core_type_of(0, m) == SMALL
        assert a.core_type_of(3, m) == BIG

    def test_hysteresis_blocks_marginal_swaps(self):
        m = machine_2b2s()
        values = {
            (0, BIG): 1.001, (0, SMALL): 1.0,
            (1, BIG): 1.0, (1, SMALL): 1.0,
            (2, BIG): 1.0, (2, SMALL): 1.0,
            (3, BIG): 1.0, (3, SMALL): 1.001,
        }
        sched = CountingScheduler(m, 4, values, swap_threshold=0.05)
        for q in range(2):
            _run_quantum(sched, m, q)
        before = sched.plan_quantum(2)[-1].assignment
        after = sched.plan_quantum(3)[-1].assignment
        assert before.core_of == after.core_of

    def test_every_app_always_placed(self):
        m = machine_2b2s()
        sched = CountingScheduler(m, 4)
        for q in range(25):
            plans = _run_quantum(sched, m, q)
            for plan in plans:
                assert sorted(plan.assignment.core_of) == [0, 1, 2, 3]

    def test_requires_both_core_types(self):
        from repro.config import MachineConfig
        with pytest.raises(ValueError):
            CountingScheduler(MachineConfig(big_cores=2, small_cores=0), 2)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            CountingScheduler(machine_2b2s(), 4, swap_threshold=-0.1)
