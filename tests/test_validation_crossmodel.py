"""Tests for the cross-model validation machinery."""

import pytest

from repro.validation.crossmodel import (
    DEFAULT_BENCHMARKS,
    compare_models,
)


@pytest.fixture(scope="module")
def agreement():
    return compare_models(trace_instructions=15_000)


class TestCompareModels:
    def test_row_coverage(self, agreement):
        assert len(agreement.rows) == 2 * len(DEFAULT_BENCHMARKS)
        assert {r.core_type for r in agreement.rows} == {"big", "small"}

    def test_rank_agreement_strong(self, agreement):
        assert agreement.spearman_ipc("big") > 0.7
        assert agreement.spearman_abc("big") > 0.7
        assert agreement.spearman_ipc("small") > 0.7

    def test_small_core_abc_agrees_in_value(self, agreement):
        """Small-core ABC has a narrow dynamic range in both models
        (the latches are nearly always full), so rank correlation is
        noise-dominated; the meaningful check is value agreement."""
        for row in agreement.per_core("small"):
            assert 0.7 < row.abc_ratio < 1.4, row

    def test_magnitudes_in_same_ballpark(self, agreement):
        for row in agreement.rows:
            assert 0.3 < row.ipc_ratio < 3.0, row
            assert 0.3 < row.abc_ratio < 3.0, row

    def test_validation_inputs(self):
        with pytest.raises(ValueError):
            compare_models(["doom3", "milc", "mcf"])
        with pytest.raises(ValueError):
            compare_models(["milc", "mcf"])
