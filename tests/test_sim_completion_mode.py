"""Tests for run-to-completion mode (no restarts)."""

import pytest

from repro.config import machine_2b2s
from repro.sched.oracle import StaticScheduler
from repro.sched.reliability import ReliabilityScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark

NAMES = ("povray", "milc", "gobmk", "bzip2")


def _profiles(n=3_000_000):
    return [benchmark(name).scaled(n) for name in NAMES]


@pytest.fixture(scope="module")
def completion_run():
    machine = machine_2b2s()
    sim = MulticoreSimulation(
        machine, _profiles(), StaticScheduler(machine, 4, (0, 1)),
        restart_finished=False,
    )
    return sim.run()


class TestCompletionMode:
    def test_each_app_runs_exactly_once(self, completion_run):
        for app in completion_run.apps:
            assert app.completed_runs == 1
            assert app.instructions == 3_000_000

    def test_times_stop_at_completion(self, completion_run):
        times = [a.time_seconds for a in completion_run.apps]
        # Applications finish at different times; none after the end.
        assert len(set(times)) > 1
        assert max(times) <= completion_run.duration_seconds + 1e-12

    def test_slowdowns_sane(self, completion_run):
        for app in completion_run.apps:
            assert app.slowdown >= 0.99

    def test_restart_mode_runs_more_work(self):
        machine = machine_2b2s()
        restart = MulticoreSimulation(
            machine, _profiles(), StaticScheduler(machine, 4, (0, 1)),
            restart_finished=True,
        ).run()
        total_restart = sum(a.instructions for a in restart.apps)
        assert total_restart > 4 * 3_000_000

    def test_wser_comparable_between_modes(self):
        """Per-work reliability rates are mode-independent for a
        static schedule (restarts just repeat the same work)."""
        machine = machine_2b2s()
        restart = MulticoreSimulation(
            machine, _profiles(), StaticScheduler(machine, 4, (0, 1)),
        ).run()
        completion = MulticoreSimulation(
            machine, _profiles(), StaticScheduler(machine, 4, (0, 1)),
            restart_finished=False,
        ).run()
        assert completion.sser == pytest.approx(restart.sser, rel=0.1)

    def test_works_with_sampling_scheduler(self):
        machine = machine_2b2s()
        result = MulticoreSimulation(
            machine, _profiles(), ReliabilityScheduler(machine, 4),
            restart_finished=False,
        ).run()
        assert all(a.completed_runs == 1 for a in result.apps)
        assert result.sser > 0

    def test_antt_meaningful_in_completion_mode(self, completion_run):
        """ANTT uses per-application turnaround, which only stops
        accumulating at completion in this mode."""
        assert 1.0 <= completion_run.antt < 5.0
