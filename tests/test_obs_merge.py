"""Serial and parallel campaigns merge metrics to identical totals.

The worker-process metrics path (fresh registry per attempt, snapshot
shipped back through the engine, commutative merges in the parent) must
make the aggregated registry independent of worker count and completion
order -- the core guarantee behind ``repro stats``.
"""

import pytest

from repro.obs import metrics as obs_metrics
from repro.runtime.engine import ExecutionEngine
from repro.runtime.events import CallbackSink, JobFinished, MetricsSnapshot
from repro.sim.campaign import RunSpec


def specs():
    pairs = [("povray", "milc"), ("gobmk", "bzip2"), ("mcf", "lbm"),
             ("soplex", "namd")]
    return [
        RunSpec("1B1S", pairs[i % len(pairs)], scheduler, 400_000, seed=i)
        for i in range(4)
        for scheduler in ("random", "reliability")
    ]


def run(jobs):
    events = []
    engine = ExecutionEngine(
        jobs=jobs, metrics=True, sinks=[CallbackSink(events.append)]
    )
    report = engine.run_many(specs())
    return report, events


def series_dict(snapshot):
    return {
        (name, labels): (kind, data)
        for (name, labels), (kind, data) in snapshot.series.items()
    }


class TestSerialParallelMergeEquality:
    def test_parallel_totals_identical_to_serial(self):
        serial, _ = run(jobs=1)
        parallel, _ = run(jobs=8)
        assert serial.metrics is not None and parallel.metrics is not None
        s = series_dict(serial.metrics)
        p = series_dict(parallel.metrics)
        assert set(s) == set(p)
        for key in s:
            s_kind, s_data = s[key]
            p_kind, p_data = p[key]
            assert s_kind == p_kind
            if s_kind in ("timer",):
                # Wall-clock series: same shape, not same values.
                assert s_data["count"] == p_data["count"]
                continue
            assert s_data == p_data, f"series {key} diverged"

    def test_deterministic_counters_have_expected_series(self):
        report, _ = run(jobs=2)
        names = {name for (name, _labels) in report.metrics.series}
        for expected in (
            "sim.runs",
            "sim.quanta",
            "sim.instructions",
            "sched.migrations",
            "runtime.job_seconds",
        ):
            assert any(n == expected for n in names), expected

    def test_snapshot_events_emitted_per_job(self):
        report, events = run(jobs=2)
        snapshots = [e for e in events if isinstance(e, MetricsSnapshot)]
        finished = [e for e in events if isinstance(e, JobFinished)]
        # One snapshot per job plus the engine's own (index=-1) snapshot
        # carrying the submission-queue series.
        per_job = [e for e in snapshots if e.index >= 0]
        assert len(per_job) == len(finished) == len(specs())
        engine_snapshots = [e for e in snapshots if e.index < 0]
        assert [e.label for e in engine_snapshots] == ["engine"]
        # Replaying the event stream reproduces the report's registry.
        registry = obs_metrics.MetricsRegistry()
        for event in snapshots:
            registry.merge(event.metrics)
        assert series_dict(registry.snapshot()) == series_dict(report.metrics)

    def test_engine_queue_series_present(self):
        for jobs in (1, 2):
            report, _ = run(jobs=jobs)
            names = {name for (name, _labels) in report.metrics.series}
            assert "queue.wait_seconds" in names
            assert "queue.depth" in names
            key = ("queue.wait_seconds", ())
            kind, data = series_dict(report.metrics)[key]
            assert kind == "timer"
            assert data["count"] == len(specs())
            kind, data = series_dict(report.metrics)[("queue.depth", ())]
            assert kind == "gauge"
            # The queue always drains: the last recorded depth is zero.
            assert data["value"] == 0.0
            assert data["set_count"] == len(specs())

    def test_metrics_off_by_default(self):
        engine = ExecutionEngine(jobs=1)
        report = engine.run_many(specs()[:2])
        assert report.metrics is None
