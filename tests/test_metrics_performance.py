"""Tests for performance metrics (STP, ANTT, CPI stacks)."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.performance import (
    ApplicationPerformance,
    average_normalized_turnaround,
    ipc,
    normalize_cpi_stack,
    system_throughput,
)


def _app(t, tref, name="a", instructions=100):
    return ApplicationPerformance(
        name=name,
        instructions=instructions,
        time_seconds=t,
        reference_time_seconds=tref,
    )


class TestStp:
    def test_no_slowdown_gives_app_count(self):
        apps = [_app(1.0, 1.0), _app(2.0, 2.0), _app(3.0, 3.0)]
        assert system_throughput(apps) == pytest.approx(3.0)

    def test_slowdown_reduces_stp(self):
        apps = [_app(2.0, 1.0), _app(1.0, 1.0)]
        assert system_throughput(apps) == pytest.approx(1.5)

    def test_stp_antt_reciprocal_relation_single_app(self):
        apps = [_app(4.0, 1.0)]
        assert system_throughput(apps) == pytest.approx(
            1.0 / average_normalized_turnaround(apps)
        )


class TestAntt:
    def test_average_of_slowdowns(self):
        apps = [_app(2.0, 1.0), _app(4.0, 1.0)]
        assert average_normalized_turnaround(apps) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_normalized_turnaround([])


class TestIpc:
    def test_basic(self):
        assert ipc(100, 50.0) == pytest.approx(2.0)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            ipc(100, 0.0)


class TestCpiStack:
    def test_normalizes_to_one(self):
        stack = normalize_cpi_stack({"base": 0.25, "mem": 0.75})
        assert sum(stack.values()) == pytest.approx(1.0)
        assert stack["mem"] == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize_cpi_stack({})


class TestProperties:
    @given(st.lists(st.tuples(st.floats(0.1, 100), st.floats(0.1, 100)),
                    min_size=1, max_size=8))
    def test_stp_bounded_by_app_count_when_slowdowns_ge_one(self, pairs):
        # If every app is slowed down (t >= tref), STP <= n.
        apps = [_app(max(t, tref), tref) for t, tref in pairs]
        assert system_throughput(apps) <= len(apps) + 1e-9

    @given(st.dictionaries(st.sampled_from(["a", "b", "c", "d"]),
                           st.floats(0.01, 10), min_size=1))
    def test_stack_normalization_preserves_ratios(self, components):
        stack = normalize_cpi_stack(components)
        keys = list(components)
        if len(keys) >= 2:
            a, b = keys[0], keys[1]
            assert stack[a] / stack[b] == pytest.approx(
                components[a] / components[b], rel=1e-9
            )
