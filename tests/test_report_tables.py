"""Tests for plain-text table rendering."""

import pytest

from repro.report.tables import format_percent, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 22.25]],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert lines[2].startswith("alpha")
        # All lines have equal width.
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        text = format_table(["x", "v"], [["a", 0.123456]],
                            float_format="{:.2f}")
        assert "0.12" in text

    def test_non_float_cells_stringified(self):
        text = format_table(["x", "n", "flag"], [["a", 42, True]])
        assert "42" in text
        assert "True" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatPercent:
    def test_signed(self):
        assert format_percent(0.254) == "+25.4%"
        assert format_percent(-0.063) == "-6.3%"

    def test_unsigned(self):
        assert format_percent(0.5, signed=False) == "50.0%"
