"""Tests for the synthetic trace generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instruction import InstructionClass
from repro.workloads.characteristics import PhaseCharacteristics
from repro.workloads.generator import generate_phase_trace, generate_trace
from repro.workloads.spec2006 import benchmark


def _chars(**kwargs):
    return PhaseCharacteristics(**kwargs)


class TestPhaseTrace:
    def test_length(self):
        rng = np.random.default_rng(0)
        trace = generate_phase_trace(_chars(), 5000, rng)
        assert len(trace) == 5000

    def test_deterministic_given_seed(self):
        t1 = generate_trace(benchmark("mcf"), 2000, seed=7)
        t2 = generate_trace(benchmark("mcf"), 2000, seed=7)
        assert np.array_equal(t1.classes, t2.classes)
        assert np.array_equal(t1.addresses, t2.addresses)
        t3 = generate_trace(benchmark("mcf"), 2000, seed=8)
        assert not np.array_equal(t1.addresses, t3.addresses)

    def test_mix_statistics(self):
        rng = np.random.default_rng(1)
        chars = _chars()
        trace = generate_phase_trace(chars, 50_000, rng)
        assert trace.class_fraction(InstructionClass.LOAD) == pytest.approx(
            chars.mix.load, abs=0.01
        )
        assert trace.nop_fraction == pytest.approx(chars.mix.nop, abs=0.01)

    def test_branch_mpki_realized(self):
        rng = np.random.default_rng(2)
        chars = _chars(branch_mpki=10.0)
        trace = generate_phase_trace(chars, 100_000, rng)
        assert trace.branch_mpki == pytest.approx(10.0, rel=0.2)

    def test_icache_mpki_realized(self):
        rng = np.random.default_rng(3)
        chars = _chars(icache_mpki=5.0)
        trace = generate_phase_trace(chars, 100_000, rng)
        assert trace.icache_mpki == pytest.approx(5.0, rel=0.2)

    def test_mispredictions_only_on_branches(self):
        rng = np.random.default_rng(4)
        trace = generate_phase_trace(_chars(branch_mpki=20.0), 20_000, rng)
        assert not trace.mispredicted[
            trace.classes != InstructionClass.BRANCH
        ].any()

    def test_dependency_distance_mean(self):
        rng = np.random.default_rng(5)
        chars = _chars(dep_distance_mean=6.0)
        trace = generate_phase_trace(chars, 50_000, rng)
        # Ignore start-of-trace clamping and NOPs.
        deps = trace.dep1[1000:]
        cls = trace.classes[1000:]
        valid = deps[(deps > 0) & (cls != InstructionClass.NOP)]
        assert valid.mean() == pytest.approx(6.0, rel=0.15)

    def test_nops_have_no_dependencies(self):
        rng = np.random.default_rng(6)
        trace = generate_phase_trace(_chars(), 20_000, rng)
        nops = trace.classes == InstructionClass.NOP
        assert not trace.dep1[nops].any()
        assert not trace.dep2[nops].any()

    def test_addresses_only_on_memory_ops(self):
        rng = np.random.default_rng(7)
        trace = generate_phase_trace(_chars(), 20_000, rng)
        mem = np.isin(
            trace.classes,
            [InstructionClass.LOAD, InstructionClass.STORE],
        )
        assert trace.addresses[mem].all()
        assert not trace.addresses[~mem].any()

    def test_branch_load_linkage(self):
        rng = np.random.default_rng(8)
        chars = _chars(branch_mpki=20.0, branch_depends_on_load_prob=1.0)
        trace = generate_phase_trace(chars, 20_000, rng)
        mispredicted = np.nonzero(trace.mispredicted)[0]
        loads = set(np.nonzero(trace.classes == InstructionClass.LOAD)[0])
        linked = sum(
            1 for i in mispredicted if int(i - trace.dep1[i]) in loads
        )
        assert linked / max(len(mispredicted), 1) > 0.9

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            generate_phase_trace(_chars(), 0, np.random.default_rng(0))


class TestFullTrace:
    def test_phase_structure_preserved(self):
        prof = benchmark("calculix")
        trace = generate_trace(prof, 40_000, seed=0)
        assert len(trace) == 40_000
        # The late phase has far more mispredicted branches.
        early = trace.slice(0, 30_000)
        late = trace.slice(30_000, 40_000)
        assert late.branch_mpki > 3 * early.branch_mpki

    def test_default_length_is_profile_length(self):
        prof = benchmark("povray").scaled(1234)
        assert len(generate_trace(prof)) == 1234

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1000, 20000), st.integers(0, 100))
    def test_any_benchmark_any_length(self, n, seed):
        trace = generate_trace(benchmark("soplex"), n, seed=seed)
        assert len(trace) == n
        assert (trace.dep1 <= np.arange(n)).all()
