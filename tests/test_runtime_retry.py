"""Tests for retry and failure policies."""

import pytest

from repro.runtime.retry import (
    DEFAULT_RETRY,
    NO_RETRY,
    FailurePolicy,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_delay_seconds=0.1,
            backoff_factor=2.0,
            max_delay_seconds=100.0,
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_backoff_capped(self):
        policy = RetryPolicy(
            max_attempts=10,
            base_delay_seconds=0.5,
            backoff_factor=10.0,
            max_delay_seconds=2.0,
        )
        assert policy.delay(1) == pytest.approx(0.5)
        assert policy.delay(2) == pytest.approx(2.0)
        assert policy.delay(9) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_seconds=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_presets(self):
        assert NO_RETRY.max_attempts == 1
        assert DEFAULT_RETRY.max_attempts == 3


class TestFailurePolicy:
    def test_members(self):
        assert FailurePolicy("fail-fast") is FailurePolicy.FAIL_FAST
        assert FailurePolicy("collect") is FailurePolicy.COLLECT
