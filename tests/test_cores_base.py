"""Tests for the core-model interface types."""

import pytest

from repro.config import big_core_config
from repro.config.structures import StructureKind
from repro.cores.base import ISOLATED, MemoryEnvironment, QuantumResult


class TestMemoryEnvironment:
    def test_isolated_defaults(self):
        assert ISOLATED.l3_share_fraction == 1.0
        assert ISOLATED.dram_latency_multiplier == 1.0

    def test_bounds(self):
        with pytest.raises(ValueError):
            MemoryEnvironment(l3_share_fraction=0.0)
        with pytest.raises(ValueError):
            MemoryEnvironment(l3_share_fraction=1.5)
        with pytest.raises(ValueError):
            MemoryEnvironment(dram_latency_multiplier=0.5)


class TestQuantumResult:
    def _result(self, instructions=100, cycles=50.0, rob=500.0):
        return QuantumResult(
            instructions=instructions,
            cycles=cycles,
            ace_bit_cycles={StructureKind.ROB: rob},
            occupancy_bit_cycles={StructureKind.ROB: rob * 1.5},
            memory_accesses=3.0,
            l3_accesses=7.0,
        )

    def test_ipc(self):
        assert self._result().ipc == pytest.approx(2.0)
        assert QuantumResult.zero().ipc == 0.0

    def test_ace_bits_per_cycle(self):
        assert self._result().ace_bits_per_cycle() == pytest.approx(10.0)

    def test_avf(self, big_core):
        result = self._result()
        expected = 10.0 / big_core.total_ace_capacity_bits
        assert result.avf(big_core) == pytest.approx(expected)

    def test_merge_accumulates(self):
        merged = self._result().merged_with(self._result(50, 25.0, 100.0))
        assert merged.instructions == 150
        assert merged.cycles == pytest.approx(75.0)
        assert merged.ace_bit_cycles[StructureKind.ROB] == pytest.approx(600.0)
        assert merged.memory_accesses == pytest.approx(6.0)
        assert merged.l3_accesses == pytest.approx(14.0)

    def test_merge_disjoint_structures(self):
        a = QuantumResult(1, 1.0, {StructureKind.ROB: 1.0})
        b = QuantumResult(1, 1.0, {StructureKind.ISSUE_QUEUE: 2.0})
        merged = a.merged_with(b)
        assert merged.ace_bit_cycles == {
            StructureKind.ROB: 1.0,
            StructureKind.ISSUE_QUEUE: 2.0,
        }

    def test_zero(self):
        zero = QuantumResult.zero()
        assert zero.instructions == 0
        assert zero.total_ace_bit_cycles == 0.0
