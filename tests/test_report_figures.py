"""Tests for ASCII figure rendering."""

import pytest

from repro.config import machine_2b2s
from repro.report.figures import render_fig06, render_fig07, render_fig12
from repro.sim.experiment import run_workload
from repro.workloads.mixes import WorkloadMix

MIXES = [
    WorkloadMix("MHLM", ("povray", "milc", "gobmk", "bzip2")),
    WorkloadMix("HHLM", ("lbm", "zeusmp", "mcf", "soplex")),
]


@pytest.fixture(scope="module")
def results():
    machine = machine_2b2s()
    return {
        name: [
            run_workload(machine, mix, name, instructions=2_000_000, seed=i)
            for i, mix in enumerate(MIXES)
        ]
        for name in ("random", "performance", "reliability")
    }


class TestRenderers:
    def test_fig06(self, results):
        text = render_fig06(results)
        assert "Figure 6a" in text and "Figure 6b" in text
        assert "legend:" in text

    def test_fig07(self, results):
        text = render_fig07(results, MIXES)
        assert "MHLM:" in text and "HHLM:" in text
        assert "reliability" in text

    def test_fig12(self, results):
        text = render_fig12(results, machine_2b2s())
        assert "chip" in text and "system" in text

    def test_missing_scheduler_rejected(self, results):
        partial = {"random": results["random"]}
        with pytest.raises(ValueError):
            render_fig06(partial)

    def test_workload_count_mismatch(self, results):
        with pytest.raises(ValueError):
            render_fig07(results, MIXES[:1])

    def test_length_mismatch_rejected(self, results):
        broken = dict(results)
        broken["reliability"] = results["reliability"][:1]
        with pytest.raises(ValueError):
            render_fig06(broken)


class TestCli:
    def test_figure_command(self, tmp_path, capsys):
        from repro.cli.main import main
        code = main([
            "figure", "fig12", "--programs", "2", "--machine", "1B1S",
            "--instructions", "1000000", "--cache-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        # Second invocation is fully cached.
        main([
            "figure", "fig12", "--programs", "2", "--machine", "1B1S",
            "--instructions", "1000000", "--cache-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert "0 simulated" in out
