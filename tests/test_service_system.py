"""Open-system end-to-end tests: conservation, determinism, overload.

The heavy lifting happens in :mod:`repro.service.server`; these tests
pin the properties the service's telemetry is trusted for: every job
is accounted for, the event feed is byte-identical across runs and
worker counts, overload sheds (rather than queueing unboundedly), and
the decision trace stays chain-valid across mid-stream arrivals,
departures and migrations.
"""

import pytest

from repro.check import check_service
from repro.config import machine_1b1s, machine_2b2s
from repro.obs.decisions import DecisionTraceRecorder, replay_trace
from repro.runtime.engine import ExecutionEngine
from repro.service import (
    OpenSystem,
    ServiceConfig,
    ServiceFeed,
    make_process,
    run_load_point,
    service_benchmark_pool,
)
from repro.service.load import exact_percentile, format_load_table

#: Deliberate-overload configuration: a 1B1S machine with 2M-instruction
#: jobs arriving at 2000/s cannot keep up, so both shed paths fire.
OVERLOAD = dict(
    machine=machine_1b1s,
    queue_capacity=4,
    deadline_seconds=0.005,
    rate=2000.0,
    instructions=2_000_000,
    arrivals=120,
)


def build_config(machine_factory=machine_2b2s, **overrides):
    return ServiceConfig(machine=machine_factory(), **overrides)


def run_system(config, process, count, *, map_tasks=None, recorder=None):
    feed = ServiceFeed()
    system = OpenSystem(
        config, feed=feed, recorder=recorder, map_tasks=map_tasks
    )
    system.enqueue_arrivals(process.stream(count))
    result = system.run()
    return result, feed, system


def nominal_process(seed=0, rate=400.0, instructions=400_000):
    return make_process(
        "poisson",
        rate,
        service_benchmark_pool(),
        seed=seed,
        instructions=instructions,
    )


class TestConservation:
    def test_every_arrival_is_accounted_for(self):
        config = build_config(queue_capacity=8, deadline_seconds=0.01)
        result, feed, _ = run_system(config, nominal_process(), 40)
        assert result.arrived == 40
        assert result.arrived == result.admitted + result.shed
        assert result.admitted == result.completed + result.in_flight
        assert result.in_flight == 0  # run() drains the system
        assert check_service(result).ok
        counts = feed.counts()
        assert counts["arrive"] == result.arrived
        assert counts["start"] == result.admitted
        assert counts.get("shed", 0) == result.shed
        assert counts["depart"] == result.completed

    def test_invariant_flags_lost_jobs(self):
        import dataclasses

        config = build_config(queue_capacity=8)
        result, _, _ = run_system(config, nominal_process(), 10)
        broken = dataclasses.replace(result, arrived=result.arrived + 1)
        report = check_service(broken)
        assert not report.ok
        assert "open_system_conservation" in report.invariant_names()
        broken = dataclasses.replace(result, completed=result.completed - 1)
        assert not check_service(broken).ok

    def test_completed_jobs_carry_reliability_metrics(self):
        config = build_config(queue_capacity=8)
        result, _, _ = run_system(config, nominal_process(), 20)
        done = [j for j in result.jobs if j["status"] == "completed"]
        assert done
        assert all(j["wser"] > 0 for j in done)
        assert all(j["slowdown"] >= 1.0 for j in done)
        assert result.sser == pytest.approx(sum(j["wser"] for j in done))


class TestDeterminism:
    def test_feed_byte_identical_across_runs(self):
        config = build_config(queue_capacity=8, deadline_seconds=0.01)
        _, first, _ = run_system(config, nominal_process(seed=4), 30)
        _, second, _ = run_system(config, nominal_process(seed=4), 30)
        assert first.lines == second.lines
        assert first.digest() == second.digest()

    def test_feed_identical_serial_vs_worker_pool(self):
        config = build_config(queue_capacity=8, deadline_seconds=0.01)
        serial_result, serial_feed, _ = run_system(
            config, nominal_process(seed=2), 25
        )
        engine = ExecutionEngine(jobs=2)
        try:
            parallel_result, parallel_feed, _ = run_system(
                config,
                nominal_process(seed=2),
                25,
                map_tasks=engine.map_tasks,
            )
        finally:
            engine.close()
        assert serial_feed.lines == parallel_feed.lines
        assert serial_result.to_dict() == parallel_result.to_dict()

    def test_different_seeds_differ(self):
        config = build_config(queue_capacity=8)
        _, a, _ = run_system(config, nominal_process(seed=0), 20)
        _, b, _ = run_system(config, nominal_process(seed=1), 20)
        assert a.lines != b.lines


class TestOverload:
    def overload_run(self):
        config = build_config(
            OVERLOAD["machine"],
            queue_capacity=OVERLOAD["queue_capacity"],
            deadline_seconds=OVERLOAD["deadline_seconds"],
            admission="sser",
        )
        process = make_process(
            "poisson",
            OVERLOAD["rate"],
            service_benchmark_pool(),
            seed=0,
            instructions=OVERLOAD["instructions"],
        )
        return run_system(config, process, OVERLOAD["arrivals"])

    def test_overload_sheds_via_both_paths(self):
        result, _, _ = self.overload_run()
        assert result.shed > 0
        assert result.shed_reasons.get("queue_full", 0) > 0
        assert result.shed_reasons.get("deadline", 0) > 0
        assert check_service(result).ok

    def test_shedding_bounds_admitted_queueing_delay(self):
        result, _, system = self.overload_run()
        quantum = system.machine.quantum_seconds
        bound = OVERLOAD["deadline_seconds"] + quantum + 1e-12
        p99 = exact_percentile(result.waits, 0.99)
        assert p99 is not None and p99 <= bound
        assert max(result.waits) <= bound

    def test_load_point_reports_shed_rate(self):
        config = build_config(
            OVERLOAD["machine"],
            queue_capacity=OVERLOAD["queue_capacity"],
            deadline_seconds=OVERLOAD["deadline_seconds"],
        )
        process = make_process(
            "poisson",
            OVERLOAD["rate"],
            service_benchmark_pool(),
            seed=0,
            instructions=OVERLOAD["instructions"],
        )
        point = run_load_point(config, process, 60)
        assert point.shed_rate > 0
        table = format_load_table([point])
        assert "shed%" in table and "p99_wait_ms" in table
        assert f"{point.result.arrived}" in table


class TestDecisionTrace:
    def test_trace_chain_validates_across_churn(self):
        """Arrivals, departures and migrations between quanta must not
        break the before/after chain (satellite: mid-stream churn)."""
        from repro.check import check_decision_trace

        config = build_config(queue_capacity=8, deadline_seconds=0.01)
        recorder = DecisionTraceRecorder()
        result, feed, system = run_system(
            config, nominal_process(seed=3), 30, recorder=recorder
        )
        records = recorder.records
        assert records
        # The stream really churned mid-trace: jobs arrived and departed
        # while others were running, and at least one migration fired.
        assert result.completed == 30
        assert feed.counts().get("migrate", 0) > 0
        phases = {r.phase for r in records}
        assert "admit" in phases and "depart" in phases
        report = check_decision_trace(records)
        assert report.ok, report.format()
        final = replay_trace(records)
        assert final == system.placer.assignment.core_of

    def test_shed_phase_recorded_under_overload(self):
        config = build_config(
            machine_1b1s,
            queue_capacity=2,
            deadline_seconds=0.004,
        )
        recorder = DecisionTraceRecorder()
        process = make_process(
            "poisson",
            2000.0,
            service_benchmark_pool(),
            seed=0,
            instructions=2_000_000,
        )
        result, _, _ = run_system(config, process, 40, recorder=recorder)
        assert result.shed > 0
        assert any(r.phase == "shed" for r in recorder.records)
        from repro.check import check_decision_trace

        assert check_decision_trace(recorder.records).ok


class TestInteraction:
    def test_submit_enqueues_at_current_virtual_time(self):
        config = build_config(queue_capacity=4)
        system = OpenSystem(config, feed=ServiceFeed())
        job_id = system.submit("povray", 200_000, None)
        assert job_id == 0
        for _ in range(40):
            if system.drained():
                break
            system.step()
        result = system.result()
        assert result.completed == 1
        assert result.in_flight == 0
        assert check_service(result).ok

    def test_out_of_order_arrivals_rejected(self):
        from repro.service.arrivals import JobArrival

        config = build_config()
        system = OpenSystem(config, feed=ServiceFeed())
        with pytest.raises(ValueError):
            system.enqueue_arrivals(
                [
                    JobArrival(0, 0.5, "mcf", 1000),
                    JobArrival(1, 0.2, "mcf", 1000),
                ]
            )
