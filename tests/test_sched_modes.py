"""Tests for protection-mode scheduling (none / DMR / checkpoint).

Covers the mode performance/SER models, the (placement x mode) greedy
search, DMR checker-slot legality, the mode=none equivalence contract,
the accounting overlay's conservation, and the uncore (L2/L3) SSER
terms -- plus the sampling-counter APKI rename regression.
"""

import math

import pytest

from repro.ace.uncore import (
    l2_abc_rate,
    l3_abc_rate_estimate,
    run_sser_breakdown,
    uncore_abc,
)
from repro.check import (
    check_decision_trace,
    check_mode_outcome,
    check_mode_schedule,
    fuzz,
)
from repro.config import STANDARD_MACHINES
from repro.config.machines import BIG
from repro.obs.decisions import DecisionTraceRecorder
from repro.sched.base import Observation
from repro.sched.modes import (
    MODE_NONE,
    MODES,
    ModeAwareReliabilityScheduler,
    apply_modes,
    parse_mode,
    protection_abc_rate,
    residual_factor,
    slowdown_factor,
)
from repro.sched.reliability import ReliabilityScheduler
from repro.sched.sampling import CoreTypeSample
from repro.sim.multicore import MulticoreSimulation
from repro.sim.serialize import run_result_to_dict
from repro.workloads.spec2006 import benchmark

QUANTUM = 1e-3


def run_modes(
    machine_name="1B3S",
    names=("soplex", "milc", "namd"),
    instructions=6_000_000,
    allowed_modes=None,
    record=False,
):
    machine = STANDARD_MACHINES[machine_name]()
    profiles = [benchmark(n).scaled(instructions) for n in names]
    scheduler = ModeAwareReliabilityScheduler(
        machine, len(profiles), allowed_modes=allowed_modes
    )
    if record:
        scheduler.recorder = DecisionTraceRecorder()
    result = MulticoreSimulation(machine, profiles, scheduler).run()
    return machine, scheduler, result


class TestModeModels:
    @pytest.mark.parametrize("key", sorted(MODES))
    def test_slowdown_at_least_one(self, key):
        assert slowdown_factor(parse_mode(key), QUANTUM) >= 1.0

    @pytest.mark.parametrize("key", sorted(MODES))
    def test_residual_in_unit_interval(self, key):
        residual = residual_factor(parse_mode(key), QUANTUM)
        assert 0.0 <= residual <= 1.0

    def test_none_is_free_and_unprotected(self):
        assert slowdown_factor(MODE_NONE, QUANTUM) == 1.0
        assert residual_factor(MODE_NONE, QUANTUM) == 1.0
        assert protection_abc_rate(MODE_NONE) == 0.0

    def test_checkpoint_interval_tradeoff(self):
        # Longer intervals amortize the checkpoint cost (less slowdown)
        # but leave a wider vulnerability window (more residual SER).
        intervals = sorted(
            m.interval_quanta for m in MODES.values()
            if m.kind == "checkpoint"
        )
        assert len(intervals) >= 2
        modes = [parse_mode(f"checkpoint@{n}") for n in intervals]
        slowdowns = [slowdown_factor(m, QUANTUM) for m in modes]
        residuals = [residual_factor(m, QUANTUM) for m in modes]
        assert slowdowns == sorted(slowdowns, reverse=True)
        assert residuals == sorted(residuals)

    def test_dmr_suppresses_more_than_any_checkpoint(self):
        dmr = residual_factor(parse_mode("dmr"), QUANTUM)
        for mode in MODES.values():
            if mode.kind == "checkpoint":
                assert dmr < residual_factor(mode, QUANTUM)

    def test_parse_mode_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_mode("tmr")


class TestModeNoneEquivalence:
    def test_mode_none_is_byte_identical_to_reliability(self):
        machine = STANDARD_MACHINES["2B2S"]()
        names = ("soplex", "milc", "namd", "povray")
        profiles = [benchmark(n).scaled(2_000_000) for n in names]

        moded = ModeAwareReliabilityScheduler(
            machine, len(profiles), allowed_modes=("none",)
        )
        moded_result = MulticoreSimulation(machine, profiles, moded).run()
        base = ReliabilityScheduler(machine, len(profiles))
        base_result = MulticoreSimulation(machine, profiles, base).run()

        moded_payload = run_result_to_dict(moded_result)
        base_payload = run_result_to_dict(base_result)
        moded_payload["scheduler_name"] = "reliability"
        base_payload["scheduler_name"] = "reliability"
        assert moded_payload == base_payload
        assert all(
            keys == ("none",) * len(profiles)
            for keys, _ in moded.mode_history
        )


class TestModeSearch:
    def test_protection_gets_used_when_profitable(self):
        _, scheduler, _ = run_modes()
        schedule = scheduler.mode_schedule()
        used = {
            key
            for counts in schedule.quanta_by_app
            for key, quanta in counts.items()
            if quanta > 0
        }
        assert used - {"none"}, "search never engaged a protection mode"

    def test_mode_search_never_worse_than_placement_only(self):
        # Every accepted mode change strictly improved the extended
        # objective, so the final mode vector is never worse than
        # leaving every app unprotected at the same placement.
        _, scheduler, _ = run_modes()
        assignment = scheduler._assignment
        machine = scheduler.machine
        chosen = sum(
            scheduler.mode_objective(
                i,
                assignment.core_type_of(i, machine),
                scheduler._mode_of[i],
            )
            for i in range(scheduler.num_apps)
        )
        unprotected = sum(
            scheduler.mode_objective(
                i, assignment.core_type_of(i, machine), MODE_NONE
            )
            for i in range(scheduler.num_apps)
        )
        assert chosen <= unprotected

    def test_decision_trace_replays_mode_changes(self):
        _, scheduler, _ = run_modes(record=True)
        records = scheduler.recorder.records
        assert any(
            c.kind == "mode" for r in records for c in r.candidates
        )
        report = check_decision_trace(records, label="modes")
        assert report.ok, report.format()


class TestDmrLegality:
    def run_recorded(self, **kwargs):
        from repro.check.differential import _RecordingScheduler

        machine = STANDARD_MACHINES["1B3S"]()
        names = ("soplex", "milc", "namd")
        profiles = [benchmark(n).scaled(6_000_000) for n in names]
        inner = ModeAwareReliabilityScheduler(
            machine, len(profiles), **kwargs
        )
        recording = _RecordingScheduler(inner)
        MulticoreSimulation(machine, profiles, recording).run()
        return machine, inner, recording

    def test_dmr_allocates_a_small_checker_core(self):
        machine, inner, _ = self.run_recorded(
            allowed_modes=("none", "dmr")
        )
        checker_sets = [checkers for _, checkers in inner.mode_history]
        assert any(checker_sets), "DMR was never engaged"
        for checkers in checker_sets:
            for core in checkers:
                assert core >= machine.big_cores

    def test_checker_core_is_never_double_assigned(self):
        machine, inner, recording = self.run_recorded()
        report = check_mode_schedule(
            recording.plans_by_quantum,
            inner.mode_history,
            machine,
            inner.num_apps,
        )
        assert report.ok, report.format()


class TestApplyModes:
    def test_all_none_overlay_matches_base_accounting(self):
        machine, scheduler, result = run_modes(
            allowed_modes=("none",),
        )
        schedule = scheduler.mode_schedule()
        outcome = apply_modes(result, schedule, machine.memory)
        for app, moded in zip(result.apps, outcome.apps):
            assert moded.weights == {"none": 1.0}
            assert moded.moded_time_seconds == app.time_seconds
            assert moded.protection_abc_seconds == 0.0
            assert moded.protection_power_watts == 0.0

    def test_conservation_invariant_holds(self):
        machine, scheduler, result = run_modes()
        schedule = scheduler.mode_schedule()
        outcome = apply_modes(result, schedule, machine.memory)
        report = check_mode_outcome(
            outcome, result, schedule, machine.memory
        )
        assert report.ok, report.format()

    def test_protection_reduces_moded_sser(self):
        machine, scheduler, result = run_modes()
        schedule = scheduler.mode_schedule()
        protected = apply_modes(result, schedule, machine.memory)
        all_none = apply_modes(
            result,
            type(schedule)(
                quanta_by_app=tuple(
                    {"none": sum(c.values())} for c in schedule.quanta_by_app
                ),
                quantum_seconds=schedule.quantum_seconds,
            ),
            machine.memory,
        )
        assert protected.moded_sser < all_none.moded_sser


class TestUncoreSser:
    def test_l3_rate_saturates(self):
        memory = STANDARD_MACHINES["2B2S"]().memory
        assert l3_abc_rate_estimate(memory, 0.0) == 0.0
        low = l3_abc_rate_estimate(memory, 1e3)
        high = l3_abc_rate_estimate(memory, 1e9)
        assert 0.0 < low < high
        assert high <= 8 * memory.l3.size_bytes

    def test_breakdown_components_sum_to_chip(self):
        machine, _, result = run_modes()
        breakdown = run_sser_breakdown(result, machine.memory)
        assert breakdown.core_sser > 0
        assert breakdown.l2_sser > 0
        assert breakdown.l3_sser > 0
        assert breakdown.chip_sser == pytest.approx(
            breakdown.core_sser + breakdown.l2_sser + breakdown.l3_sser
        )
        assert breakdown.uncore_sser == pytest.approx(
            breakdown.l2_sser + breakdown.l3_sser
        )

    def test_l3_residency_splits_by_traffic_share(self):
        machine, _, result = run_modes()
        parts = uncore_abc(result, machine.memory)
        total_l3 = sum(p.l3_abc_seconds for p in parts)
        full_residency = (
            8 * machine.memory.l3.size_bytes
            * result.duration_seconds
            * 0.15
        )
        assert total_l3 == pytest.approx(full_residency)


class TestApkiRenameRegression:
    def test_observation_exposes_accesses_not_misses(self):
        obs = Observation(
            app_index=0,
            core_id=0,
            core_type=BIG,
            duration_seconds=1e-3,
            instructions=1_000_000,
            measured_abc_seconds=1.0,
            l3_accesses=5_000.0,
            dram_accesses=1_000.0,
        )
        assert obs.l3_apki == pytest.approx(5.0)
        assert obs.dram_apki == pytest.approx(1.0)
        assert not hasattr(obs, "l3_mpki")
        assert not hasattr(obs, "dram_mpki")

    def test_sample_is_fed_from_observation_apki(self):
        machine = STANDARD_MACHINES["2B2S"]()
        scheduler = ReliabilityScheduler(machine, 4)
        plan = scheduler.plan_quantum(0)[-1]
        core = plan.assignment.core_of[0]
        obs = Observation(
            app_index=0,
            core_id=core,
            core_type=BIG if core < machine.big_cores else "small",
            duration_seconds=1e-3,
            instructions=1_000_000,
            measured_abc_seconds=1.0,
            l3_accesses=5_000.0,
            dram_accesses=1_000.0,
        )
        scheduler.observe(plan, [obs])
        sample = scheduler.sample(0, obs.core_type)
        assert isinstance(sample, CoreTypeSample)
        assert sample.l3_apki == pytest.approx(obs.l3_apki)
        assert sample.dram_apki == pytest.approx(obs.dram_apki)


class TestModeFuzz:
    def test_mode_cases_pass(self):
        report = fuzz(
            3, model_cases=0, run_cases=0, stack_cases=0, kernel_cases=0,
            decision_cases=0, resume_cases=0, service_cases=0,
            batch_cases=0, shard_cases=0, mode_cases=1,
        )
        assert report.ok, report.format()
        assert report.reports[0].subject.startswith("mode/0")


def test_zero_abc_run_has_infinite_mttf():
    from repro.metrics.reliability import mttf, sser

    assert mttf(sser([])) == math.inf
