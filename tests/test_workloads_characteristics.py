"""Tests for workload characteristics and benchmark profiles."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instruction import InstructionClass
from repro.workloads.characteristics import (
    BenchmarkProfile,
    InstructionMix,
    PhaseCharacteristics,
    uniform_profile,
)


class TestInstructionMix:
    def test_default_sums_to_one(self):
        mix = InstructionMix()
        assert sum(mix.as_dict().values()) == pytest.approx(1.0)

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            InstructionMix(nop=0.5)  # default others push the sum past 1

    def test_memory_fraction(self):
        mix = InstructionMix()
        assert mix.memory_fraction == pytest.approx(mix.load + mix.store)

    def test_average_execution_latency_weighted(self):
        mix = InstructionMix()
        latency = mix.average_execution_latency()
        assert 1.0 <= latency <= 3.0  # mostly unit-latency classes


class TestPhaseCharacteristics:
    def test_defaults_valid(self):
        PhaseCharacteristics()

    def test_miss_rate_ordering_enforced(self):
        with pytest.raises(ValueError):
            PhaseCharacteristics(l1d_mpki=1.0, l2_mpki=5.0, l3_mpki=0.1)
        with pytest.raises(ValueError):
            PhaseCharacteristics(l1d_mpki=10.0, l2_mpki=5.0, l3_mpki=6.0)

    def test_cannot_mispredict_more_branches_than_exist(self):
        with pytest.raises(ValueError):
            PhaseCharacteristics(branch_mpki=500.0)  # default 20% branches

    def test_l3_mpki_at_share_full_capacity(self):
        chars = PhaseCharacteristics(l1d_mpki=10, l2_mpki=6, l3_mpki=2,
                                     cache_sensitivity=0.8)
        assert chars.l3_mpki_at_share(1.0) == pytest.approx(2.0)

    def test_l3_mpki_grows_as_share_shrinks(self):
        chars = PhaseCharacteristics(l1d_mpki=10, l2_mpki=6, l3_mpki=2,
                                     cache_sensitivity=0.8)
        quarter = chars.l3_mpki_at_share(0.25)
        assert 2.0 < quarter <= 6.0

    def test_insensitive_app_unaffected(self):
        chars = PhaseCharacteristics(l1d_mpki=10, l2_mpki=6, l3_mpki=2,
                                     cache_sensitivity=0.0)
        assert chars.l3_mpki_at_share(0.01) == pytest.approx(2.0)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_l3_mpki_monotone_in_share(self, a, b):
        chars = PhaseCharacteristics(l1d_mpki=20, l2_mpki=10, l3_mpki=3,
                                     cache_sensitivity=0.6)
        lo, hi = min(a, b), max(a, b)
        assert chars.l3_mpki_at_share(lo) >= chars.l3_mpki_at_share(hi) - 1e-12

    @given(st.floats(-1.0, 2.0))
    def test_l3_mpki_never_exceeds_l2(self, share):
        chars = PhaseCharacteristics(l1d_mpki=20, l2_mpki=10, l3_mpki=3,
                                     cache_sensitivity=1.0)
        assert chars.l3_mpki_at_share(share) <= 10.0 + 1e-9


class TestBenchmarkProfile:
    def _two_phase(self, n=1000):
        return BenchmarkProfile(
            name="x",
            instructions=n,
            phases=(
                (0.75, PhaseCharacteristics(branch_mpki=1.0)),
                (0.25, PhaseCharacteristics(branch_mpki=9.0)),
            ),
        )

    def test_phase_boundaries(self):
        prof = self._two_phase(1000)
        assert prof.phase_boundaries() == [0, 750, 1000]

    def test_phase_at(self):
        prof = self._two_phase(1000)
        assert prof.phase_at(0).branch_mpki == 1.0
        assert prof.phase_at(749).branch_mpki == 1.0
        assert prof.phase_at(750).branch_mpki == 9.0
        assert prof.phase_at(999).branch_mpki == 9.0

    def test_phase_at_wraps_for_restarts(self):
        prof = self._two_phase(1000)
        assert prof.phase_at(1000).branch_mpki == 1.0
        assert prof.phase_at(1750).branch_mpki == 9.0

    def test_instructions_until_phase_change(self):
        prof = self._two_phase(1000)
        assert prof.instructions_until_phase_change(0) == 750
        assert prof.instructions_until_phase_change(700) == 50
        assert prof.instructions_until_phase_change(750) == 250

    def test_scaled(self):
        scaled = self._two_phase(1000).scaled(100)
        assert scaled.instructions == 100
        assert scaled.phase_boundaries() == [0, 75, 100]

    def test_fraction_sum_enforced(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad", instructions=10,
                phases=((0.5, PhaseCharacteristics()),),
            )

    def test_uniform_profile(self):
        prof = uniform_profile("u", PhaseCharacteristics(), 500)
        assert len(prof.phases) == 1
        assert prof.instructions == 500

    @given(st.integers(0, 5000))
    def test_phase_at_consistent_with_boundaries(self, pos):
        prof = self._two_phase(1000)
        boundaries = prof.phase_boundaries()
        chars = prof.phase_at(pos)
        wrapped = pos % 1000
        expected = 1.0 if wrapped < boundaries[1] else 9.0
        assert chars.branch_mpki == expected
