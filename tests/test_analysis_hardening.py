"""Tests for the selective-hardening analysis."""

import pytest

from repro.analysis.hardening import (
    greedy_plan,
    hardening_options,
    suite_ace_profile,
)
from repro.config import big_core_config
from repro.config.structures import StructureKind


@pytest.fixture(scope="module")
def options():
    return hardening_options()


class TestSuiteProfile:
    def test_totals_positive(self):
        ace, cycles = suite_ace_profile(instructions=1_000_000)
        assert cycles > 0
        assert all(v >= 0 for v in ace.values())
        assert StructureKind.ROB in ace


class TestOptions:
    def test_sorted_by_efficiency(self, options):
        efficiencies = [o.efficiency for o in options]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_ace_shares_sum_to_one(self, options):
        assert sum(o.ace_share for o in options) == pytest.approx(1.0)

    def test_rob_is_a_top_target(self, options):
        """The ROB holds ~half the ACE state (Figure 5), so it must be
        among the most efficient hardening targets."""
        top_three = [o.kind for o in options[:3]]
        assert StructureKind.ROB in top_three

    def test_register_file_is_inefficient(self, options):
        """The physical register file is large but mostly dead state:
        poor AVF return per protected bit."""
        by_kind = {o.kind: o for o in options}
        rob = by_kind[StructureKind.ROB]
        rf = by_kind[StructureKind.REGISTER_FILE]
        assert rob.efficiency > rf.efficiency


class TestGreedyPlan:
    def test_zero_budget(self, options):
        plan = greedy_plan(0, options)
        assert plan.chosen == ()
        assert plan.avf_reduction == 0.0

    def test_unlimited_budget_hardens_everything(self, options):
        core = big_core_config()
        plan = greedy_plan(core.total_ace_capacity_bits, options)
        assert len(plan.chosen) == len(options)
        assert plan.avf_after == pytest.approx(0.0, abs=1e-12)

    def test_budget_respected(self, options):
        budget = 12_000
        plan = greedy_plan(budget, options)
        assert plan.protected_bits <= budget
        assert plan.avf_after < plan.avf_before

    def test_monotone_in_budget(self, options):
        reductions = [
            greedy_plan(b, options).avf_reduction
            for b in (5_000, 15_000, 30_000)
        ]
        assert reductions == sorted(reductions)

    def test_negative_budget_rejected(self, options):
        with pytest.raises(ValueError):
            greedy_plan(-1, options)
