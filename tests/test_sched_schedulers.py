"""Tests for the concrete schedulers: random, reliability, performance."""

import pytest

from repro.config import BIG, SMALL, machine_2b2s
from repro.sched.base import Observation
from repro.sched.performance import PerformanceScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.reliability import ReliabilityScheduler


def _feed_samples(sched, machine, samples):
    """Inject (ips, abc_rate) samples for both core types per app.

    ``samples[(i, type)] = (ips, abc_per_second)``.
    """
    for (i, core_type), (ips, abc) in samples.items():
        core = 0 if core_type == BIG else machine.big_cores
        obs = Observation(
            app_index=i, core_id=core, core_type=core_type,
            duration_seconds=1e-3, instructions=int(ips * 1e-3),
            measured_abc_seconds=abc * 1e-3,
        )
        plan = sched.plan_quantum(0)[0]
        sched.observe(plan, [obs])


class TestRandomScheduler:
    def test_reshuffles_every_quantum(self):
        m = machine_2b2s()
        sched = RandomScheduler(m, 4, seed=3)
        assignments = {sched.plan_quantum(q)[0].assignment.core_of
                       for q in range(20)}
        assert len(assignments) > 3

    def test_deterministic_per_seed(self):
        m = machine_2b2s()
        a = [RandomScheduler(m, 4, seed=5).plan_quantum(q)[0].assignment.core_of
             for q in range(5)]
        b = [RandomScheduler(m, 4, seed=5).plan_quantum(q)[0].assignment.core_of
             for q in range(5)]
        assert a == b

    def test_single_full_segment(self):
        plans = RandomScheduler(machine_2b2s(), 4).plan_quantum(0)
        assert len(plans) == 1
        assert plans[0].fraction == 1.0


class TestObjectives:
    def _reliability_with_samples(self, m):
        sched = ReliabilityScheduler(m, 4)
        # Run the two initial sampling quanta with controlled data:
        # app i on big has ABC rate (i+1)*1000, all IPS equal.
        for q in range(2):
            plans = sched.plan_quantum(q)
            for plan in plans:
                obs = []
                for i in range(4):
                    t = plan.assignment.core_type_of(i, m)
                    abc = (i + 1) * 1000.0 if t == BIG else (i + 1) * 100.0
                    obs.append(Observation(
                        app_index=i,
                        core_id=plan.assignment.core_of[i],
                        core_type=t,
                        duration_seconds=1e-3,
                        instructions=1_000_000,
                        measured_abc_seconds=abc * 1e-3,
                    ))
                sched.observe(plan, obs)
        return sched

    def test_reliability_objective_is_wser_estimate(self):
        m = machine_2b2s()
        sched = self._reliability_with_samples(m)
        # wSER estimate = abc_per_instruction(type) * big-core IPS.
        # IPS = 1e9 everywhere, so value(i, BIG) = (i+1)*1000.
        for i in range(4):
            assert sched.objective_value(i, BIG) == pytest.approx((i + 1) * 1000)
            assert sched.objective_value(i, SMALL) == pytest.approx((i + 1) * 100)

    def test_reliability_puts_highest_abc_apps_on_small(self):
        m = machine_2b2s()
        sched = self._reliability_with_samples(m)
        assignment = sched.plan_quantum(2)[-1].assignment
        # Apps 2 and 3 (highest ABC) must be on small cores.
        assert assignment.core_type_of(3, m) == SMALL
        assert assignment.core_type_of(2, m) == SMALL
        assert assignment.core_type_of(0, m) == BIG
        assert assignment.core_type_of(1, m) == BIG

    def test_performance_puts_highest_speedup_apps_on_big(self):
        m = machine_2b2s()
        sched = PerformanceScheduler(m, 4)
        # App i runs at IPS 1e9 on big; small-core IPS varies: apps
        # 0, 1 lose the most on small -> they belong on big.
        small_ips = {0: 2e8, 1: 3e8, 2: 8e8, 3: 9e8}
        for q in range(2):
            plans = sched.plan_quantum(q)
            for plan in plans:
                obs = []
                for i in range(4):
                    t = plan.assignment.core_type_of(i, m)
                    ips = 1e9 if t == BIG else small_ips[i]
                    obs.append(Observation(
                        app_index=i,
                        core_id=plan.assignment.core_of[i],
                        core_type=t,
                        duration_seconds=1e-3,
                        instructions=int(ips * 1e-3),
                        measured_abc_seconds=1e-3,
                    ))
                sched.observe(plan, obs)
        assignment = sched.plan_quantum(2)[-1].assignment
        assert assignment.core_type_of(0, m) == BIG
        assert assignment.core_type_of(1, m) == BIG
        assert assignment.core_type_of(2, m) == SMALL
        assert assignment.core_type_of(3, m) == SMALL
