"""Repository integrity: docs, benches and examples stay in sync."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestDocsReferences:
    def test_readme_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.findall(r"`examples/([\w_]+\.py)`", readme):
            assert (ROOT / "examples" / match).exists(), match

    def test_design_benches_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        for match in re.findall(r"benchmarks/(bench_[\w]+\.py)", design):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_experiments_benches_exist(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for match in re.findall(r"`(bench_[\w]+)`", experiments):
            assert (ROOT / "benchmarks" / f"{match}.py").exists(), match

    def test_every_bench_is_documented(self):
        """Each bench file appears in DESIGN.md or EXPERIMENTS.md."""
        docs = (ROOT / "DESIGN.md").read_text() + (
            ROOT / "EXPERIMENTS.md"
        ).read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.stem in docs, bench.stem

    def test_docs_directory_complete(self):
        expected = {"architecture.md", "modeling.md", "metrics.md",
                    "scheduling.md", "workloads.md", "extensions.md"}
        present = {p.name for p in (ROOT / "docs").glob("*.md")}
        assert expected <= present


class TestPackagingIntegrity:
    def test_every_package_has_init(self):
        for directory in (ROOT / "src" / "repro").rglob("*"):
            if directory.is_dir() and list(directory.glob("*.py")):
                assert (directory / "__init__.py").exists(), directory

    def test_every_module_has_docstring(self):
        import ast
        for module in (ROOT / "src" / "repro").rglob("*.py"):
            tree = ast.parse(module.read_text())
            assert ast.get_docstring(tree), f"{module} lacks a docstring"

    def test_every_test_module_mirrors_a_concern(self):
        """Test files follow the test_<area>*.py convention."""
        for test in (ROOT / "tests").glob("*.py"):
            if test.name in ("__init__.py", "conftest.py"):
                continue
            assert test.name.startswith("test_"), test.name

    def test_py_typed_marker(self):
        assert (ROOT / "src" / "repro" / "py.typed").exists()

    def test_license_present(self):
        assert "MIT License" in (ROOT / "LICENSE").read_text()
