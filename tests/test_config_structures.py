"""Tests for structure geometry (Table 2 bit accounting)."""

import pytest

from repro.config.structures import (
    RegisterFileConfig,
    StructureConfig,
    StructureKind,
)


class TestStructureConfig:
    def test_total_bits(self):
        rob = StructureConfig(StructureKind.ROB, 128, 76)
        assert rob.total_bits == 128 * 76 == 9728

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            StructureConfig(StructureKind.ROB, 0, 76)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            StructureConfig(StructureKind.ROB, 128, 0)


class TestRegisterFileConfig:
    def test_total_bits_matches_table2(self):
        rf = RegisterFileConfig(
            int_registers=120, int_bits=64, fp_registers=96, fp_bits=128
        )
        assert rf.total_bits == 120 * 64 + 96 * 128 == 19968

    def test_arch_bits(self):
        rf = RegisterFileConfig(
            int_registers=120, int_bits=64, fp_registers=96, fp_bits=128
        )
        assert rf.arch_bits == 16 * 64 + 16 * 128 == 3072

    def test_rejects_fewer_physical_than_architectural(self):
        with pytest.raises(ValueError):
            RegisterFileConfig(
                int_registers=8, int_bits=64, fp_registers=96, fp_bits=128
            )
