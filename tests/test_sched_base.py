"""Tests for scheduler base types."""

import pytest

from repro.config import BIG, SMALL, machine_1b3s, machine_2b2s
from repro.sched.base import Assignment, Observation, Scheduler, SegmentPlan


class TestAssignment:
    def test_rejects_shared_core(self):
        with pytest.raises(ValueError):
            Assignment((0, 0, 1, 2))

    def test_validate_range(self):
        Assignment((0, 1, 2, 3)).validate(machine_2b2s())
        with pytest.raises(ValueError):
            Assignment((0, 1, 2, 4)).validate(machine_2b2s())

    def test_core_type_of(self):
        m = machine_2b2s()
        a = Assignment((0, 2, 1, 3))
        assert a.core_type_of(0, m) == BIG
        assert a.core_type_of(1, m) == SMALL

    def test_with_swap(self):
        a = Assignment((0, 1, 2, 3)).with_swap(0, 3)
        assert a.core_of == (3, 1, 2, 0)

    def test_with_swap_is_pure(self):
        a = Assignment((0, 1))
        a.with_swap(0, 1)
        assert a.core_of == (0, 1)


class TestSegmentPlan:
    def test_fraction_bounds(self):
        SegmentPlan(1.0, Assignment((0,)))
        with pytest.raises(ValueError):
            SegmentPlan(0.0, Assignment((0,)))
        with pytest.raises(ValueError):
            SegmentPlan(1.5, Assignment((0,)))


class TestObservation:
    def test_rates(self):
        obs = Observation(
            app_index=0, core_id=1, core_type=BIG,
            duration_seconds=2.0, instructions=100,
            measured_abc_seconds=50.0,
        )
        assert obs.instructions_per_second == pytest.approx(50.0)
        assert obs.abc_per_second == pytest.approx(25.0)

    def test_zero_duration_rates(self):
        obs = Observation(0, 0, BIG, 0.0, 0, 0.0)
        assert obs.instructions_per_second == 0.0
        assert obs.abc_per_second == 0.0


class TestSchedulerContract:
    def test_app_count_must_match_cores(self):
        class Dummy(Scheduler):
            def plan_quantum(self, q):
                return []

        with pytest.raises(ValueError):
            Dummy(machine_2b2s(), 3)
        Dummy(machine_1b3s(), 4)  # 4 cores, 4 apps: fine
