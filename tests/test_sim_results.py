"""Tests for run-result containers."""

import pytest

from repro.metrics.reliability import DEFAULT_IFR
from repro.sim.results import AppRunRecord, RunResult


def _record(name="a", abc=10.0, time=2.0, ref=1.0):
    return AppRunRecord(
        name=name,
        instructions=1000,
        time_seconds=time,
        abc_seconds=abc,
        reference_time_seconds=ref,
    )


class TestAppRunRecord:
    def test_wser(self):
        rec = _record(abc=10.0, ref=2.0)
        assert rec.wser == pytest.approx(5.0 * DEFAULT_IFR)

    def test_slowdown_and_progress(self):
        rec = _record(time=4.0, ref=2.0)
        assert rec.slowdown == pytest.approx(2.0)
        assert rec.normalized_progress == pytest.approx(0.5)

    def test_ser_vs_wser_relation(self):
        rec = _record(abc=10.0, time=4.0, ref=2.0)
        assert rec.wser == pytest.approx(rec.ser * rec.slowdown)


class TestRunResult:
    def _result(self):
        return RunResult(
            machine_name="2B2S",
            scheduler_name="test",
            quanta=10,
            duration_seconds=2.0,
            apps=[
                _record("a", abc=10.0, time=2.0, ref=1.0),
                _record("b", abc=4.0, time=2.0, ref=2.0),
            ],
        )

    def test_sser_sums_wser(self):
        result = self._result()
        assert result.sser == pytest.approx(
            sum(a.wser for a in result.apps)
        )

    def test_stp(self):
        assert self._result().stp == pytest.approx(0.5 + 1.0)

    def test_antt(self):
        assert self._result().antt == pytest.approx((2.0 + 1.0) / 2)

    def test_app_lookup(self):
        result = self._result()
        assert result.app("b").name == "b"
        with pytest.raises(KeyError):
            result.app("z")
