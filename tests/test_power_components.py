"""Component-level tests for the power model arithmetic."""

import pytest

from repro.config import machine_2b2s, machine_4b4s
from repro.power.model import (
    BIG_EPI_J,
    BIG_STATIC_W,
    DRAM_ACCESS_J,
    DRAM_BACKGROUND_W,
    L3_STATIC_W,
    OCCUPANCY_W_PER_BIT,
    SMALL_EPI_J,
    SMALL_STATIC_W,
    PowerModel,
)
from repro.sim.results import AppRunRecord, RunResult


def _result(duration=1.0, **record_overrides):
    record = AppRunRecord(
        name="app",
        instructions=record_overrides.pop("instructions", 0),
        time_seconds=duration,
        reference_time_seconds=duration,
        **record_overrides,
    )
    return RunResult(
        machine_name="2B2S", scheduler_name="x", quanta=1,
        duration_seconds=duration, apps=[record],
    )


class TestArithmetic:
    def test_static_only_when_idle(self):
        power = PowerModel(machine_2b2s()).run_power(_result())
        expected_static = 2 * BIG_STATIC_W + 2 * SMALL_STATIC_W
        assert power.core_static_watts == pytest.approx(expected_static)
        assert power.core_dynamic_watts == 0.0
        assert power.l3_watts == pytest.approx(L3_STATIC_W)
        assert power.dram_watts == pytest.approx(DRAM_BACKGROUND_W)

    def test_dynamic_energy_per_core_type(self):
        result = _result(
            instructions_big=1_000_000_000,
            instructions_small=2_000_000_000,
        )
        power = PowerModel(machine_2b2s()).run_power(result)
        expected = 1e9 * BIG_EPI_J + 2e9 * SMALL_EPI_J
        assert power.core_dynamic_watts == pytest.approx(expected)

    def test_occupancy_power(self):
        result = _result(occupancy_bit_seconds=10_000.0)
        power = PowerModel(machine_2b2s()).run_power(result)
        assert power.occupancy_watts == pytest.approx(
            10_000.0 * OCCUPANCY_W_PER_BIT
        )

    def test_dram_traffic_energy(self):
        result = _result(dram_accesses=1e8)
        power = PowerModel(machine_2b2s()).run_power(result)
        assert power.dram_watts == pytest.approx(
            DRAM_BACKGROUND_W + 1e8 * DRAM_ACCESS_J
        )

    def test_duration_normalization(self):
        """Same totals over twice the time = half the average power."""
        busy = dict(instructions_big=1_000_000_000,
                    occupancy_bit_seconds=5_000.0, dram_accesses=1e7)
        one_second = PowerModel(machine_2b2s()).run_power(
            _result(duration=1.0, **busy)
        )
        two_seconds = PowerModel(machine_2b2s()).run_power(
            _result(duration=2.0, **busy)
        )
        assert two_seconds.core_dynamic_watts == pytest.approx(
            one_second.core_dynamic_watts / 2
        )
        # Static power is duration-independent.
        assert two_seconds.core_static_watts == pytest.approx(
            one_second.core_static_watts
        )

    def test_more_cores_more_static(self):
        p2 = PowerModel(machine_2b2s()).run_power(_result())
        result8 = _result()
        result8.machine_name = "4B4S"
        p8 = PowerModel(machine_4b4s()).run_power(result8)
        assert p8.core_static_watts == pytest.approx(
            2 * p2.core_static_watts
        )
