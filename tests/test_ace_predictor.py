"""Tests for counter-free ABC prediction and the predicted scheduler."""

import pytest

from repro.ace.predictor import (
    AbcPredictor,
    PredictedReliabilityScheduler,
    train_predictor,
)
from repro.config import BIG, SMALL, machine_2b2s
from repro.cores.base import ISOLATED
from repro.cores.mechanistic import MechanisticCoreModel
from repro.config.cores import big_core_config
from repro.config.machines import MemoryConfig
from repro.sim.experiment import run_workload
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import SUITE, benchmark


@pytest.fixture(scope="module")
def predictor():
    return train_predictor()


class TestTraining:
    def test_fits_both_core_types(self, predictor):
        assert set(predictor.coefficients) == {BIG, SMALL}
        assert all(len(c) == 7 for c in predictor.coefficients.values())

    def test_training_fit_is_strong(self, predictor):
        """Walcott et al. report high regression accuracy; the linear
        model must explain most of the ABC variance here too."""
        assert predictor.training_r2[BIG] > 0.85
        assert predictor.training_r2[SMALL] > 0.6

    def test_predictions_nonnegative(self, predictor):
        assert predictor.predict_abc_per_cycle(BIG, 0.0, 0.0, 0.0, 0.0) >= 0.0

    def test_prediction_tracks_model_per_benchmark(self, predictor):
        model = MechanisticCoreModel(big_core_config(), MemoryConfig())
        errors = []
        for name in ("gobmk", "povray", "milc", "mcf", "hmmer"):
            chars = benchmark(name).phases[0][1]
            analysis = model.analyze(chars, ISOLATED)
            predicted = predictor.predict_abc_per_cycle(
                BIG,
                analysis.ipc,
                1000.0 * analysis.l3_accesses_per_instruction,
                1000.0 * analysis.dram_accesses_per_instruction,
                chars.branch_mpki,
            )
            errors.append(
                abs(predicted - analysis.total_ace_bits_per_cycle)
                / analysis.total_ace_bits_per_cycle
            )
        assert sum(errors) / len(errors) < 0.30


class TestPredictedScheduler:
    def test_schedules_without_ace_counters(self, predictor):
        machine = machine_2b2s()
        names = ("milc", "lbm", "mcf", "gobmk")
        profiles = [benchmark(n).scaled(30_000_000) for n in names]
        predicted = MulticoreSimulation(
            machine, profiles,
            PredictedReliabilityScheduler(machine, 4, predictor),
        ).run()
        random_run = run_workload(machine, names, "random",
                                  instructions=30_000_000)
        # The counter-free scheduler still reduces SSER substantially.
        assert predicted.sser < 0.9 * random_run.sser

    def test_close_to_measured_counters(self, predictor):
        machine = machine_2b2s()
        names = ("milc", "lbm", "mcf", "gobmk")
        profiles = [benchmark(n).scaled(30_000_000) for n in names]
        predicted = MulticoreSimulation(
            machine, profiles,
            PredictedReliabilityScheduler(machine, 4, predictor),
        ).run()
        measured = run_workload(machine, names, "reliability",
                                instructions=30_000_000)
        assert predicted.sser <= measured.sser * 1.25
