"""Tests for branch-misprediction counting across the model stack."""

import pytest

from repro.config import MemoryConfig, big_core_config, small_core_config
from repro.cores.base import ISOLATED, QuantumResult
from repro.cores.inorder import InOrderCoreModel
from repro.cores.mechanistic import MechanisticCoreModel
from repro.cores.ooo import OutOfOrderCoreModel
from repro.cores.tracebase import TraceApplication
from repro.sched.base import Observation
from repro.workloads.generator import generate_trace
from repro.workloads.spec2006 import benchmark


class TestMechanisticCounting:
    def test_matches_profile_rate(self, memory):
        model = MechanisticCoreModel(big_core_config(), memory)
        prof = benchmark("gobmk").scaled(10_000_000)  # 13 branch MPKI
        result = model.run_cycles(prof, 0, 1_000_000, ISOLATED)
        mpki = 1000.0 * result.branch_mispredictions / result.instructions
        assert mpki == pytest.approx(13.0, rel=0.01)


class TestTraceDrivenCounting:
    def test_big_core_counts_committed_mispredicts(self, memory):
        model = OutOfOrderCoreModel(big_core_config(), memory)
        trace = generate_trace(benchmark("gobmk"), 20_000, seed=4)
        expected = float(trace.mispredicted.sum())
        result = model.run_cycles(
            TraceApplication(trace), 0, 10_000_000, ISOLATED
        )
        assert result.branch_mispredictions == pytest.approx(expected)

    def test_small_core_counts_committed_mispredicts(self, memory):
        model = InOrderCoreModel(small_core_config(), memory)
        trace = generate_trace(benchmark("sjeng"), 20_000, seed=4)
        expected = float(trace.mispredicted.sum())
        result = model.run_cycles(
            TraceApplication(trace), 0, 10_000_000, ISOLATED
        )
        assert result.branch_mispredictions == pytest.approx(expected)


class TestPlumbing:
    def test_merged_with_sums_mispredictions(self):
        a = QuantumResult(1, 1.0, branch_mispredictions=3.0)
        b = QuantumResult(1, 1.0, branch_mispredictions=4.0)
        assert a.merged_with(b).branch_mispredictions == pytest.approx(7.0)

    def test_observation_branch_mpki(self):
        obs = Observation(0, 0, "big", 1e-3, 1000, 0.0,
                          branch_mispredictions=5.0)
        assert obs.branch_mpki == pytest.approx(5.0)
        empty = Observation(0, 0, "big", 1e-3, 0, 0.0)
        assert empty.branch_mpki == 0.0

    def test_simulation_feeds_scheduler_branch_counters(self):
        """The sampling scheduler's samples carry branch MPKI."""
        from repro.config import BIG, machine_2b2s
        from repro.sched.reliability import ReliabilityScheduler
        from repro.sim.multicore import MulticoreSimulation

        machine = machine_2b2s()
        profiles = [benchmark(n).scaled(2_000_000)
                    for n in ("gobmk", "milc", "povray", "bzip2")]
        scheduler = ReliabilityScheduler(machine, 4)
        MulticoreSimulation(machine, profiles, scheduler).run()
        gobmk_sample = scheduler.sample(0, BIG)
        milc_sample = scheduler.sample(1, BIG)
        assert gobmk_sample.branch_mpki > 5.0
        assert milc_sample.branch_mpki < 2.0
