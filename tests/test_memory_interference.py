"""Tests for the shared-resource interference model."""

import pytest
from hypothesis import given, strategies as st

from repro.config.machines import MemoryConfig
from repro.cores.base import MemoryEnvironment
from repro.memory.interference import (
    ApplicationDemand,
    InterferenceModel,
    bandwidth_multiplier,
    llc_shares,
)


class TestLlcShares:
    def test_equal_demands_split_equally(self):
        shares = llc_shares([1.0, 1.0, 1.0, 1.0])
        assert all(s == pytest.approx(0.25) for s in shares)

    def test_shares_sum_to_one(self):
        shares = llc_shares([5.0, 1.0, 0.2])
        assert sum(shares) == pytest.approx(1.0)

    def test_higher_demand_gets_more(self):
        shares = llc_shares([9.0, 1.0])
        assert shares[0] > shares[1]
        # Square-root damping: 9x demand -> 3x share, not 9x.
        assert shares[0] / shares[1] == pytest.approx(3.0, rel=0.01)

    def test_zero_demand_gets_floor(self):
        shares = llc_shares([1.0, 0.0])
        assert shares[1] > 0.0

    def test_all_zero_demands(self):
        assert llc_shares([0.0, 0.0]) == [1.0, 1.0]

    def test_empty(self):
        assert llc_shares([]) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            llc_shares([-1.0])

    @given(st.lists(st.floats(0.0, 1e9), min_size=1, max_size=8))
    def test_shares_valid_fractions(self, demands):
        shares = llc_shares(demands)
        assert all(0.0 < s <= 1.0 for s in shares)
        if any(d > 0 for d in demands):
            assert sum(shares) == pytest.approx(1.0)


class TestBandwidth:
    def test_no_traffic_no_delay(self):
        assert bandwidth_multiplier(0.0, 25.6e9) == pytest.approx(1.0)

    def test_monotone_in_traffic(self):
        low = bandwidth_multiplier(5e9, 25.6e9)
        high = bandwidth_multiplier(20e9, 25.6e9)
        assert 1.0 < low < high

    def test_clamped_at_saturation(self):
        at_cap = bandwidth_multiplier(25.6e9, 25.6e9)
        beyond = bandwidth_multiplier(100e9, 25.6e9)
        assert at_cap == pytest.approx(beyond)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bandwidth_multiplier(1.0, 0.0)
        with pytest.raises(ValueError):
            bandwidth_multiplier(-1.0, 1.0)


class TestInterferenceModel:
    def test_environments_shape(self, memory):
        model = InterferenceModel(memory)
        envs = model.environments(
            [ApplicationDemand(1e6, 1e5), ApplicationDemand(2e6, 4e5)]
        )
        assert len(envs) == 2
        assert all(isinstance(e, MemoryEnvironment) for e in envs)
        assert envs[1].l3_share_fraction > envs[0].l3_share_fraction
        assert envs[0].dram_latency_multiplier == pytest.approx(
            envs[1].dram_latency_multiplier
        )

    def test_solo_app_is_isolated_like(self, memory):
        model = InterferenceModel(memory)
        envs = model.environments([ApplicationDemand(0.0, 0.0)])
        assert envs[0].l3_share_fraction == pytest.approx(1.0)
        assert envs[0].dram_latency_multiplier == pytest.approx(1.0)

    def test_solve_fixed_point(self, memory):
        model = InterferenceModel(memory)

        def demand_of(i, env):
            # Demand grows when the cache share shrinks.
            return ApplicationDemand(
                l3_accesses_per_second=1e7,
                dram_accesses_per_second=1e6 / env.l3_share_fraction,
            )

        envs = model.solve(demand_of, count=4)
        assert len(envs) == 4
        assert all(e.l3_share_fraction == pytest.approx(0.25) for e in envs)
        assert envs[0].dram_latency_multiplier > 1.0

    def test_solve_empty(self, memory):
        assert InterferenceModel(memory).solve(lambda i, e: None, 0) == []

    def test_demand_validation(self):
        with pytest.raises(ValueError):
            ApplicationDemand(-1.0, 0.0)
