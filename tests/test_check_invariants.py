"""Tests for the paper-invariant registry and check runners."""

import copy

import pytest

from repro.check import (
    CheckReport,
    Severity,
    Violation,
    check_oracle,
    check_run,
    check_schedule,
    check_stack,
    default_run_checks,
    merge_reports,
    registered_invariants,
)
from repro.check.invariants import invariant
from repro.config import MemoryConfig, big_core_config, machine_1b1s
from repro.config.machines import STANDARD_MACHINES
from repro.cores.mechanistic import MechanisticCoreModel
from repro.sched.base import Assignment, SegmentPlan
from repro.sim.experiment import run_workload
from repro.sim.isolated import isolated_stats, run_isolated
from repro.sim.multicore import default_models
from repro.workloads.spec2006 import benchmark


@pytest.fixture(scope="module")
def small_run():
    machine = machine_1b1s()
    return run_workload(
        machine, ("milc", "povray"), "reliability", instructions=100_000
    )


class TestRegistry:
    def test_every_subject_kind_has_invariants(self):
        for kind in ("run", "stack", "schedule", "oracle", "differential",
                     "service"):
            assert registered_invariants(kind), kind

    def test_descriptions_and_severities(self):
        for inv in registered_invariants():
            assert inv.description, inv.name
            assert inv.severity in (Severity.ERROR, Severity.WARNING)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            @invariant("wser_definition")
            def _clash(result):
                """Never registered."""
                yield "boom", {}

    def test_unknown_subject_kind_selects_nothing(self):
        assert registered_invariants("no-such-kind") == ()


class TestReportTypes:
    def _violation(self, severity=Severity.ERROR):
        return Violation(
            invariant="wser_definition",
            severity=severity,
            subject="run-x",
            message="drifted",
            values=(("actual", 2.0), ("expected", 1.0)),
        )

    def test_violation_format_names_everything(self):
        text = self._violation().format()
        assert "ERROR" in text
        assert "wser_definition" in text
        assert "run-x" in text
        assert "expected=1.0" in text and "actual=2.0" in text

    def test_report_ok_ignores_warnings(self):
        report = CheckReport(
            subject="s",
            checked=("a",),
            violations=(self._violation(Severity.WARNING),),
        )
        assert report.ok
        assert report.warnings and not report.errors

    def test_invariant_names_dedup_first_hit_order(self):
        report = CheckReport(
            subject="s",
            checked=("a", "b"),
            violations=(
                self._violation(),
                self._violation(),
            ),
        )
        assert report.invariant_names() == ("wser_definition",)

    def test_merge_reports_concatenates(self):
        one = CheckReport(subject="a", checked=("x",),
                          violations=(self._violation(),))
        two = CheckReport(subject="b", checked=("x", "y"))
        merged = merge_reports([one, two], subject="both")
        assert merged.subject == "both"
        assert merged.checked == ("x", "y")
        assert len(merged.violations) == 1
        assert "drifted" in merged.format()


class TestRunInvariants:
    def test_clean_run_passes_every_invariant(self, small_run):
        report = check_run(small_run)
        assert report.ok and not report.violations
        assert "1B1S/reliability/milc+povray" in report.subject
        assert "wser_definition" in report.checked
        assert "OK" in report.format()

    def test_default_run_checks_is_check_run(self, small_run):
        assert default_run_checks(small_run).checked == \
            check_run(small_run).checked

    def test_negative_abc_flagged(self, small_run):
        doctored = copy.deepcopy(small_run)
        doctored.apps[0].abc_seconds = -1.0
        report = check_run(doctored, label="doctored")
        assert not report.ok
        assert "non_negative_quantities" in report.invariant_names()

    def test_zero_time_flagged(self, small_run):
        doctored = copy.deepcopy(small_run)
        doctored.apps[0].time_seconds = 0.0
        report = check_run(doctored, label="doctored")
        assert "positive_times" in report.invariant_names()

    def test_instruction_split_mismatch_flagged(self, small_run):
        doctored = copy.deepcopy(small_run)
        doctored.apps[0].instructions_big += 7
        report = check_run(doctored, label="doctored")
        assert "time_decomposition" in report.invariant_names()

    def test_abc_exceeding_occupancy_flagged(self, small_run):
        doctored = copy.deepcopy(small_run)
        doctored.apps[0].abc_seconds = \
            2.0 * doctored.apps[0].occupancy_bit_seconds + 1.0
        report = check_run(doctored, label="doctored")
        assert "abc_within_occupancy" in report.invariant_names()

    def test_impossible_speedup_is_a_warning_only(self, small_run):
        doctored = copy.deepcopy(small_run)
        doctored.apps[0].reference_time_seconds = \
            10.0 * doctored.apps[0].time_seconds
        report = check_run(doctored, label="doctored")
        assert report.ok  # warnings never fail a run
        assert "slowdown_at_least_one" in report.invariant_names()
        assert report.warnings

    def test_violation_values_name_the_offender(self, small_run):
        doctored = copy.deepcopy(small_run)
        doctored.apps[0].abc_seconds = -3.5
        report = check_run(doctored, label="doctored")
        bad = [v for v in report.errors
               if v.invariant == "non_negative_quantities"]
        assert bad and dict(bad[0].values)["abc_seconds"] == -3.5
        assert doctored.apps[0].name in bad[0].message


class TestStackInvariants:
    @pytest.fixture(scope="class")
    def stack(self):
        model = MechanisticCoreModel(big_core_config(), MemoryConfig())
        return run_isolated(model, benchmark("milc").scaled(80_000))

    def test_clean_stack_conserves_abc(self, stack):
        report = check_stack(stack, label="milc-stack")
        assert report.ok and not report.violations

    def test_negative_structure_entry_flagged(self, stack):
        doctored = copy.deepcopy(stack)
        kind = next(iter(doctored.ace_bit_cycles))
        doctored.ace_bit_cycles[kind] = -5.0
        report = check_stack(doctored, label="doctored")
        assert "stack_conservation" in report.invariant_names()

    def test_structure_exceeding_occupancy_flagged(self, stack):
        doctored = copy.deepcopy(stack)
        kind = next(iter(doctored.ace_bit_cycles))
        extra = 2.0 * doctored.occupancy_bit_cycles[kind] + 1.0
        delta = extra - doctored.ace_bit_cycles[kind]
        doctored.ace_bit_cycles[kind] = extra
        # Keep the total consistent so only the occupancy bound trips.
        other = [k for k in doctored.ace_bit_cycles if k != kind][0]
        doctored.ace_bit_cycles[other] -= delta
        report = check_stack(doctored, label="doctored")
        assert "stack_within_occupancy" in report.invariant_names()


class _Plan:
    """Bare segment-plan stand-in: bypasses Assignment's validation so
    illegal schedules can be constructed for the checker to reject."""

    def __init__(self, fraction, cores):
        self.fraction = fraction
        self.assignment = type("A", (), {"core_of": tuple(cores)})()
        self.is_sampling = False


class TestScheduleInvariants:
    @pytest.fixture(scope="class")
    def machine(self):
        return STANDARD_MACHINES["2B2S"]()

    def test_legal_schedule_passes(self, machine):
        plans = [
            [SegmentPlan(1.0, Assignment((0, 1, 2, 3)))],
            [
                SegmentPlan(0.25, Assignment((2, 1, 0, 3)), True),
                SegmentPlan(0.75, Assignment((3, 2, 1, 0))),
            ],
        ]
        report = check_schedule(plans, machine, 4)
        assert report.ok and not report.violations

    def test_partial_coverage_flagged(self, machine):
        plans = [[_Plan(0.5, (0, 1, 2, 3))]]
        report = check_schedule(plans, machine, 4)
        assert "quantum_coverage" in report.invariant_names()

    def test_shared_core_flagged(self, machine):
        plans = [[_Plan(1.0, (0, 0, 1, 2))]]
        report = check_schedule(plans, machine, 4)
        assert "one_core_per_app" in report.invariant_names()

    def test_out_of_range_core_flagged(self, machine):
        plans = [[_Plan(1.0, (0, 1, 2, 9))]]
        report = check_schedule(plans, machine, 4)
        assert "one_core_per_app" in report.invariant_names()

    def test_wrong_arity_flagged(self, machine):
        plans = [[_Plan(1.0, (0, 1))]]
        report = check_schedule(plans, machine, 4)
        assert "one_core_per_app" in report.invariant_names()

    def test_overcommitted_machine_flagged(self, machine):
        plans = [[_Plan(1.0, (0, 1, 2, 3, 4, 5))]]
        report = check_schedule(plans, machine, 6)
        assert "core_capacity" in report.invariant_names()


class TestOracleInvariants:
    def test_oracle_dominates_greedy_on_real_inputs(self):
        machine = STANDARD_MACHINES["2B2S"]()
        models = default_models(machine)
        stats = [
            isolated_stats(benchmark(name).scaled(100_000),
                           models["big"], models["small"])
            for name in ("milc", "povray", "mcf", "libquantum")
        ]
        report = check_oracle(stats, machine)
        assert report.ok and not report.violations
        assert report.checked == ("oracle_dominates_greedy",)
