"""Property-based tests for oversubscription invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import machine_2b2s
from repro.sched.base import Observation
from repro.sched.oversubscribed import OversubscribedReliabilityScheduler
from repro.sched.random_sched import RandomScheduler


def _drive(sched, machine, plan, abc_by_app):
    observations = []
    for i in range(sched.num_apps):
        if plan.assignment.is_parked(i):
            observations.append(Observation(i, -1, "parked", 0.0, 0, 0.0))
            continue
        core_type = plan.assignment.core_type_of(i, machine)
        # Small cores expose a tenth of the big-core ACE rate.
        abc = abc_by_app[i] * (1.0 if core_type == "big" else 0.1)
        observations.append(Observation(
            app_index=i,
            core_id=plan.assignment.core_of[i],
            core_type=core_type,
            duration_seconds=1e-3,
            instructions=1_000_000,
            measured_abc_seconds=abc * 1e-3,
        ))
    sched.observe(plan, observations)


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        num_apps=st.integers(4, 9),
        abc_values=st.lists(st.floats(1.0, 1e5), min_size=9, max_size=9),
        quanta=st.integers(5, 40),
    )
    def test_exact_parking_count_and_no_starvation(
        self, num_apps, abc_values, quanta
    ):
        machine = machine_2b2s()
        sched = OversubscribedReliabilityScheduler(machine, num_apps)
        ran = [0] * num_apps
        for q in range(quanta):
            plan = sched.plan_quantum(q)[0]
            parked = sum(
                1 for i in range(num_apps) if plan.assignment.is_parked(i)
            )
            assert parked == num_apps - machine.num_cores
            plan.assignment.validate(machine)
            for i in range(num_apps):
                if not plan.assignment.is_parked(i):
                    ran[i] += 1
            _drive(sched, machine, plan, abc_values)
        # Deficit round-robin: every application runs a fair share.
        expected = quanta * machine.num_cores / num_apps
        for count in ran:
            assert count >= int(expected) - 1

    @settings(max_examples=15, deadline=None)
    @given(num_apps=st.integers(4, 8), seed=st.integers(0, 50))
    def test_random_scheduler_parks_exact_count(self, num_apps, seed):
        machine = machine_2b2s()
        sched = RandomScheduler(machine, num_apps, seed=seed)
        for q in range(10):
            plan = sched.plan_quantum(q)[0]
            parked = sum(
                1 for i in range(num_apps) if plan.assignment.is_parked(i)
            )
            assert parked == num_apps - machine.num_cores
            plan.assignment.validate(machine)

    def test_placement_follows_estimates(self):
        """Once all samples exist, the highest wSER-saving apps sit on
        small cores among whichever subset runs."""
        machine = machine_2b2s()
        sched = OversubscribedReliabilityScheduler(machine, 4)  # 1:1 case
        # Apps 2 and 3 save the most by running small.
        abc = [1e3, 2e3, 9e5, 8e5]
        for q in range(6):
            plan = sched.plan_quantum(q)[0]
            _drive(sched, machine, plan, abc)
        plan = sched.plan_quantum(10)[0]
        assert plan.assignment.core_type_of(2, machine) == "small"
        assert plan.assignment.core_type_of(3, machine) == "small"
