"""Tests for ACE counter architectures and measurement extraction."""

import pytest

from repro.ace.counters import AceCounterMode, SaturatingCounter, measured_abc
from repro.config.structures import StructureKind
from repro.cores.base import QuantumResult


def _result():
    return QuantumResult(
        instructions=100,
        cycles=50.0,
        ace_bit_cycles={
            StructureKind.ROB: 400.0,
            StructureKind.ISSUE_QUEUE: 100.0,
            StructureKind.REGISTER_FILE: 200.0,
            StructureKind.FUNCTIONAL_UNITS: 50.0,
        },
    )


class TestMeasuredAbc:
    def test_full_mode_reports_everything(self):
        assert measured_abc(_result(), AceCounterMode.FULL, True) == 750.0

    def test_rob_only_mode_reports_rob(self):
        assert measured_abc(_result(), AceCounterMode.ROB_ONLY, True) == 400.0

    def test_small_core_excludes_register_file(self):
        # The 67-byte in-order counter cannot see the register file.
        for mode in AceCounterMode:
            assert measured_abc(_result(), mode, False) == 550.0

    def test_rob_only_without_rob_structure(self):
        result = QuantumResult(instructions=1, cycles=1.0, ace_bit_cycles={})
        assert measured_abc(result, AceCounterMode.ROB_ONLY, True) == 0.0


class TestSaturatingCounter:
    def test_counts_and_saturates(self):
        c = SaturatingCounter(bits=4)
        c.add(10)
        assert c.value == 10
        c.add(10)
        assert c.value == 15  # saturated at 2^4 - 1
        assert c.saturated

    def test_set_clamps(self):
        c = SaturatingCounter(bits=12)
        c.set(5000)
        assert c.value == 4095

    def test_reset(self):
        c = SaturatingCounter(bits=12)
        c.add(7)
        c.reset()
        assert c.value == 0

    def test_rejects_negative(self):
        c = SaturatingCounter(bits=8)
        with pytest.raises(ValueError):
            c.add(-1)
        with pytest.raises(ValueError):
            c.set(-1)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
