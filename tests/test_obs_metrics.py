"""Tests for the process-local metrics registry."""

import json

import pytest

from repro.obs import metrics as obs


class TestSeries:
    def test_counter_accumulates(self):
        reg = obs.MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2.5)
        assert reg.counter("a").value == 3.5

    def test_labels_separate_series(self):
        reg = obs.MetricsRegistry()
        reg.counter("a", core="big").inc()
        reg.counter("a", core="small").inc(5)
        assert reg.counter("a", core="big").value == 1
        assert reg.counter("a", core="small").value == 5
        assert len(reg) == 2

    def test_label_order_irrelevant(self):
        reg = obs.MetricsRegistry()
        reg.counter("a", x=1, y=2).inc()
        reg.counter("a", y=2, x=1).inc()
        assert reg.counter("a", x=1, y=2).value == 2

    def test_kind_conflict_rejected(self):
        reg = obs.MetricsRegistry()
        reg.counter("a").inc()
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_timer_where_histogram_requested(self):
        # A Timer is a Histogram; reading it back as one is fine.
        reg = obs.MetricsRegistry()
        with reg.timer("t"):
            pass
        assert reg.histogram("t").count == 1

    def test_gauge_tracks_last_value(self):
        reg = obs.MetricsRegistry()
        reg.gauge("g").set(4)
        reg.gauge("g").set(2)
        assert reg.gauge("g").value == 2

    def test_histogram_statistics(self):
        reg = obs.MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 2.0, 9.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 12.0
        assert h.min == 1.0 and h.max == 9.0
        assert h.mean == pytest.approx(4.0)


class TestSnapshot:
    def build(self):
        reg = obs.MetricsRegistry()
        reg.counter("c", k="v").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(0.5)
        with reg.timer("t"):
            pass
        return reg

    def test_round_trips_through_json(self):
        snap = self.build().snapshot()
        data = json.loads(json.dumps(snap.to_dict()))
        restored = obs.RegistrySnapshot.from_dict(data)
        assert restored == snap

    def test_rows_cover_every_series(self):
        rows = self.build().snapshot().rows()
        names = [row[0] for row in rows]
        assert names == ["c{k=v}", "g", "h", "t"]

    def test_csv_export(self, tmp_path):
        path = tmp_path / "m.csv"
        obs.write_csv(self.build().snapshot(), path)
        lines = path.read_text().splitlines()
        assert lines[0] == "name,labels,kind,field,value"
        assert any(line.startswith("c,k=v,counter,value,3") for line in lines)

    def test_csv_histogram_buckets_one_row_each(self, tmp_path):
        import csv

        reg = obs.MetricsRegistry()
        series = reg.histogram("h")
        series.observe(0.5)   # (0.25, 1]      -> bucket_le_1
        series.observe(0.6)
        series.observe(300.0)  # (256, 1024]   -> bucket_le_1024
        series.observe(2e6)    # above 4^10    -> bucket_le_inf
        path = tmp_path / "m.csv"
        obs.write_csv(reg.snapshot(), path)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        bucket_rows = [
            (row[3], row[4]) for row in rows if row[3].startswith("bucket_")
        ]
        assert bucket_rows == [
            ("bucket_le_1", "2"),
            ("bucket_le_1024", "1"),
            ("bucket_le_inf", "1"),
        ]
        # The old single-cell joined blob is gone.
        assert not any(row[3] == "buckets" for row in rows)
        # Empty buckets are not exported.
        assert all(count != "0" for _field, count in bucket_rows)


class TestMerge:
    def test_counters_add(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.merge(b.snapshot())
        assert a.counter("c").value == 5

    def test_merge_accepts_plain_dict(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        b.counter("c").inc(3)
        a.merge(b.snapshot().to_dict())
        assert a.counter("c").value == 3

    def test_merge_is_commutative(self):
        def registries():
            a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
            a.counter("c").inc(1)
            a.histogram("h").observe(2.0)
            b.counter("c").inc(4)
            b.histogram("h").observe(8.0)
            b.gauge("g").set(3)
            return a, b

        a, b = registries()
        a.merge(b.snapshot())
        forward = a.snapshot()
        a2, b2 = registries()
        b2.merge(a2.snapshot())
        backward = b2.snapshot()
        assert forward == backward

    def test_histograms_merge_elementwise(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(3.0)
        a.merge(b.snapshot())
        h = a.histogram("h")
        assert h.count == 2 and h.total == 4.0
        assert h.min == 1.0 and h.max == 3.0

    def test_unknown_kind_skipped(self):
        a = obs.MetricsRegistry()
        a.merge({"series": [{"name": "x", "labels": {},
                             "kind": "quantile_sketch", "data": {}}]})
        assert len(a) == 0


class TestActivation:
    def test_disabled_by_default(self):
        assert obs.ACTIVE is None
        assert obs.active() is None

    def test_collecting_installs_and_restores(self):
        assert obs.ACTIVE is None
        with obs.collecting() as reg:
            assert obs.ACTIVE is reg
            reg.counter("c").inc()
        assert obs.ACTIVE is None
        assert reg.counter("c").value == 1

    def test_collecting_nests(self):
        with obs.collecting() as outer:
            with obs.collecting() as inner:
                assert obs.ACTIVE is inner
            assert obs.ACTIVE is outer

    def test_collecting_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.collecting():
                raise RuntimeError("boom")
        assert obs.ACTIVE is None
