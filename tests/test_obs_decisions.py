"""Tests for scheduler decision traces: record, replay, explain."""

import json

import pytest

from repro.check import check_decision_trace
from repro.config import STANDARD_MACHINES
from repro.obs.decisions import (
    DECISION_TRACE_SCHEMA,
    DecisionTraceRecorder,
    QuantumRecord,
    ReplayError,
    apply_moves,
    decompose_swaps,
    format_trace,
    read_trace,
    replay_trace,
    write_trace,
)
from repro.sched.constrained import ConstrainedReliabilityScheduler
from repro.sim.experiment import make_scheduler
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark

MIX = ("soplex", "milc", "namd", "povray")


def record_run(scheduler_name="reliability", instructions=400_000):
    machine = STANDARD_MACHINES["2B2S"]()
    profiles = [benchmark(n).scaled(instructions) for n in MIX]
    if scheduler_name == "constrained":
        scheduler = ConstrainedReliabilityScheduler(
            machine, len(profiles), max_stp_loss=0.1
        )
    else:
        scheduler = make_scheduler(scheduler_name, machine, len(profiles), 0)
    scheduler.recorder = DecisionTraceRecorder()
    MulticoreSimulation(machine, profiles, scheduler).run()
    return scheduler


class TestDecompose:
    def test_identity_has_no_moves(self):
        assert decompose_swaps((0, 1, 2), (0, 1, 2)) == ()

    def test_moves_reproduce_target(self):
        before, after = (0, 1, 2, 3), (3, 2, 1, 0)
        moves = decompose_swaps(before, after)
        current = list(before)
        for a, b in moves:
            current[a], current[b] = current[b], current[a]
        assert tuple(current) == after

    def test_rebind_to_free_core(self):
        # A spare-core machine can move an app onto a core nobody held;
        # that decomposes to a rebind move, not a swap.
        moves = decompose_swaps((0, 1), (0, 2))
        assert moves == ((-2, 2),)
        assert apply_moves((0, 1), moves) == (0, 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReplayError):
            decompose_swaps((0, 1), (0, 1, 2))


class TestRecordedRuns:
    @pytest.mark.parametrize(
        "name", ["reliability", "performance", "constrained"]
    )
    def test_replay_reproduces_final_assignment(self, name):
        scheduler = record_run(name)
        records = scheduler.recorder.records
        assert records, "run produced no quantum records"
        assert replay_trace(records) == tuple(scheduler._assignment.core_of)

    def test_accepted_swaps_clear_threshold(self):
        scheduler = record_run(instructions=5_000_000)
        candidates = [
            c
            for record in scheduler.recorder.records
            for c in record.candidates
        ]
        assert candidates, "optimizer weighed no swap candidates"
        for cand in candidates:
            if cand.accepted and not cand.forced:
                assert cand.delta_total < -cand.threshold
            elif not cand.accepted:
                assert cand.delta_total >= -cand.threshold

    def test_phases_progress_from_sampling(self):
        records = record_run().recorder.records
        assert records[0].phase == "initial_sampling"
        assert all(
            r.phase in DECISION_TRACE_SCHEMA["phases"] for r in records
        )

    def test_invariant_holds_on_real_trace(self):
        records = record_run().recorder.records
        report = check_decision_trace(records)
        assert report.ok, report.format()
        assert report.checked == ("decision_trace_consistency",)

    def test_invariant_rejects_tampered_trace(self):
        records = list(record_run().recorder.records)
        bad = records[0]
        records[0] = QuantumRecord.from_dict(
            {**bad.to_dict(), "after": list(bad.after[::-1])}
        )
        report = check_decision_trace(records)
        assert not report.ok

    def test_jsonl_round_trip(self, tmp_path):
        records = record_run().recorder.records
        path = tmp_path / "trace.jsonl"
        write_trace(records, path)
        assert read_trace(path) == records

    def test_format_trace_mentions_decisions(self):
        records = record_run(instructions=5_000_000).recorder.records
        text = format_trace(records, max_quanta=10)
        assert "initial_sampling" in text
        assert "swap app" in text or "reassign" in text


class TestReplayErrors:
    def test_empty_trace(self):
        with pytest.raises(ReplayError):
            replay_trace([])

    def test_broken_chain(self):
        records = record_run().recorder.records
        if len(records) < 2:
            pytest.skip("need two quanta")
        tampered = [
            records[0],
            QuantumRecord.from_dict(
                {**records[1].to_dict(), "before": [99] * len(records[1].before)}
            ),
        ]
        with pytest.raises(ReplayError, match="chain"):
            replay_trace(tampered)


class TestSchema:
    def test_schema_matches_fixture(self):
        from pathlib import Path

        fixture = Path(__file__).parent / "fixtures" / "decision_trace_schema.json"
        frozen = json.loads(fixture.read_text())
        assert frozen == json.loads(json.dumps(DECISION_TRACE_SCHEMA)), (
            "decision-trace schema drifted; regenerate "
            "tests/fixtures/decision_trace_schema.json deliberately "
            "(repro explain --schema)"
        )

    def test_schema_covers_dataclass_fields(self):
        assert set(DECISION_TRACE_SCHEMA["quantum_record"]) == {
            f for f in QuantumRecord.__dataclass_fields__
        }
