"""Tests for reliability metrics, including the Table 1 examples."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.reliability import (
    ApplicationReliability,
    avf,
    mttf,
    soft_error_rate,
    sser,
    system_ser,
    weighted_ser,
)


class TestEquations:
    def test_ser_equation1(self):
        # 100 ACE-bit-seconds over 10 seconds at IFR 1e-6
        assert soft_error_rate(100.0, 10.0, ifr=1e-6) == pytest.approx(1e-5)

    def test_wser_equation2_time_cancels(self):
        # wSER depends only on ABC and the reference time.
        assert weighted_ser(100.0, 10.0, ifr=1.0) == pytest.approx(10.0)

    def test_sser_equation3_sums(self):
        assert system_ser([10.0, 20.0], [1.0, 2.0], ifr=1.0) == pytest.approx(
            10.0 + 10.0
        )

    def test_system_ser_length_mismatch(self):
        with pytest.raises(ValueError):
            system_ser([1.0], [1.0, 2.0])

    def test_nonpositive_time_rejected(self):
        with pytest.raises(ValueError):
            soft_error_rate(1.0, 0.0)
        with pytest.raises(ValueError):
            weighted_ser(1.0, -1.0)


class TestTable1Examples:
    """The paper's illustrative SSER examples, reproduced exactly."""

    def _app(self, ser, slowdown, ref=1.0):
        # SER and slowdown determine ABC: ABC = SER * T, T = slowdown * ref.
        time = slowdown * ref
        return ApplicationReliability(
            name="x", abc=ser * time, time_seconds=time,
            reference_time_seconds=ref,
        )

    def test_example_a_homogeneous_no_slowdown(self):
        apps = [self._app(1.0, 1.0), self._app(1.0, 1.0)]
        assert sser(apps, ifr=1.0) == pytest.approx(2.0)

    def test_example_b_one_app_slows_down(self):
        apps = [self._app(1.0, 2.0), self._app(1.0, 1.0)]
        assert sser(apps, ifr=1.0) == pytest.approx(3.0)
        assert apps[0].wser_at(1.0) == pytest.approx(2.0)

    def test_example_c_heterogeneous(self):
        # Small core: SER 1/8, slowdown 4 -> wSER 0.5.
        apps = [self._app(1.0 / 8.0, 4.0), self._app(1.0, 1.0)]
        assert apps[0].wser_at(1.0) == pytest.approx(0.5)
        assert sser(apps, ifr=1.0) == pytest.approx(1.5)


class TestApplicationReliability:
    def test_slowdown_and_ser(self):
        app = ApplicationReliability("a", abc=8.0, time_seconds=4.0,
                                     reference_time_seconds=2.0)
        assert app.slowdown == pytest.approx(2.0)
        assert app.ser == pytest.approx(8.0 / 4.0 * 1e-25)

    def test_wser_equals_ser_times_slowdown(self):
        app = ApplicationReliability("a", abc=8.0, time_seconds=4.0,
                                     reference_time_seconds=2.0)
        assert app.wser == pytest.approx(app.ser * app.slowdown)


class TestAvfMttf:
    def test_avf(self):
        assert avf(500.0, 100, 10.0) == pytest.approx(0.5)

    def test_avf_rejects_zero(self):
        with pytest.raises(ValueError):
            avf(1.0, 0, 1.0)

    def test_mttf_reciprocal(self):
        assert mttf(0.01) == pytest.approx(100.0)

    def test_mttf_zero_ser_is_infinite(self):
        # Fully-protected apps make zero wSER reachable: never fails.
        import math

        assert mttf(0.0) == math.inf

    def test_mttf_rejects_negative(self):
        with pytest.raises(ValueError):
            mttf(-1e-9)

    def test_sser_of_empty_mix_is_zero(self):
        assert sser([]) == 0.0
        import math

        assert mttf(sser([])) == math.inf


class TestProperties:
    @given(
        abc=st.floats(1e-6, 1e6),
        tref=st.floats(1e-6, 1e6),
        ifr=st.floats(1e-30, 1.0),
    )
    def test_wser_linear_in_ifr(self, abc, tref, ifr):
        assert weighted_ser(abc, tref, ifr) == pytest.approx(
            ifr * weighted_ser(abc, tref, 1.0)
        )

    @given(
        abcs=st.lists(st.floats(1e-6, 1e3), min_size=1, max_size=8),
        ref=st.floats(0.1, 10.0),
    )
    def test_sser_monotone_in_abc(self, abcs, ref):
        refs = [ref] * len(abcs)
        base = system_ser(abcs, refs, ifr=1.0)
        bumped = system_ser([a * 2 for a in abcs], refs, ifr=1.0)
        assert bumped >= base

    @given(
        abc=st.floats(1e-3, 1e3),
        t=st.floats(1e-3, 1e3),
        tref=st.floats(1e-3, 1e3),
    )
    def test_wser_equals_ser_times_slowdown_identity(self, abc, t, tref):
        """Equation 2: wSER = SER * slowdown."""
        ser = soft_error_rate(abc, t, ifr=1.0)
        slowdown = t / tref
        assert weighted_ser(abc, tref, ifr=1.0) == pytest.approx(
            ser * slowdown, rel=1e-9
        )

    @given(st.lists(st.tuples(st.floats(1e-3, 1e3), st.floats(1e-3, 1e3)),
                    min_size=1, max_size=6))
    def test_sser_permutation_invariant(self, pairs):
        abcs = [p[0] for p in pairs]
        refs = [p[1] for p in pairs]
        forward = system_ser(abcs, refs, ifr=1.0)
        backward = system_ser(abcs[::-1], refs[::-1], ifr=1.0)
        assert forward == pytest.approx(backward, rel=1e-9)

    @given(
        pairs=st.lists(
            st.tuples(st.floats(1e-3, 1e3), st.floats(1e-3, 1e3)),
            min_size=2, max_size=6,
        ),
        seed=st.integers(0, 2**16),
    )
    def test_sser_invariant_under_any_permutation(self, pairs, seed):
        """SSER is a set property of the mix, not an ordering."""
        import random

        shuffled = pairs[:]
        random.Random(seed).shuffle(shuffled)
        original = system_ser([p[0] for p in pairs],
                              [p[1] for p in pairs], ifr=1.0)
        permuted = system_ser([p[0] for p in shuffled],
                              [p[1] for p in shuffled], ifr=1.0)
        assert permuted == pytest.approx(original, rel=1e-9)

    @given(
        pairs=st.lists(
            st.tuples(st.floats(1e-3, 1e3), st.floats(1e-3, 1e3)),
            min_size=1, max_size=6,
        ),
        ifr=st.floats(1e-30, 1.0),
    )
    def test_system_ser_linear_in_ifr(self, pairs, ifr):
        abcs = [p[0] for p in pairs]
        refs = [p[1] for p in pairs]
        assert system_ser(abcs, refs, ifr) == pytest.approx(
            ifr * system_ser(abcs, refs, ifr=1.0), rel=1e-9
        )

    @given(st.lists(st.tuples(st.floats(1e-3, 1e3), st.floats(1e-3, 1e3)),
                    min_size=1, max_size=6))
    def test_sser_equals_raw_ser_sum_at_reference_time(self, pairs):
        """With no slowdown (T == T_ref for every app), Equation 3
        degenerates to the sum of raw Equation 1 SERs."""
        apps = [
            ApplicationReliability(
                name=f"a{i}", abc=abc, time_seconds=t,
                reference_time_seconds=t,
            )
            for i, (abc, t) in enumerate(pairs)
        ]
        assert sser(apps, ifr=1.0) == pytest.approx(
            sum(soft_error_rate(a.abc, a.time_seconds, ifr=1.0)
                for a in apps),
            rel=1e-9,
        )
        for app in apps:
            assert app.wser == pytest.approx(app.ser, rel=1e-9)
