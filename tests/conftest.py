"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import (
    MachineConfig,
    MemoryConfig,
    big_core_config,
    machine_2b2s,
    small_core_config,
)


@pytest.fixture
def big_core():
    return big_core_config()


@pytest.fixture
def small_core():
    return small_core_config()


@pytest.fixture
def memory():
    return MemoryConfig()


@pytest.fixture
def machine() -> MachineConfig:
    return machine_2b2s()


@pytest.fixture
def fast_machine() -> MachineConfig:
    """A 2B2S machine with a shorter quantum for quick simulations."""
    return machine_2b2s()
