"""Tests for the experiment harness."""

import pytest

from repro.config import machine_2b2s
from repro.sched.performance import PerformanceScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.reliability import ReliabilityScheduler
from repro.sim.experiment import (
    average_ratio,
    geomean_ratio,
    make_scheduler,
    run_workload,
    sweep,
)
from repro.workloads.mixes import WorkloadMix


class TestMakeScheduler:
    def test_by_name(self, machine):
        assert isinstance(make_scheduler("random", machine, 4), RandomScheduler)
        assert isinstance(
            make_scheduler("performance", machine, 4), PerformanceScheduler
        )
        assert isinstance(
            make_scheduler("reliability", machine, 4), ReliabilityScheduler
        )

    def test_unknown_rejected(self, machine):
        with pytest.raises(ValueError):
            make_scheduler("fifo", machine, 4)


class TestRunWorkload:
    def test_accepts_mix_or_names(self, machine):
        names = ("povray", "milc", "gobmk", "bzip2")
        mix = WorkloadMix("MHLM", names)
        by_mix = run_workload(machine, mix, "random",
                              instructions=2_000_000, seed=1)
        by_names = run_workload(machine, names, "random",
                                instructions=2_000_000, seed=1)
        assert by_mix.sser == pytest.approx(by_names.sser, rel=1e-9)
        assert by_mix.scheduler_name == "random"

    def test_instruction_override(self, machine):
        result = run_workload(
            machine, ("povray", "milc", "gobmk", "bzip2"), "random",
            instructions=1_000_000,
        )
        assert all(a.completed_runs >= 1 for a in result.apps)


class TestSweep:
    def test_sweep_shape(self, machine):
        workloads = [
            WorkloadMix("MH", ("povray", "milc")),
            WorkloadMix("LM", ("gobmk", "bzip2")),
        ]
        from repro.config import machine_1b1s
        m = machine_1b1s()
        results = sweep(m, workloads, ("random", "reliability"),
                        instructions=1_000_000)
        assert set(results) == {"random", "reliability"}
        assert len(results["random"]) == 2
        assert results["reliability"][0].scheduler_name == "reliability"


class TestRatios:
    def test_geomean(self):
        assert geomean_ratio([4.0, 1.0], [1.0, 4.0]) == pytest.approx(1.0)
        assert geomean_ratio([2.0], [1.0]) == pytest.approx(2.0)

    def test_average(self):
        assert average_ratio([2.0, 4.0], [1.0, 1.0]) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            geomean_ratio([], [])
        with pytest.raises(ValueError):
            geomean_ratio([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            geomean_ratio([0.0], [1.0])
