"""Equivalence tests for the batched cache/hierarchy access paths."""

import numpy as np
import pytest

from repro.config.machines import CacheLevelConfig, MemoryConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.hierarchy import CacheHierarchy


def _tiny_config(sets=4, ways=2, line=64):
    return CacheLevelConfig(
        size_bytes=sets * ways * line,
        associativity=ways,
        latency_cycles=1,
        line_bytes=line,
    )


def _state(cache):
    return (
        cache.stats.accesses,
        cache.stats.misses,
        cache._clock,
        [dict(s) for s in cache._sets],
    )


def _hierarchy_state(h):
    return (
        [_state(c) for c in (h.l1d, h.l2, h.l3)],
        h.l3_accesses,
        h.dram_accesses,
    )


def _random_addresses(rng, n, span):
    return rng.integers(0, span, size=n, dtype=np.int64)


class TestAccessBatchEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_batch_matches_scalar_sequence(self, seed):
        rng = np.random.default_rng(seed)
        # Small span so the tiny cache sees hits, misses and evictions.
        addresses = _random_addresses(rng, 500, 4 * 2 * 64 * 3)
        scalar = SetAssociativeCache(_tiny_config(), "scalar")
        batch = SetAssociativeCache(_tiny_config(), "batch")
        expected = np.array(
            [scalar.access(int(a)) for a in addresses], dtype=bool
        )
        hits = batch.access_batch(addresses)
        assert np.array_equal(hits, expected)
        assert _state(batch) == _state(scalar)

    def test_batch_resumes_from_scalar_state(self):
        rng = np.random.default_rng(3)
        addresses = _random_addresses(rng, 300, 2000)
        scalar = SetAssociativeCache(_tiny_config(), "scalar")
        mixed = SetAssociativeCache(_tiny_config(), "mixed")
        for a in addresses[:100]:
            scalar.access(int(a))
            mixed.access(int(a))
        expected = np.array(
            [scalar.access(int(a)) for a in addresses[100:]], dtype=bool
        )
        assert np.array_equal(mixed.access_batch(addresses[100:]), expected)
        assert _state(mixed) == _state(scalar)

    def test_empty_batch_is_a_no_op(self):
        cache = SetAssociativeCache(_tiny_config(), "c")
        before = _state(cache)
        hits = cache.access_batch(np.zeros(0, dtype=np.int64))
        assert hits.shape == (0,) and hits.dtype == bool
        assert _state(cache) == before


class TestHierarchyBatchEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_batch_matches_scalar_walk(self, seed):
        rng = np.random.default_rng(seed)
        addresses = _random_addresses(rng, 800, 1 << 22)
        scalar = CacheHierarchy(MemoryConfig(), frequency_ghz=2.66)
        batch = CacheHierarchy(MemoryConfig(), frequency_ghz=2.66)
        outcomes = [scalar.access_data(int(a)) for a in addresses]
        latencies, levels = batch.access_data_batch(addresses)
        names = ("l1", "l2", "l3", "dram")
        assert [names[level] for level in levels] == [
            o.level for o in outcomes
        ]
        assert latencies.tolist() == [o.latency_cycles for o in outcomes]
        assert _hierarchy_state(batch) == _hierarchy_state(scalar)

    def test_rollback_restores_exact_prefix_state(self):
        rng = np.random.default_rng(9)
        addresses = _random_addresses(rng, 600, 1 << 20)
        for keep in (0, 1, 137, 599, 600):
            prefix_only = CacheHierarchy(MemoryConfig(), frequency_ghz=2.66)
            prefix_only.access_data_batch(addresses[:keep])
            rolled = CacheHierarchy(MemoryConfig(), frequency_ghz=2.66)
            journal = []
            _, levels = rolled.access_data_batch(addresses, journal)
            rolled.rollback_data(journal, levels, keep)
            assert _hierarchy_state(rolled) == _hierarchy_state(
                prefix_only
            ), keep
            assert len(journal) == keep

    def test_rollback_decrements_obs_counters(self):
        # Regression: rollback_data undid the cache statistics but
        # left the observability counters at their overcounted values,
        # so `repro stats` disagreed with the simulation's own figures
        # whenever a window kernel rolled back past a budget break.
        from repro.obs import metrics as obs_metrics

        rng = np.random.default_rng(5)
        addresses = _random_addresses(rng, 500, 1 << 20)
        keep = 123

        with obs_metrics.collecting() as straight_reg:
            straight = CacheHierarchy(MemoryConfig(), frequency_ghz=2.66)
            straight.access_data_batch(addresses[:keep])
        with obs_metrics.collecting() as rolled_reg:
            rolled = CacheHierarchy(MemoryConfig(), frequency_ghz=2.66)
            journal = []
            _, levels = rolled.access_data_batch(addresses, journal)
            rolled.rollback_data(journal, levels, keep)
        assert _hierarchy_state(rolled) == _hierarchy_state(straight)
        assert rolled_reg.snapshot() == straight_reg.snapshot()
        for level in ("l1", "l2", "l3", "dram"):
            value = rolled_reg.counter("cache.accesses", level=level).value
            assert value >= 0

    def test_rollback_then_continue_matches_straight_run(self):
        rng = np.random.default_rng(21)
        addresses = _random_addresses(rng, 400, 1 << 19)
        straight = CacheHierarchy(MemoryConfig(), frequency_ghz=2.66)
        straight.access_data_batch(addresses[:150])
        straight.access_data_batch(addresses[150:])
        replayed = CacheHierarchy(MemoryConfig(), frequency_ghz=2.66)
        journal = []
        _, levels = replayed.access_data_batch(addresses[:250], journal)
        replayed.rollback_data(journal, levels, 150)
        replayed.access_data_batch(addresses[150:])
        assert _hierarchy_state(replayed) == _hierarchy_state(straight)
