"""Tests for the golden regression corpus."""

import json

import pytest

from repro.check import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_PIPELINES,
    compare_goldens,
    regenerate_goldens,
)
from repro.check.golden import GOLDEN_FORMAT_VERSION, golden_path


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    directory = tmp_path_factory.mktemp("golden")
    regenerate_goldens(directory)
    return directory


def _edit(directory, name, mutate):
    path = golden_path(directory, name)
    doc = json.loads(path.read_text())
    mutate(doc)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


class TestRegenerate:
    def test_writes_every_pipeline(self, corpus):
        for name in GOLDEN_PIPELINES:
            path = golden_path(corpus, name)
            assert path.exists()
            doc = json.loads(path.read_text())
            assert doc["format_version"] == GOLDEN_FORMAT_VERSION
            assert doc["pipeline"] == name
            assert doc["payload"]

    def test_regeneration_is_deterministic(self, corpus, tmp_path):
        regenerate_goldens(tmp_path)
        for name in GOLDEN_PIPELINES:
            assert golden_path(tmp_path, name).read_text() == \
                golden_path(corpus, name).read_text()

    def test_subset_regeneration(self, tmp_path):
        written = regenerate_goldens(tmp_path, names=["oracle_fig03"])
        assert [p.name for p in written] == ["oracle_fig03.json"]


class TestCompare:
    def test_fresh_corpus_matches(self, corpus):
        report = compare_goldens(corpus)
        assert report.ok and not report.violations, report.format()
        assert "golden_match" in report.checked
        # Every run replayed along the way was invariant-checked too.
        assert "wser_definition" in report.checked

    def test_perturbed_field_fails_naming_the_field(self, corpus, tmp_path):
        regenerate_goldens(tmp_path)

        def bump(doc):
            app = doc["payload"]["runs"]["reliability"][0]["apps"][0]
            app["wser"] *= 1.01

        _edit(tmp_path, "fig06_1b1s", bump)
        report = compare_goldens(tmp_path, names=["fig06_1b1s"])
        assert not report.ok
        assert report.invariant_names() == ("golden_match",)
        text = report.format()
        assert "runs.reliability[0].apps[0].wser" in text

    def test_missing_field_reported(self, corpus, tmp_path):
        regenerate_goldens(tmp_path, names=["oracle_fig03"])
        _edit(tmp_path, "oracle_fig03",
              lambda doc: doc["payload"].pop("ser_gain"))
        report = compare_goldens(tmp_path, names=["oracle_fig03"])
        assert not report.ok
        assert "unexpected field oracle_fig03.ser_gain" in report.format()

    def test_extra_golden_field_reported(self, corpus, tmp_path):
        regenerate_goldens(tmp_path, names=["oracle_fig03"])
        _edit(tmp_path, "oracle_fig03",
              lambda doc: doc["payload"].__setitem__("bogus", 1))
        report = compare_goldens(tmp_path, names=["oracle_fig03"])
        assert not report.ok
        assert "oracle_fig03.bogus missing" in report.format()

    def test_changed_int_reported_exactly(self, corpus, tmp_path):
        regenerate_goldens(tmp_path, names=["oracle_fig03"])

        def flip(doc):
            doc["payload"]["best_sser_big_apps"][0] += 1

        _edit(tmp_path, "oracle_fig03", flip)
        report = compare_goldens(tmp_path, names=["oracle_fig03"])
        assert not report.ok
        assert "best_sser_big_apps[0]" in report.format()

    def test_within_tolerance_drift_accepted(self, corpus, tmp_path):
        regenerate_goldens(tmp_path, names=["oracle_fig03"])

        def nudge(doc):
            doc["payload"]["ser_gain"] *= 1.0 + 1e-9

        _edit(tmp_path, "oracle_fig03", nudge)
        report = compare_goldens(tmp_path, names=["oracle_fig03"])
        assert report.ok

    def test_missing_file_advises_regeneration(self, tmp_path):
        report = compare_goldens(tmp_path, names=["fig06_1b1s"])
        assert not report.ok
        assert "--update-goldens" in report.format()


class TestCheckedInCorpus:
    def test_repository_corpus_is_current(self):
        """The committed corpus must match a replay on this tree."""
        from pathlib import Path

        directory = Path(__file__).parent / "golden"
        assert directory.name == DEFAULT_GOLDEN_DIR.name
        report = compare_goldens(directory)
        assert report.ok, report.format()
