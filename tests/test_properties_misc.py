"""Property-based tests for analysis and serialization utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.hardening import HardeningOption, greedy_plan
from repro.config.structures import StructureKind
from repro.sim.results import AppRunRecord, RunResult
from repro.sim.serialize import run_result_from_dict, run_result_to_dict

_KINDS = list(StructureKind)


@st.composite
def option_lists(draw):
    n = draw(st.integers(1, len(_KINDS)))
    kinds = _KINDS[:n]
    options = [
        HardeningOption(
            kind=kind,
            capacity_bits=draw(st.integers(100, 50_000)),
            ace_share=draw(st.floats(0.01, 1.0)),
            avf_reduction=draw(st.floats(0.001, 0.2)),
        )
        for kind in kinds
    ]
    return sorted(options, key=lambda o: o.efficiency, reverse=True)


class TestHardeningProperties:
    @settings(max_examples=40, deadline=None)
    @given(option_lists(), st.integers(0, 200_000))
    def test_plan_respects_budget_and_accounting(self, options, budget):
        plan = greedy_plan(budget, options)
        assert plan.protected_bits <= budget
        assert 0 <= plan.avf_after <= plan.avf_before + 1e-12
        chosen_reduction = sum(
            o.avf_reduction for o in options if o.kind in plan.chosen
        )
        assert plan.avf_reduction == pytest.approx(chosen_reduction)

    @settings(max_examples=30, deadline=None)
    @given(option_lists(), st.integers(0, 100_000), st.integers(0, 100_000))
    def test_plan_monotone_in_budget(self, options, a, b):
        lo, hi = sorted((a, b))
        assert (
            greedy_plan(lo, options).avf_reduction
            <= greedy_plan(hi, options).avf_reduction + 1e-12
        )


@st.composite
def run_results(draw):
    apps = [
        AppRunRecord(
            name=f"app{i}",
            instructions=draw(st.integers(1, 10**9)),
            time_seconds=draw(st.floats(1e-4, 10.0)),
            abc_seconds=draw(st.floats(0.0, 1e3)),
            reference_time_seconds=draw(st.floats(1e-4, 10.0)),
            migrations=draw(st.integers(0, 1000)),
        )
        for i in range(draw(st.integers(1, 6)))
    ]
    return RunResult(
        machine_name="2B2S",
        scheduler_name="any",
        quanta=draw(st.integers(1, 10**6)),
        duration_seconds=draw(st.floats(1e-4, 10.0)),
        apps=apps,
    )


class TestSerializationProperties:
    @settings(max_examples=40, deadline=None)
    @given(run_results())
    def test_round_trip_exact(self, result):
        restored = run_result_from_dict(run_result_to_dict(result))
        assert restored.sser == pytest.approx(result.sser, rel=1e-12)
        assert restored.stp == pytest.approx(result.stp, rel=1e-12)
        assert restored.quanta == result.quanta
        assert [a.name for a in restored.apps] == [
            a.name for a in result.apps
        ]
