"""Tests for ASCII chart rendering."""

import pytest

from repro.report.charts import (
    bar_chart,
    grouped_bar_chart,
    histogram,
    series_plot,
)


class TestBarChart:
    def test_bar_lengths_proportional(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 20

    def test_custom_scale(self):
        chart = bar_chart({"a": 1.0}, width=10, max_value=2.0)
        assert chart.count("#") == 5

    def test_values_clipped_at_scale(self):
        chart = bar_chart({"a": 5.0}, width=10, max_value=1.0)
        assert chart.count("#") == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_all_zero_values(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart and "b" in chart


class TestGroupedBarChart:
    def test_groups_and_legend(self):
        chart = grouped_bar_chart({
            "HHLL": {"random": 1.0, "rel": 0.6},
            "LLLL": {"random": 1.0, "rel": 0.9},
        })
        assert "HHLL:" in chart
        assert "legend:" in chart
        assert "#=random" in chart

    def test_missing_series_in_group_skipped(self):
        chart = grouped_bar_chart({
            "g1": {"a": 1.0},
            "g2": {"a": 1.0, "b": 0.5},
        })
        assert chart.count("b ") >= 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})


class TestSeriesPlot:
    def test_markers_present(self):
        plot = series_plot({"x": [0.0, 0.5, 1.0], "y": [1.0, 0.5, 0.0]},
                           width=30, height=8)
        assert "*" in plot and "o" in plot
        assert "legend: *=x  o=y" in plot

    def test_constant_series(self):
        plot = series_plot({"flat": [2.0, 2.0, 2.0]})
        assert "*" in plot

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_plot({})
        with pytest.raises(ValueError):
            series_plot({"x": []})


class TestHistogram:
    def test_counts_sum(self):
        text = histogram([1, 2, 2, 3, 3, 3], bins=3, width=10)
        lines = text.splitlines()
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert sum(counts) == 6

    def test_single_value(self):
        text = histogram([5.0], bins=4)
        assert "1" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([])
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)
