"""Tests for the AVF stressmark search."""

import pytest

from repro.workloads.spec2006 import SUITE, big_core_avf
from repro.workloads.stressmark import search_stressmark


@pytest.fixture(scope="module")
def stressmark():
    return search_stressmark(iterations=250, seed=3)


class TestStressmark:
    def test_beats_every_suite_benchmark(self, stressmark):
        """A stressmark bounds the suite's AVF from above."""
        suite_max = max(big_core_avf(p) for p in SUITE.values())
        assert stressmark.avf > suite_max

    def test_search_improves_on_start(self):
        short = search_stressmark(iterations=1, seed=0)
        long = search_stressmark(iterations=300, seed=0)
        assert long.avf >= short.avf

    def test_deterministic(self):
        a = search_stressmark(iterations=60, seed=9)
        b = search_stressmark(iterations=60, seed=9)
        assert a.avf == pytest.approx(b.avf)
        assert a.characteristics == b.characteristics

    def test_result_is_valid_characteristics(self, stressmark):
        chars = stressmark.characteristics
        assert chars.l1d_mpki >= chars.l2_mpki >= chars.l3_mpki
        assert chars.mlp >= 1.0
        assert 0 <= chars.branch_depends_on_load_prob <= 1

    def test_profile_packaging(self, stressmark):
        profile = stressmark.profile(instructions=1_000_000)
        assert profile.instructions == 1_000_000
        assert profile.name == "avf-stressmark"
        assert big_core_avf(profile) == pytest.approx(stressmark.avf, rel=1e-6)

    def test_avf_below_one(self, stressmark):
        assert stressmark.avf < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            search_stressmark(iterations=0)
