"""End-to-end integration tests: the paper's headline claims in shape.

These run the full pipeline (workload generation -> mechanistic cores
-> interference -> schedulers -> SSER/STP) at reduced scale (tens of
millions of instructions instead of one billion), so the asserted
bounds are intentionally looser than the paper's full-scale numbers;
the benchmarks in `benchmarks/` reproduce the full-scale figures.
"""

import statistics

import pytest

from repro.ace.counters import AceCounterMode
from repro.config import machine_1b3s, machine_2b2s, machine_3b1s
from repro.power import PowerModel
from repro.sched.oracle import best_sser_schedule, best_stp_schedule
from repro.sim.experiment import run_workload
from repro.sim.isolated import isolated_stats
from repro.sim.multicore import default_models
from repro.workloads.mixes import generate_workloads
from repro.workloads.spec2006 import benchmark

SCALE = 50_000_000

# A category-diverse sample of the 36 four-program mixes (indices into
# the canonical workload list: one per category).
SAMPLE = [0, 7, 13, 19, 25, 31]


@pytest.fixture(scope="module")
def four_program_results():
    machine = machine_2b2s()
    workloads = generate_workloads(4)
    results = {}
    for idx in SAMPLE:
        mix = workloads[idx]
        results[mix] = {
            name: run_workload(machine, mix, name, instructions=SCALE, seed=idx)
            for name in ("random", "performance", "reliability")
        }
    return results


class TestHeadlineClaims:
    def test_reliability_scheduler_reduces_sser_vs_random(
        self, four_program_results
    ):
        ratios = [
            rr["reliability"].sser / rr["random"].sser
            for rr in four_program_results.values()
        ]
        assert statistics.mean(ratios) < 0.90
        assert min(ratios) < 0.75  # the HHLL-like mixes gain a lot

    def test_reliability_beats_performance_on_sser_on_average(
        self, four_program_results
    ):
        ratios = [
            rr["reliability"].sser / rr["performance"].sser
            for rr in four_program_results.values()
        ]
        assert statistics.mean(ratios) < 0.95

    def test_performance_scheduler_inconsistent_on_sser(
        self, four_program_results
    ):
        """Paper Section 6.1: perf-opt sometimes makes reliability
        worse than random."""
        ratios = [
            rr["performance"].sser / rr["random"].sser
            for rr in four_program_results.values()
        ]
        assert statistics.mean(ratios) < 1.0

    def test_reliability_stp_close_to_random(self, four_program_results):
        ratios = [
            rr["reliability"].stp / rr["random"].stp
            for rr in four_program_results.values()
        ]
        assert 0.90 < statistics.mean(ratios) < 1.10

    def test_reliability_stp_cost_vs_performance_bounded(
        self, four_program_results
    ):
        ratios = [
            rr["reliability"].stp / rr["performance"].stp
            for rr in four_program_results.values()
        ]
        assert statistics.mean(ratios) > 0.85  # paper: -6.3% average

    def test_hhll_benefits_most(self, four_program_results):
        by_cat = {
            mix.category: rr["reliability"].sser / rr["random"].sser
            for mix, rr in four_program_results.items()
        }
        assert by_cat["HHLL"] == min(by_cat.values())


class TestOracle:
    def test_oracle_tradeoff(self):
        """Figure 3's shape: the SER gain of the reliability oracle
        dwarfs its STP loss."""
        machine = machine_2b2s()
        models = default_models(machine)
        mix = generate_workloads(4)[13]  # HHLL
        stats = [
            isolated_stats(benchmark(n).scaled(SCALE), models["big"],
                           models["small"])
            for n in mix.benchmarks
        ]
        sser_best = best_sser_schedule(stats, machine)
        stp_best = best_stp_schedule(stats, machine)
        ser_gain = 1.0 - sser_best.sser / stp_best.sser
        stp_loss = 1.0 - sser_best.stp / stp_best.stp
        assert ser_gain > stp_loss
        assert ser_gain > 0.10


class TestRobustness:
    def test_rob_only_counter_close_to_full(self):
        machine = machine_2b2s()
        mix = generate_workloads(4)[13]
        full = run_workload(machine, mix, "reliability",
                            instructions=SCALE,
                            counter_mode=AceCounterMode.FULL)
        rob = run_workload(machine, mix, "reliability",
                           instructions=SCALE,
                           counter_mode=AceCounterMode.ROB_ONLY)
        assert rob.sser / full.sser == pytest.approx(1.0, abs=0.15)

    def test_symmetric_beats_highly_asymmetric(self):
        """Figure 8: 2B2S offers more scheduling freedom than 3B1S."""
        mix = generate_workloads(4)[13]
        reductions = {}
        for machine in (machine_2b2s(), machine_3b1s()):
            rnd = run_workload(machine, mix, "random", instructions=SCALE)
            rel = run_workload(machine, mix, "reliability", instructions=SCALE)
            reductions[machine.name] = 1.0 - rel.sser / rnd.sser
        assert reductions["2B2S"] > reductions["3B1S"]

    def test_low_frequency_small_core_still_helps(self):
        """Figure 9: the scheduler is robust to small-core frequency."""
        machine = machine_2b2s().with_small_frequency(1.33)
        mix = generate_workloads(4)[13]
        rnd = run_workload(machine, mix, "random", instructions=SCALE)
        rel = run_workload(machine, mix, "reliability", instructions=SCALE)
        assert rel.sser < rnd.sser * 0.9

    def test_power_reduction_vs_performance(self, four_program_results):
        """Figure 12's direction: rel-opt consumes no more chip power
        than perf-opt on average."""
        pm = PowerModel(machine_2b2s())
        ratios = [
            pm.run_power(rr["reliability"]).chip_watts
            / pm.run_power(rr["performance"]).chip_watts
            for rr in four_program_results.values()
        ]
        assert statistics.mean(ratios) < 1.01
