"""Tests for ABC stacks (Figure 5)."""

import pytest

from repro.ace.stacks import abc_stack, rob_core_correlation, rob_fraction
from repro.config import MemoryConfig, big_core_config
from repro.config.structures import StructureKind
from repro.cores.base import ISOLATED, QuantumResult
from repro.cores.mechanistic import MechanisticCoreModel
from repro.workloads.spec2006 import SUITE


def _suite_results():
    model = MechanisticCoreModel(big_core_config(), MemoryConfig())
    results = []
    for profile in SUITE.values():
        result = model.run_cycles(profile.scaled(1_000_000), 0, 500_000, ISOLATED)
        results.append(result)
    return results


class TestAbcStack:
    def test_fractions_sum_to_one(self):
        for result in _suite_results()[:5]:
            stack = abc_stack(result)
            assert sum(stack.values()) == pytest.approx(1.0)
            assert all(v >= 0 for v in stack.values())

    def test_rob_contributes_large_share(self):
        """Paper: the ROB contributes almost half of total occupancy."""
        fractions = [rob_fraction(r) for r in _suite_results()]
        mean = sum(fractions) / len(fractions)
        assert 0.3 < mean < 0.7

    def test_rob_core_correlation_high(self):
        """Paper: ROB ABC correlates with core ABC at 0.99."""
        assert rob_core_correlation(_suite_results()) > 0.95

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError):
            abc_stack(QuantumResult(instructions=0, cycles=1.0))

    def test_correlation_needs_two(self):
        with pytest.raises(ValueError):
            rob_core_correlation(_suite_results()[:1])

    def test_correlation_degenerate_inputs(self):
        same = QuantumResult(
            instructions=1, cycles=1.0,
            ace_bit_cycles={StructureKind.ROB: 1.0},
        )
        with pytest.raises(ValueError):
            rob_core_correlation([same, same])
