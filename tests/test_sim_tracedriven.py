"""Tests for the trace-driven multiprogram simulation path."""

import pytest

from repro.config import machine_1b1s, machine_2b2s
from repro.memory.cache import SetAssociativeCache
from repro.sim.tracedriven import (
    run_trace_workload,
    trace_applications,
    trace_driven_models,
)


class TestTraceDrivenModels:
    def test_l3_is_shared(self):
        models = trace_driven_models(machine_2b2s())
        assert models["big"]._shared_l3 is models["small"]._shared_l3
        assert isinstance(models["big"]._shared_l3, SetAssociativeCache)

    def test_separate_calls_get_separate_l3(self):
        a = trace_driven_models(machine_2b2s())
        b = trace_driven_models(machine_2b2s())
        assert a["big"]._shared_l3 is not b["big"]._shared_l3


class TestTraceApplications:
    def test_shapes_and_determinism(self):
        apps = trace_applications(("milc", "mcf"), 5000, seed=3)
        assert [a.name for a in apps] == ["milc", "mcf"]
        assert all(a.instructions == 5000 for a in apps)
        again = trace_applications(("milc", "mcf"), 5000, seed=3)
        assert (apps[0].trace.addresses == again[0].trace.addresses).all()

    def test_distinct_seeds_per_slot(self):
        apps = trace_applications(("milc", "milc"), 5000, seed=0)
        assert not (apps[0].trace.addresses == apps[1].trace.addresses).all()


@pytest.mark.slow
class TestEndToEnd:
    @pytest.fixture(scope="class")
    def results(self):
        machine = machine_1b1s()
        mix = ("milc", "gobmk")
        return {
            name: run_trace_workload(machine, mix, name,
                                     instructions=40_000, seed=2)
            for name in ("random", "reliability")
        }

    def test_runs_complete(self, results):
        for result in results.values():
            assert result.quanta > 20
            assert all(a.completed_runs >= 1 for a in result.apps)

    def test_metrics_sane(self, results):
        for result in results.values():
            assert result.sser > 0
            assert 0 < result.stp <= 2.05
            assert result.antt >= 0.95

    def test_reliability_no_worse_than_random(self, results):
        assert results["reliability"].sser <= results["random"].sser * 1.05

    def test_vulnerable_app_prefers_small_core(self, results):
        rel = results["reliability"]
        milc = rel.app("milc")
        gobmk = rel.app("gobmk")
        milc_big = milc.time_big_seconds / milc.time_seconds
        gobmk_big = gobmk.time_big_seconds / gobmk.time_seconds
        assert milc_big < gobmk_big
