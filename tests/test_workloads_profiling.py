"""Tests for trace phase profiling (the generator's inverse)."""

import numpy as np
import pytest

from repro.workloads.generator import generate_trace
from repro.workloads.profiling import (
    IntervalStats,
    measure_intervals,
    profile_trace,
)
from repro.workloads.spec2006 import benchmark


@pytest.fixture(scope="module")
def calculix_trace():
    return generate_trace(benchmark("calculix"), 80_000, seed=5)


class TestMeasureIntervals:
    def test_interval_count(self, calculix_trace):
        stats = measure_intervals(calculix_trace, interval=10_000)
        assert len(stats) == 8
        assert all(s.length == 10_000 for s in stats)

    def test_phase_change_visible(self, calculix_trace):
        """calculix's final 25 % has far more mispredicted branches."""
        stats = measure_intervals(calculix_trace, interval=10_000)
        early = np.mean([s.branch_mpki for s in stats[:5]])
        late = np.mean([s.branch_mpki for s in stats[-2:]])
        assert late > 3 * early

    def test_measured_mix_close_to_profile(self, calculix_trace):
        stats = measure_intervals(calculix_trace, interval=10_000)
        target = benchmark("calculix").phases[0][1].mix
        assert stats[0].mix.load == pytest.approx(target.load, abs=0.03)
        assert stats[0].mix.branch == pytest.approx(target.branch, abs=0.03)

    def test_miss_rates_ordered(self, calculix_trace):
        for s in measure_intervals(calculix_trace, interval=10_000):
            assert s.l1d_mpki >= s.l2_mpki >= s.l3_mpki >= 0

    def test_validation(self, calculix_trace):
        with pytest.raises(ValueError):
            measure_intervals(calculix_trace, interval=0)
        with pytest.raises(ValueError):
            measure_intervals(calculix_trace, interval=10_000_000)


class TestProfileTrace:
    def test_recovers_two_phases(self, calculix_trace):
        profile = profile_trace(calculix_trace, phases=2, interval=5_000)
        assert len(profile.phases) >= 2
        # The dominant early segment must be low-mispredict; the final
        # segment high-mispredict (calculix's signature).
        first = profile.phases[0][1]
        last = profile.phases[-1][1]
        assert last.branch_mpki > 3 * first.branch_mpki
        # The early region covers roughly 75 % of the profile.
        early_fraction = sum(
            frac for frac, chars in profile.phases
            if chars.branch_mpki < 4.0
        )
        assert early_fraction == pytest.approx(0.75, abs=0.15)

    def test_fraction_sum(self, calculix_trace):
        profile = profile_trace(calculix_trace, phases=2, interval=5_000)
        assert sum(f for f, _ in profile.phases) == pytest.approx(1.0)

    def test_single_phase(self):
        trace = generate_trace(benchmark("povray"), 30_000, seed=1)
        profile = profile_trace(trace, phases=1, interval=5_000)
        assert len(profile.phases) == 1

    def test_instruction_extrapolation(self, calculix_trace):
        profile = profile_trace(
            calculix_trace, phases=2, interval=5_000,
            instructions=1_000_000_000,
        )
        assert profile.instructions == 1_000_000_000

    def test_round_trip_through_mechanistic_model(self, calculix_trace):
        """A recovered profile must behave like the original in the
        mechanistic model (same phase contrast in ABC)."""
        from repro.config import MemoryConfig, big_core_config
        from repro.cores import ISOLATED, MechanisticCoreModel

        profile = profile_trace(calculix_trace, phases=2, interval=5_000)
        model = MechanisticCoreModel(big_core_config(), MemoryConfig())
        first = model.analyze(profile.phases[0][1], ISOLATED)
        last = model.analyze(profile.phases[-1][1], ISOLATED)
        assert first.total_ace_bits_per_cycle > 1.5 * last.total_ace_bits_per_cycle

    def test_validation(self, calculix_trace):
        with pytest.raises(ValueError):
            profile_trace(calculix_trace, phases=0)
        with pytest.raises(ValueError):
            profile_trace(calculix_trace, phases=50, interval=40_000)
