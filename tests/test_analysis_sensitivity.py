"""Tests for the assumption-sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import SensitivityPoint, sweep_assumptions


@pytest.fixture(scope="module")
def points():
    # Small but meaningful sweep: 4 workloads, 20 M instructions.
    return sweep_assumptions(
        instructions=20_000_000,
        workload_count=4,
        quantum_seconds=(5e-4, 1e-3),
        migration_overhead_seconds=(0.0, 2e-5),
        swap_thresholds=(0.0, 0.02),
        llc_share_exponents=(0.25, 1.0),
        workload_seeds=(42, 7),
    )


class TestSweepAssumptions:
    def test_covers_every_assumption(self, points):
        assumptions = {p.assumption for p in points}
        assert assumptions == {
            "quantum_seconds",
            "migration_overhead_seconds",
            "swap_threshold",
            "llc_share_exponent",
            "workload_seed",
        }
        assert len(points) == 10

    def test_conclusion_robust(self, points):
        """The headline conclusion must hold at every point: the
        reliability scheduler reduces SSER vs random at a bounded STP
        cost."""
        for p in points:
            assert p.sser_vs_random < 1.0, p
            assert p.stp_vs_performance > 0.80, p

    def test_llc_exponent_restored(self, points):
        from repro.memory import interference
        assert interference.LLC_SHARE_EXPONENT == 0.5

    def test_point_fields(self, points):
        p = points[0]
        assert isinstance(p, SensitivityPoint)
        assert p.value in (5e-4, 1e-3)
