"""Tests for isolated runs and reference times."""

import pytest

from repro.config import BIG, MemoryConfig, big_core_config, small_core_config
from repro.cores.mechanistic import MechanisticCoreModel
from repro.sim.isolated import (
    ReferenceTimes,
    isolated_stats,
    run_isolated,
)
from repro.workloads.spec2006 import benchmark


@pytest.fixture
def big_model(memory):
    return MechanisticCoreModel(big_core_config(), memory)


@pytest.fixture
def small_model(memory):
    return MechanisticCoreModel(small_core_config(), memory)


class TestRunIsolated:
    def test_runs_to_completion(self, big_model):
        prof = benchmark("povray").scaled(1_000_000)
        result = run_isolated(big_model, prof)
        assert result.instructions == 1_000_000
        assert result.cycles > 0

    def test_abc_proportional_to_length(self, big_model):
        short = run_isolated(big_model, benchmark("milc").scaled(500_000))
        long = run_isolated(big_model, benchmark("milc").scaled(1_000_000))
        assert long.total_ace_bit_cycles == pytest.approx(
            2 * short.total_ace_bit_cycles, rel=0.02
        )


class TestIsolatedStats:
    def test_big_faster_small_safer(self, big_model, small_model):
        prof = benchmark("milc").scaled(2_000_000)
        stats = isolated_stats(prof, big_model, small_model)
        assert stats.big.time_seconds < stats.small.time_seconds
        assert stats.big.ser_rate > stats.small.ser_rate
        assert stats.reference_time_seconds == stats.big.time_seconds

    def test_run_lookup(self, big_model, small_model):
        stats = isolated_stats(
            benchmark("povray").scaled(500_000), big_model, small_model
        )
        assert stats.run(BIG) is stats.big
        with pytest.raises(ValueError):
            stats.run("medium")


class TestReferenceTimes:
    def test_matches_isolated_run(self, big_model):
        prof = benchmark("calculix").scaled(2_000_000)
        ref = ReferenceTimes.from_models(prof, big_model)
        run = run_isolated(big_model, prof)
        assert ref.full_run_seconds == pytest.approx(
            run.cycles / big_model.core.frequency_hz, rel=0.01
        )
        assert ref.seconds_for(prof.instructions) == pytest.approx(
            ref.full_run_seconds
        )

    def test_partial_work_monotone(self, big_model):
        prof = benchmark("calculix").scaled(1_000_000)
        ref = ReferenceTimes.from_models(prof, big_model)
        times = [ref.seconds_for(n) for n in range(0, 1_000_001, 100_000)]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_wraps_for_restarts(self, big_model):
        prof = benchmark("povray").scaled(1_000_000)
        ref = ReferenceTimes.from_models(prof, big_model)
        assert ref.seconds_for(2_500_000) == pytest.approx(
            2.5 * ref.full_run_seconds, rel=0.01
        )

    def test_phase_rates_differ(self, big_model):
        """calculix's two phases run at different speeds; the curve
        must respect that."""
        prof = benchmark("calculix").scaled(1_000_000)
        ref = ReferenceTimes.from_models(prof, big_model)
        early = ref.seconds_for(100_000)
        late = ref.seconds_for(850_000) - ref.seconds_for(750_000)
        assert early != pytest.approx(late, rel=0.01)

    def test_rate_count_mismatch(self):
        prof = benchmark("calculix")
        with pytest.raises(ValueError):
            ReferenceTimes(prof, [1e-9])

    def test_negative_rejected(self, big_model):
        ref = ReferenceTimes.from_models(
            benchmark("povray").scaled(1000), big_model
        )
        with pytest.raises(ValueError):
            ref.seconds_for(-1)
