"""Tests for the durable-campaign pieces: result store, checkpoint
events, resume-state reconstruction and engine resume."""

import json

import pytest

from repro.check import check_resume
from repro.runtime import (
    CallbackSink,
    CampaignCheckpoint,
    CampaignPlan,
    ExecutionEngine,
    FailurePolicy,
    FaultPlan,
    JsonlEventSink,
    ResultStore,
    ResumeError,
    ResumeState,
    read_events,
)
from repro.sim.campaign import RunSpec
from repro.sim.serialize import run_result_to_dict


def specs_1b1s(count=4, instructions=120_000):
    pairs = [("povray", "milc"), ("gobmk", "bzip2"), ("mcf", "lbm")]
    return [
        RunSpec(
            "1B1S",
            pairs[i % len(pairs)],
            "random",
            instructions,
            seed=i,
        )
        for i in range(count)
    ]


def canonical(results):
    return [
        json.dumps(run_result_to_dict(r), sort_keys=True) for r in results
    ]


class TestResultStore:
    def test_roundtrip_and_keys(self, tmp_path):
        specs = specs_1b1s(2)
        store = ResultStore(tmp_path / "store")
        assert len(store) == 0 and store.keys() == []
        report = ExecutionEngine().run_many(specs, store=store)
        keys = [spec.key() for spec in specs]
        assert store.keys() == sorted(keys)
        assert list(store) == sorted(keys)
        for key, result in zip(keys, report.results):
            assert store.contains(key)
            assert canonical([store.load(key)]) == canonical([result])

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        spec = specs_1b1s(1)[0]
        store = ResultStore(tmp_path)
        report = ExecutionEngine().run_many([spec], store=store)
        key = spec.key()
        store.path(key).write_text(store.path(key).read_text()[:30])
        assert store.load(key) is None  # truncated: a miss, not a crash
        assert store.load("deadbeef" * 3) is None
        store.save(key, report.results[0])
        assert canonical([store.load(key)]) == canonical(report.results)

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        ExecutionEngine().run_many(specs_1b1s(2), store=store)
        assert store.clear() == 2
        assert len(store) == 0


class TestPlanAndCheckpointEvents:
    def test_plan_records_specs_and_settings(self, tmp_path):
        specs = specs_1b1s(3)
        events = []
        engine = ExecutionEngine(
            timeout_seconds=30.0, sinks=[CallbackSink(events.append)]
        )
        engine.run_many(specs, store=tmp_path / "store")
        plans = [e for e in events if isinstance(e, CampaignPlan)]
        assert len(plans) == 1
        plan = plans[0]
        assert [RunSpec.from_dict(d) for d in plan.specs] == specs
        assert plan.keys == [spec.key() for spec in specs]
        assert plan.store == str(tmp_path / "store")
        assert plan.failure_policy == "fail-fast"
        assert plan.timeout_seconds == 30.0

    def test_checkpoint_cadence_and_final_state(self):
        specs = specs_1b1s(5, instructions=60_000)
        events = []
        engine = ExecutionEngine(
            checkpoint_every=2, sinks=[CallbackSink(events.append)]
        )
        engine.run_many(specs)
        checkpoints = [
            e for e in events if isinstance(e, CampaignCheckpoint)
        ]
        # One every two terminal jobs plus the final one.
        assert len(checkpoints) == 3
        final = checkpoints[-1]
        assert sorted(final.completed) == sorted(s.key() for s in specs)
        assert final.failed == [] and final.pending == []
        partial = checkpoints[0]
        assert len(partial.completed) == 2 and len(partial.pending) == 3

    def test_events_roundtrip_through_jsonl(self, tmp_path):
        log = tmp_path / "events.jsonl"
        engine = ExecutionEngine(sinks=[JsonlEventSink(log)])
        engine.run_many(specs_1b1s(2), store=tmp_path / "store")
        engine.close()
        kinds = [type(e).__name__ for e in read_events(log)]
        assert "CampaignPlan" in kinds and "CampaignCheckpoint" in kinds
        assert "UnknownEvent" not in kinds


class TestResumeState:
    def run_interrupted(self, specs, store, cut=None, fail=None):
        """Run a campaign, return its event stream truncated at ``cut``."""
        events = []
        engine = ExecutionEngine(
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(fail_attempts={fail: 99})
            if fail is not None
            else None,
            checkpoint_every=2,
            sinks=[CallbackSink(events.append)],
        )
        engine.run_many(specs, store=store)
        return events if cut is None else events[:cut]

    def test_no_plan_raises(self):
        with pytest.raises(ResumeError, match="no campaign plan"):
            ResumeState.from_events([])

    def test_statuses_reconstructed(self, tmp_path):
        specs = specs_1b1s(4, instructions=60_000)
        events = self.run_interrupted(specs, tmp_path / "store", fail=1)
        state = ResumeState.from_events(events)
        keys = [spec.key() for spec in specs]
        assert state.keys == keys and state.specs == specs
        assert state.completed == {keys[0], keys[2], keys[3]}
        assert state.failed == {keys[1]}
        assert state.pending == set()
        assert "3 completed, 1 failed, 0 pending" in state.summary()

    def test_truncated_stream_leaves_pending(self, tmp_path):
        specs = specs_1b1s(4, instructions=60_000)
        events = self.run_interrupted(specs, tmp_path / "store")
        # Cut right after the plan: everything is pending.
        plan_at = next(
            i for i, e in enumerate(events) if isinstance(e, CampaignPlan)
        )
        state = ResumeState.from_events(events[: plan_at + 1])
        assert state.pending == set(state.keys)
        # Cut mid-stream: completed + pending partition the keys.
        state = ResumeState.from_events(events[: plan_at + 4])
        assert state.completed and state.pending
        assert state.completed | state.pending == set(state.keys)

    def test_check_specs_rejects_mismatch(self, tmp_path):
        specs = specs_1b1s(3, instructions=60_000)
        events = self.run_interrupted(specs, tmp_path / "store")
        state = ResumeState.from_events(events)
        state.check_specs(specs)
        with pytest.raises(ResumeError, match="different campaigns"):
            state.check_specs(specs[:-1])

    def test_last_plan_wins(self, tmp_path):
        specs = specs_1b1s(2, instructions=60_000)
        first = self.run_interrupted(specs[:1], tmp_path / "a")
        second = self.run_interrupted(specs, tmp_path / "b")
        state = ResumeState.from_events(first + second)
        assert state.specs == specs
        assert state.store == str(tmp_path / "b")


class TestEngineResume:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        specs = specs_1b1s(4)
        log = tmp_path / "events.jsonl"
        engine = ExecutionEngine(
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=FaultPlan(fail_attempts={2: 99}),
            sinks=[JsonlEventSink(log)],
        )
        engine.run_many(specs, store=tmp_path / "store")
        engine.close()

        # The failed job re-runs (no fault plan this time), completed
        # ones are served from the store.
        resumed = ExecutionEngine(
            failure_policy=FailurePolicy.COLLECT
        ).run_many(specs, resume_from=log)
        assert [o.cached for o in resumed.outcomes] == [
            True, True, False, True,
        ]
        full = ExecutionEngine().run_many(specs, store=tmp_path / "full")
        assert check_resume(full, resumed).ok
        assert canonical(full.results) == canonical(resumed.results)

    def test_resume_rejects_wrong_specs(self, tmp_path):
        specs = specs_1b1s(2)
        log = tmp_path / "events.jsonl"
        engine = ExecutionEngine(sinks=[JsonlEventSink(log)])
        engine.run_many(specs, store=tmp_path / "store")
        engine.close()
        with pytest.raises(ResumeError):
            ExecutionEngine().run_many(
                specs_1b1s(3), resume_from=log
            )

    def test_resume_equivalence_invariant_flags_divergence(self, tmp_path):
        specs = specs_1b1s(2)
        full = ExecutionEngine().run_many(specs, store=tmp_path / "a")
        shorter = ExecutionEngine().run_many(
            specs[:1], store=tmp_path / "b"
        )
        report = check_resume(full, shorter)
        assert not report.ok
        assert report.violations[0].invariant == "resume_equivalence"
