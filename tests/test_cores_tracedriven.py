"""Tests for the trace-driven out-of-order and in-order core models."""

import numpy as np
import pytest

from repro.config import MemoryConfig, big_core_config, small_core_config
from repro.config.structures import StructureKind
from repro.cores.base import ISOLATED, MemoryEnvironment
from repro.cores.inorder import InOrderCoreModel
from repro.cores.ooo import OutOfOrderCoreModel
from repro.cores.tracebase import TraceApplication
from repro.isa.instruction import InstructionClass
from repro.isa.trace import Trace
from repro.workloads.generator import generate_trace
from repro.workloads.spec2006 import benchmark


def _trace(classes, dep1=None, mispredicted=None, addresses=None):
    n = len(classes)
    return Trace(
        classes=np.array(classes, dtype=np.int8),
        dep1=np.array(dep1 if dep1 else [0] * n, dtype=np.int32),
        dep2=np.zeros(n, dtype=np.int32),
        addresses=np.array(addresses if addresses else [0] * n, dtype=np.int64),
        mispredicted=np.array(
            mispredicted if mispredicted else [False] * n, dtype=bool
        ),
        icache_miss=np.zeros(n, dtype=bool),
        name="unit",
    )


@pytest.fixture
def ooo(memory):
    return OutOfOrderCoreModel(big_core_config(), memory)


@pytest.fixture
def inorder(memory):
    return InOrderCoreModel(small_core_config(), memory)


class TestOutOfOrderTiming:
    def test_independent_alus_reach_full_width(self, ooo):
        app = TraceApplication(_trace([InstructionClass.INT_ALU] * 4000))
        result = ooo.run_cycles(app, 0, 100_000, ISOLATED)
        assert result.instructions == 4000
        assert result.ipc > 2.5  # 4-wide minus startup

    def test_dependence_chain_serializes(self, ooo):
        n = 2000
        app = TraceApplication(
            _trace([InstructionClass.INT_ALU] * n, dep1=[1] * n)
        )
        result = ooo.run_cycles(app, 0, 100_000, ISOLATED)
        assert result.ipc == pytest.approx(1.0, rel=0.05)

    def test_mispredicts_cost_cycles(self, ooo):
        n = 2000
        classes = [InstructionClass.BRANCH] * n
        clean = TraceApplication(_trace(classes))
        noisy = TraceApplication(
            _trace(classes, mispredicted=[i % 10 == 0 for i in range(n)])
        )
        fast = ooo.run_cycles(clean, 0, 200_000, ISOLATED)
        slow = ooo.run_cycles(noisy, 0, 200_000, ISOLATED)
        assert slow.ipc < fast.ipc * 0.7

    def test_dram_misses_stall_window(self, ooo):
        n = 2000
        # Every load streams to a fresh line: all DRAM.
        classes = [InstructionClass.LOAD] * n
        addresses = [i * 64 for i in range(n)]
        dependent = TraceApplication(
            _trace(classes, dep1=[1] * n, addresses=addresses)
        )
        result = ooo.run_cycles(dependent, 0, 2_000_000, ISOLATED)
        # Serialized DRAM accesses: ~latency cycles per instruction.
        assert result.ipc < 0.02
        assert result.memory_accesses == pytest.approx(n, rel=0.05)

    def test_budget_respected(self, ooo):
        app = TraceApplication(_trace([InstructionClass.INT_ALU] * 10_000))
        result = ooo.run_cycles(app, 0, 500, ISOLATED)
        assert result.cycles <= 500 * 1.01
        assert 0 < result.instructions < 10_000

    def test_env_multiplier_slows_dram(self, ooo, memory):
        prof = benchmark("lbm")
        trace = generate_trace(prof, 20_000, seed=0)
        iso = ooo.run_cycles(TraceApplication(trace), 0, 10_000_000, ISOLATED)
        contended_model = OutOfOrderCoreModel(big_core_config(), memory)
        contended = contended_model.run_cycles(
            TraceApplication(trace), 0, 10_000_000,
            MemoryEnvironment(dram_latency_multiplier=2.0),
        )
        assert contended.cycles > iso.cycles * 1.1


class TestOutOfOrderAce:
    def test_nops_are_un_ace_but_occupy(self, ooo):
        app = TraceApplication(_trace([InstructionClass.NOP] * 1000))
        result = ooo.run_cycles(app, 0, 100_000, ISOLATED)
        rob_ace = result.ace_bit_cycles[StructureKind.ROB]
        rob_occ = result.occupancy_bit_cycles[StructureKind.ROB]
        assert rob_ace == 0.0
        assert rob_occ > 0.0

    def test_ace_bounded_by_occupancy(self, ooo):
        trace = generate_trace(benchmark("soplex"), 10_000, seed=1)
        result = ooo.run_cycles(TraceApplication(trace), 0, 10_000_000, ISOLATED)
        for kind, ace in result.ace_bit_cycles.items():
            assert ace <= result.occupancy_bit_cycles[kind] + 1e-6

    def test_wrong_path_under_miss_lowers_rob_ace(self, ooo, memory):
        """A mispredicted branch that depends on a DRAM load keeps the
        post-branch window un-ACE for the whole miss."""
        n = 3000
        classes = []
        for i in range(n):
            classes.append(
                InstructionClass.LOAD if i % 50 == 0
                else InstructionClass.BRANCH if i % 50 == 1
                else InstructionClass.INT_ALU
            )
        addresses = [i * 64 if c == InstructionClass.LOAD else 0
                     for i, c in enumerate(classes)]
        dep_on_load = [1 if c == InstructionClass.BRANCH else 0 for c in classes]
        mispredict = [c == InstructionClass.BRANCH for c in classes]
        coupled = TraceApplication(_trace(classes, dep1=dep_on_load,
                                          mispredicted=mispredict,
                                          addresses=addresses))
        uncoupled = TraceApplication(_trace(classes, addresses=addresses))
        r_coupled = ooo.run_cycles(coupled, 0, 3_000_000, ISOLATED)
        r_uncoupled = OutOfOrderCoreModel(big_core_config(), memory).run_cycles(
            uncoupled, 0, 3_000_000, ISOLATED
        )
        ace_rate_coupled = (
            r_coupled.ace_bit_cycles[StructureKind.ROB] / r_coupled.cycles
        )
        ace_rate_uncoupled = (
            r_uncoupled.ace_bit_cycles[StructureKind.ROB] / r_uncoupled.cycles
        )
        assert ace_rate_coupled < ace_rate_uncoupled * 0.6


class TestInOrder:
    def test_width_two_limit(self, inorder):
        app = TraceApplication(_trace([InstructionClass.INT_ALU] * 4000))
        result = inorder.run_cycles(app, 0, 100_000, ISOLATED)
        assert result.ipc <= 2.0
        assert result.ipc > 1.5

    def test_stall_on_use(self, inorder):
        n = 2000
        app = TraceApplication(
            _trace([InstructionClass.FP_MUL] * n, dep1=[1] * n)
        )
        result = inorder.run_cycles(app, 0, 100_000, ISOLATED)
        assert result.ipc == pytest.approx(1 / 5, rel=0.1)  # 5-cycle chain

    def test_slower_than_big_core(self, inorder, ooo):
        trace = generate_trace(benchmark("hmmer"), 20_000, seed=2)
        big = ooo.run_cycles(TraceApplication(trace), 0, 10_000_000, ISOLATED)
        small = inorder.run_cycles(TraceApplication(trace), 0, 10_000_000, ISOLATED)
        assert big.ipc > small.ipc

    def test_much_lower_ace_than_big_core(self, inorder, ooo):
        trace = generate_trace(benchmark("milc"), 20_000, seed=3)
        big = ooo.run_cycles(TraceApplication(trace), 0, 10_000_000, ISOLATED)
        small = inorder.run_cycles(TraceApplication(trace), 0, 10_000_000, ISOLATED)
        assert (
            big.ace_bits_per_cycle() > 4 * small.ace_bits_per_cycle()
        )

    def test_pipeline_latch_ace_counted(self, inorder):
        app = TraceApplication(_trace([InstructionClass.INT_ALU] * 1000))
        result = inorder.run_cycles(app, 0, 100_000, ISOLATED)
        assert result.ace_bit_cycles[StructureKind.PIPELINE_LATCHES] > 0


class TestModelAgreement:
    """Trace-driven and mechanistic models must agree on ranking."""

    BENCHES = ("gobmk", "mcf", "hmmer", "milc", "lbm", "perlbench", "zeusmp")

    def _both(self, memory):
        from repro.cores.mechanistic import MechanisticCoreModel
        ooo = OutOfOrderCoreModel(big_core_config(), memory)
        mech = MechanisticCoreModel(big_core_config(), memory)
        trace_abc, mech_abc, trace_ipc, mech_ipc = [], [], [], []
        for name in self.BENCHES:
            prof = benchmark(name)
            trace = generate_trace(prof, 20_000, seed=5)
            r = ooo.run_cycles(TraceApplication(trace), 0, 10_000_000, ISOLATED)
            a = mech.analyze(prof.phases[0][1], ISOLATED)
            trace_abc.append(r.ace_bits_per_cycle())
            mech_abc.append(a.total_ace_bits_per_cycle)
            trace_ipc.append(r.ipc)
            mech_ipc.append(a.ipc)
        return trace_abc, mech_abc, trace_ipc, mech_ipc

    def test_abc_rank_agreement(self, memory):
        from scipy.stats import spearmanr
        trace_abc, mech_abc, _, _ = self._both(memory)
        assert spearmanr(trace_abc, mech_abc).statistic > 0.7

    def test_ipc_rank_agreement(self, memory):
        from scipy.stats import spearmanr
        _, _, trace_ipc, mech_ipc = self._both(memory)
        assert spearmanr(trace_ipc, mech_ipc).statistic > 0.7
