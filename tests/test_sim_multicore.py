"""Tests for the multicore simulation engine."""

import pytest

from repro.ace.counters import AceCounterMode
from repro.config import machine_1b3s, machine_2b2s
from repro.sched.oracle import StaticScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.sim.results import RunResult
from repro.workloads.spec2006 import benchmark

FOUR = ("povray", "milc", "gobmk", "bzip2")


def _profiles(names=FOUR, n=3_000_000):
    return [benchmark(name).scaled(n) for name in names]


class TestBasicRun:
    def test_runs_to_completion(self, machine):
        profiles = _profiles()
        sim = MulticoreSimulation(
            machine, profiles, StaticScheduler(machine, 4, (0, 1))
        )
        result = sim.run()
        assert isinstance(result, RunResult)
        assert result.quanta > 0
        assert all(a.instructions >= p.instructions
                   for a, p in zip(result.apps, profiles))
        assert all(a.completed_runs >= 1 for a in result.apps)

    def test_app_count_enforced(self, machine):
        with pytest.raises(ValueError):
            MulticoreSimulation(
                machine, _profiles()[:3], StaticScheduler(machine, 4, (0, 1))
            )

    def test_static_scheduler_infeasible_split_rejected(self, machine):
        with pytest.raises(ValueError):
            StaticScheduler(machine, 4, (0,))  # 3 apps, 2 small cores

    def test_time_accounting_consistent(self, machine):
        sim = MulticoreSimulation(
            machine, _profiles(), StaticScheduler(machine, 4, (0, 1))
        )
        result = sim.run()
        for app in result.apps:
            assert app.time_seconds == pytest.approx(result.duration_seconds)
            assert (
                app.time_big_seconds + app.time_small_seconds
                == pytest.approx(result.duration_seconds)
            )

    def test_static_schedule_never_migrates(self, machine):
        sim = MulticoreSimulation(
            machine, _profiles(), StaticScheduler(machine, 4, (0, 1))
        )
        result = sim.run()
        assert all(a.migrations == 0 for a in result.apps)

    def test_random_schedule_migrates(self, machine):
        sim = MulticoreSimulation(
            machine, _profiles(), RandomScheduler(machine, 4, seed=0)
        )
        result = sim.run()
        assert sum(a.migrations for a in result.apps) > result.quanta / 2

    def test_metrics_positive(self, machine):
        sim = MulticoreSimulation(
            machine, _profiles(), StaticScheduler(machine, 4, (0, 1))
        )
        result = sim.run()
        assert result.sser > 0
        assert 0 < result.stp <= 4.0
        assert result.antt >= 1.0

    def test_max_quanta_guard(self, machine):
        sim = MulticoreSimulation(
            machine,
            _profiles(n=50_000_000),
            StaticScheduler(machine, 4, (0, 1)),
            max_quanta=3,
        )
        with pytest.raises(RuntimeError):
            sim.run()


class TestBigCoresMatter:
    def test_big_assignment_changes_outcome(self, machine):
        """Putting milc on big vs small must change SSER and STP."""
        profiles = _profiles()
        on_big = MulticoreSimulation(
            machine, profiles, StaticScheduler(machine, 4, (1, 2))
        ).run()
        on_small = MulticoreSimulation(
            machine, profiles, StaticScheduler(machine, 4, (0, 3))
        ).run()
        # Compare as a ratio: SSER magnitudes (~1e-21) are far below
        # pytest.approx's default absolute tolerance.
        assert abs(on_big.sser / on_small.sser - 1.0) > 0.02

    def test_asymmetric_machine(self):
        m = machine_1b3s()
        sim = MulticoreSimulation(
            m, _profiles(), StaticScheduler(m, 4, (1,))
        )
        result = sim.run()
        assert result.machine_name == "1B3S"
        milc = result.app("milc")
        assert milc.time_big_seconds == pytest.approx(result.duration_seconds)


class TestTimeline:
    def test_timeline_recorded(self, machine):
        sim = MulticoreSimulation(
            machine,
            _profiles(),
            StaticScheduler(machine, 4, (0, 1)),
            record_timeline=True,
        )
        result = sim.run()
        assert len(result.timeline) == 4 * result.quanta
        point = result.timeline[0]
        assert point.abc_per_second > 0
        times = [p.time_seconds for p in result.timeline]
        assert times == sorted(times)

    def test_timeline_off_by_default(self, machine):
        sim = MulticoreSimulation(
            machine, _profiles(), StaticScheduler(machine, 4, (0, 1))
        )
        assert sim.run().timeline == []


class TestCounterModes:
    def test_rob_only_changes_observations_not_ground_truth(self, machine):
        profiles = _profiles()
        full = MulticoreSimulation(
            machine, profiles, StaticScheduler(machine, 4, (0, 1)),
            counter_mode=AceCounterMode.FULL,
        ).run()
        rob = MulticoreSimulation(
            machine, profiles, StaticScheduler(machine, 4, (0, 1)),
            counter_mode=AceCounterMode.ROB_ONLY,
        ).run()
        # Ground truth SSER is identical under a static schedule; only
        # what the scheduler *sees* changes.
        assert full.sser == pytest.approx(rob.sser, rel=1e-6)

    def test_app_lookup(self, machine):
        result = MulticoreSimulation(
            machine, _profiles(), StaticScheduler(machine, 4, (0, 1))
        ).run()
        assert result.app("milc").name == "milc"
        with pytest.raises(KeyError):
            result.app("doom3")
