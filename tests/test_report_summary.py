"""Tests for the high-level report builders."""

import pytest

from repro.config import machine_2b2s
from repro.power import PowerModel
from repro.report.summary import (
    comparison_summary,
    run_summary,
    sweep_summary,
)
from repro.sim.experiment import run_workload

NAMES = ("povray", "milc", "gobmk", "bzip2")


@pytest.fixture(scope="module")
def results():
    machine = machine_2b2s()
    return {
        name: run_workload(machine, NAMES, name, instructions=2_000_000)
        for name in ("random", "reliability")
    }


class TestRunSummary:
    def test_contains_metrics_and_apps(self, results):
        text = run_summary(results["reliability"])
        assert "SSER" in text and "STP" in text
        for name in NAMES:
            assert name in text

    def test_power_included_when_model_given(self, results):
        text = run_summary(
            results["reliability"], PowerModel(machine_2b2s())
        )
        assert "chip" in text and "W" in text


class TestComparisonSummary:
    def test_normalized_to_first(self, results):
        text = comparison_summary(results)
        assert "SSER/random" in text
        # The baseline row is 1.000 in every normalized column.
        random_row = next(
            line for line in text.splitlines() if line.startswith("random")
        )
        assert random_row.count("1.000") >= 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            comparison_summary({})


class TestSweepSummary:
    def test_shape(self, results):
        sweeps = {name: [r] for name, r in results.items()}
        text = sweep_summary(sweeps, baseline="random")
        assert "SSER mean" in text
        assert "reliability" in text

    def test_missing_baseline(self, results):
        with pytest.raises(ValueError):
            sweep_summary({"reliability": [results["reliability"]]})

    def test_length_mismatch(self, results):
        sweeps = {
            "random": [results["random"]],
            "reliability": [results["reliability"]] * 2,
        }
        with pytest.raises(ValueError):
            sweep_summary(sweeps)
