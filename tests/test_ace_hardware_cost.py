"""Tests for the ACE counter hardware-cost arithmetic (Section 4.2).

The paper's exact numbers: baseline 7,232 bit equivalents = 904 bytes;
ROB-only 2,368 = 296 bytes; in-order 532 = 67 bytes.
"""

import pytest

from repro.ace.hardware_cost import (
    CounterCost,
    baseline_big_core_cost,
    in_order_core_cost,
    rob_only_big_core_cost,
)
from repro.config.cores import big_core_config, small_core_config
from repro.config.structures import StructureConfig, StructureKind
from dataclasses import replace


class TestPaperNumbers:
    def test_baseline_904_bytes(self, big_core):
        cost = baseline_big_core_cost(big_core)
        assert cost.storage_bits == 3072 + 160
        assert cost.adders == 20
        assert cost.bit_equivalents == 7232
        assert cost.bytes == 904

    def test_rob_only_296_bytes(self, big_core):
        cost = rob_only_big_core_cost(big_core)
        assert cost.storage_bits == 1536 + 32
        assert cost.adders == 4
        assert cost.bit_equivalents == 2368
        assert cost.bytes == 296

    def test_in_order_67_bytes(self, small_core):
        cost = in_order_core_cost(small_core)
        assert cost.storage_bits == 132
        assert cost.adders == 2
        assert cost.bit_equivalents == 532
        assert cost.bytes == 67

    def test_area_optimization_factor_three(self, big_core):
        baseline = baseline_big_core_cost(big_core).bit_equivalents
        optimized = rob_only_big_core_cost(big_core).bit_equivalents
        assert baseline / optimized == pytest.approx(3.05, abs=0.1)


class TestScaling:
    def test_cost_scales_with_rob_size(self, big_core):
        bigger = replace(
            big_core, rob=StructureConfig(StructureKind.ROB, 256, 76)
        )
        assert (
            rob_only_big_core_cost(bigger).storage_bits
            == 12 * 256 + 32
        )

    def test_wrong_core_type_rejected(self, big_core, small_core):
        with pytest.raises(ValueError):
            baseline_big_core_cost(small_core)
        with pytest.raises(ValueError):
            in_order_core_cost(big_core)


class TestCounterCost:
    def test_byte_rounding_up(self):
        assert CounterCost(storage_bits=1, adders=0).bytes == 1
        assert CounterCost(storage_bits=8, adders=0).bytes == 1
        assert CounterCost(storage_bits=9, adders=0).bytes == 2

    def test_adder_equivalence(self):
        assert CounterCost(storage_bits=0, adders=1).bit_equivalents == 200
