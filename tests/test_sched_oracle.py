"""Tests for the offline oracle schedules (Section 2.4)."""

import math

import pytest

from repro.config import BIG, SMALL, machine_1b3s, machine_2b2s
from repro.sched.base import SegmentPlan
from repro.sched.oracle import (
    StaticScheduler,
    best_sser_schedule,
    best_stp_schedule,
    enumerate_schedules,
    predict,
)
from repro.sim.isolated import IsolatedRun, IsolatedStats


def _stats(name, big_time, big_abc, small_time, small_abc, instr=1000):
    return IsolatedStats(
        name=name,
        big=IsolatedRun(BIG, big_time, big_abc, instr),
        small=IsolatedRun(SMALL, small_time, small_abc, instr),
    )


@pytest.fixture
def four_apps():
    # App 0: tiny ABC, big speedup -> belongs on big for both oracles.
    # App 3: huge big-core ABC, small slowdown -> small core for SSER.
    return [
        _stats("a0", 1.0, 10.0, 3.0, 2.0),
        _stats("a1", 1.0, 20.0, 2.5, 3.0),
        _stats("a2", 1.0, 90.0, 1.5, 4.0),
        _stats("a3", 1.0, 100.0, 1.2, 5.0),
    ]


class TestPrediction:
    def test_all_big_prediction(self, four_apps):
        m = machine_2b2s()
        p = predict(four_apps, (0, 1))
        # SSER: apps 0,1 on big contribute ABC/T_big; 2,3 on small.
        expected_sser = 10.0 + 20.0 + 4.0 + 5.0
        assert p.sser == pytest.approx(expected_sser)
        expected_stp = 1.0 + 1.0 + 1.0 / 1.5 + 1.0 / 1.2
        assert p.stp == pytest.approx(expected_stp)

    def test_core_type_of(self, four_apps):
        p = predict(four_apps, (1, 3))
        assert p.core_type_of(1) == BIG
        assert p.core_type_of(0) == SMALL


class TestEnumeration:
    def test_six_schedules_for_2b2s(self, four_apps):
        schedules = enumerate_schedules(four_apps, machine_2b2s())
        assert len(schedules) == math.comb(4, 2) == 6

    def test_four_schedules_for_1b3s(self, four_apps):
        schedules = enumerate_schedules(four_apps, machine_1b3s())
        assert len(schedules) == 4

    def test_app_count_mismatch(self, four_apps):
        with pytest.raises(ValueError):
            enumerate_schedules(four_apps[:3], machine_2b2s())

    def test_best_sser_puts_vulnerable_apps_on_small(self, four_apps):
        best = best_sser_schedule(four_apps, machine_2b2s())
        assert best.big_apps == (0, 1)

    def test_best_stp_maximizes_throughput(self, four_apps):
        best = best_stp_schedule(four_apps, machine_2b2s())
        # Apps 0 and 1 have the largest big/small speedups (3x, 2.5x).
        assert best.big_apps == (0, 1)

    def test_oracles_bound_all_schedules(self, four_apps):
        m = machine_2b2s()
        schedules = enumerate_schedules(four_apps, m)
        assert best_sser_schedule(four_apps, m).sser == min(
            s.sser for s in schedules
        )
        assert best_stp_schedule(four_apps, m).stp == max(
            s.stp for s in schedules
        )


class TestStaticScheduler:
    def test_fixed_assignment(self):
        m = machine_2b2s()
        sched = StaticScheduler(m, 4, big_apps=(1, 2))
        plans = [sched.plan_quantum(q) for q in range(3)]
        for p in plans:
            assert len(p) == 1
            a = p[0].assignment
            assert a.core_type_of(1, m) == BIG
            assert a.core_type_of(2, m) == BIG
            assert a.core_type_of(0, m) == SMALL
            assert a.core_type_of(3, m) == SMALL

    def test_too_many_big_apps(self):
        with pytest.raises(ValueError):
            StaticScheduler(machine_2b2s(), 4, big_apps=(0, 1, 2))
