"""Tests for oversubscription: parking and fair-share scheduling."""

import pytest

from repro.config import BIG, SMALL, machine_1b1s, machine_2b2s
from repro.sched.base import PARKED, Assignment
from repro.sched.oversubscribed import OversubscribedReliabilityScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.reliability import ReliabilityScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark

SIX = ("milc", "zeusmp", "mcf", "gobmk", "povray", "bzip2")


def _profiles(n=2_000_000):
    return [benchmark(name).scaled(n) for name in SIX]


class TestAssignmentParking:
    def test_parked_entries_allowed(self):
        a = Assignment((0, 1, PARKED, 2, PARKED, 3))
        assert a.is_parked(2)
        assert not a.is_parked(0)
        a.validate(machine_2b2s())

    def test_duplicate_running_cores_rejected(self):
        with pytest.raises(ValueError):
            Assignment((0, 0, PARKED))

    def test_core_type_of_parked_raises(self):
        a = Assignment((0, PARKED))
        with pytest.raises(ValueError):
            a.core_type_of(1, machine_2b2s())


class TestSchedulerContracts:
    def test_one_per_core_scheduler_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            ReliabilityScheduler(machine_2b2s(), 6)

    def test_too_few_apps_rejected(self):
        with pytest.raises(ValueError):
            RandomScheduler(machine_2b2s(), 3)

    def test_random_parks_the_excess(self):
        sched = RandomScheduler(machine_2b2s(), 6, seed=1)
        plan = sched.plan_quantum(0)[0]
        parked = [i for i in range(6) if plan.assignment.is_parked(i)]
        running = [i for i in range(6) if not plan.assignment.is_parked(i)]
        assert len(parked) == 2
        assert len(running) == 4

    def test_random_rotates_parked_set(self):
        sched = RandomScheduler(machine_2b2s(), 6, seed=2)
        parked_sets = {
            tuple(
                i for i in range(6)
                if sched.plan_quantum(q)[0].assignment.is_parked(i)
            )
            for q in range(20)
        }
        assert len(parked_sets) > 3


class TestOversubscribedReliability:
    def test_requires_both_core_types(self):
        from repro.config import MachineConfig
        with pytest.raises(ValueError):
            OversubscribedReliabilityScheduler(
                MachineConfig(big_cores=2, small_cores=0), 4
            )

    def test_end_to_end_six_on_four(self):
        machine = machine_2b2s()
        result = MulticoreSimulation(
            machine, _profiles(),
            OversubscribedReliabilityScheduler(machine, 6),
        ).run()
        assert all(a.completed_runs >= 1 for a in result.apps)
        # Each application only runs a fraction of the wall clock.
        for app in result.apps:
            running = app.time_big_seconds + app.time_small_seconds
            assert running < result.duration_seconds

    def test_fair_sharing(self):
        machine = machine_2b2s()
        result = MulticoreSimulation(
            machine, _profiles(),
            OversubscribedReliabilityScheduler(machine, 6),
        ).run()
        running = [
            a.time_big_seconds + a.time_small_seconds for a in result.apps
        ]
        # Deficit round-robin: no application starves or hogs.
        assert max(running) < 2.5 * min(running)

    def test_beats_random_on_sser(self):
        machine = machine_2b2s()
        profiles = _profiles(10_000_000)
        rel = MulticoreSimulation(
            machine, profiles,
            OversubscribedReliabilityScheduler(machine, 6),
        ).run()
        rnd = MulticoreSimulation(
            machine, profiles, RandomScheduler(machine, 6, seed=0)
        ).run()
        assert rel.sser < rnd.sser

    def test_vulnerable_apps_prefer_small_cores(self):
        machine = machine_2b2s()
        result = MulticoreSimulation(
            machine, _profiles(10_000_000),
            OversubscribedReliabilityScheduler(machine, 6),
        ).run()
        milc = result.app("milc")
        gobmk = result.app("gobmk")
        milc_small = milc.time_small_seconds / (
            milc.time_big_seconds + milc.time_small_seconds
        )
        gobmk_small = gobmk.time_small_seconds / (
            gobmk.time_big_seconds + gobmk.time_small_seconds
        )
        assert milc_small > gobmk_small
