"""Ablation: the paper's restart methodology vs run-to-completion.

Section 5 restarts fast-finishing applications so phase changes near
the end of the longest application still affect the schedule.  This
ablation re-runs a workload subsample in run-to-completion mode (a
finished application's core idles) and checks that the headline
comparison does not hinge on the restart choice.
"""

from _harness import SCALE, machine_by_name, mean, save_table, workloads

from repro.sched.performance import PerformanceScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.reliability import ReliabilityScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark as lookup


def _run(machine, profiles, scheduler, restart):
    return MulticoreSimulation(
        machine, profiles, scheduler, restart_finished=restart
    ).run()


def _ablation():
    machine = machine_by_name("2B2S")
    sample = workloads(4)[::3]  # 12 category-diverse workloads
    rows = []
    for index, mix in enumerate(sample):
        profiles = [lookup(n).scaled(SCALE) for n in mix.benchmarks]
        per_mode = {}
        for restart in (True, False):
            rnd = _run(machine, profiles,
                       RandomScheduler(machine, 4, seed=index), restart)
            rel = _run(machine, profiles,
                       ReliabilityScheduler(machine, 4), restart)
            perf = _run(machine, profiles,
                        PerformanceScheduler(machine, 4), restart)
            per_mode[restart] = (
                rel.sser / rnd.sser,
                rel.stp / perf.stp,
            )
        rows.append((mix, per_mode))
    return rows


def bench_abl_methodology(benchmark):
    rows = benchmark.pedantic(_ablation, rounds=1, iterations=1)

    lines = ["Ablation: restart methodology (paper) vs run-to-completion",
             f"{'workload':>10s} {'restart SSER':>13s} {'completion SSER':>16s} "
             f"{'restart STP':>12s} {'completion STP':>15s}"]
    restart_sser, completion_sser = [], []
    for mix, per_mode in rows:
        restart_sser.append(per_mode[True][0])
        completion_sser.append(per_mode[False][0])
        lines.append(
            f"{mix.category:>10s} {per_mode[True][0]:13.3f} "
            f"{per_mode[False][0]:16.3f} {per_mode[True][1]:12.3f} "
            f"{per_mode[False][1]:15.3f}"
        )
    lines.append(
        f"{'MEAN':>10s} {mean(restart_sser):13.3f} "
        f"{mean(completion_sser):16.3f}"
    )
    lines.append("conclusion: the headline reduction is methodology-"
                 "independent")
    save_table("abl_methodology", lines)

    # The reliability scheduler wins under either accounting, by a
    # comparable margin.
    assert mean(restart_sser) < 0.9
    assert mean(completion_sser) < 0.9
    assert abs(mean(restart_sser) - mean(completion_sser)) < 0.08
