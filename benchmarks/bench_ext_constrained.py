"""Extension: the SSER-vs-STP Pareto knob.

Sweeps the STP-loss bound of the constrained reliability scheduler
(an extension beyond the paper) between the two extremes the paper
evaluates: 0 % loss (performance-optimized behaviour) and unbounded
(reliability-optimized behaviour).  The result is a Pareto front
showing how much reliability each point of allowed throughput loss
buys.
"""

from _harness import SCALE, machine_by_name, mean, save_table, workloads

from repro.sched.constrained import ConstrainedReliabilityScheduler
from repro.sim.experiment import run_workload
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark as lookup

BOUNDS = (0.0, 0.02, 0.05, 0.10, 1.0)


def _extension():
    machine = machine_by_name("2B2S")
    sample = workloads(4)[::3]  # 12 category-diverse workloads
    baselines = [
        run_workload(machine, mix, "random", instructions=SCALE, seed=i)
        for i, mix in enumerate(sample)
    ]
    points = {}
    for bound in BOUNDS:
        runs = []
        for mix in sample:
            profiles = [lookup(n).scaled(SCALE) for n in mix.benchmarks]
            scheduler = ConstrainedReliabilityScheduler(
                machine, 4, max_stp_loss=bound
            )
            runs.append(
                MulticoreSimulation(machine, profiles, scheduler).run()
            )
        points[bound] = (
            mean(r.sser / b.sser for r, b in zip(runs, baselines)),
            mean(r.stp / b.stp for r, b in zip(runs, baselines)),
        )
    return points


def bench_ext_constrained(benchmark):
    points = benchmark.pedantic(_extension, rounds=1, iterations=1)

    lines = ["Extension: SSER/STP Pareto front of the constrained "
             "reliability scheduler (normalized to random)",
             f"{'STP-loss bound':>14s} {'SSER':>7s} {'STP':>7s}"]
    for bound, (sser, stp) in points.items():
        label = "unbounded" if bound >= 1.0 else f"{100 * bound:.0f}%"
        lines.append(f"{label:>14s} {sser:7.3f} {stp:7.3f}")
    save_table("ext_constrained", lines)

    ssers = [points[b][0] for b in BOUNDS]
    stps = [points[b][1] for b in BOUNDS]
    # Loosening the bound never raises SSER much and never raises STP:
    # the front is monotone within tolerance.
    for a, b in zip(ssers, ssers[1:]):
        assert b <= a + 0.02
    for a, b in zip(stps, stps[1:]):
        assert b <= a + 0.02
    # The extremes bracket a real trade-off.
    assert ssers[-1] < ssers[0] - 0.03
