"""Ablation: SSER's slowdown weighting vs raw summed SER.

Runs a scheduler that minimizes the *unweighted* sum of per-
application SER (ACE bits per second) instead of SSER.  Section 3
argues raw SER sums misweight applications: they under-count slow
applications (which stay exposed longer per unit of work).  The
ablation quantifies the damage on the ground-truth SSER metric.
"""

from _harness import SCALE, machine_by_name, mean, save_table, workloads

from repro.sched.variants import RawSerScheduler
from repro.sim.experiment import run_workload
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark as lookup


def _ablation():
    machine = machine_by_name("2B2S")
    rows = []
    for index, mix in enumerate(workloads(4)):
        sser_sched = run_workload(machine, mix, "reliability",
                                  instructions=SCALE, seed=index)
        profiles = [lookup(n).scaled(SCALE) for n in mix.benchmarks]
        raw = MulticoreSimulation(
            machine, profiles, RawSerScheduler(machine, 4)
        ).run()
        rows.append((mix, sser_sched.sser, raw.sser,
                     sser_sched.stp, raw.stp))
    return rows


def bench_abl_sser_vs_rawser(benchmark):
    rows = benchmark.pedantic(_ablation, rounds=1, iterations=1)

    lines = ["Ablation: SSER objective vs raw (unweighted) SER sum",
             f"{'workload':>10s} {'SSER-obj/raw-obj SSER':>22s} "
             f"{'SSER-obj/raw-obj STP':>21s}"]
    sser_ratios_, stp_ratios_ = [], []
    for mix, sser_val, raw_val, sser_stp, raw_stp in rows:
        sser_ratios_.append(sser_val / raw_val)
        stp_ratios_.append(sser_stp / raw_stp)
        lines.append(f"{mix.category:>10s} {sser_val / raw_val:22.3f} "
                     f"{sser_stp / raw_stp:21.3f}")
    lines.append(f"{'MEAN':>10s} {mean(sser_ratios_):22.3f} "
                 f"{mean(stp_ratios_):21.3f}")
    lines.append("conclusion: optimizing the slowdown-weighted metric "
                 "yields lower (better) ground-truth SSER")
    save_table("abl_sser_vs_rawser", lines)

    # The proper objective should not lose to the naive one on the
    # metric that actually matters.
    assert mean(sser_ratios_) <= 1.02
