"""Figure 7: SSER and STP per workload category on the 2B2S HCMP.

The same sweep as Figure 6, grouped by workload category.  Paper:
HHLL gains the most (high-AVF applications move to the small cores,
low-AVF applications take the big cores); mixed categories (HHMM,
MMLL) gain substantially; homogeneous categories gain modestly.
"""

from _harness import (
    by_category,
    cached_sweep,
    machine_by_name,
    mean,
    save_table,
)

CATEGORY_ORDER = ("HHHH", "HHMM", "HHLL", "MMMM", "MMLL", "LLLL")


def _figure7():
    results = cached_sweep(machine_by_name("2B2S"), 4)
    return by_category(results, 4)


def bench_fig07_categories(benchmark):
    grouped = benchmark.pedantic(_figure7, rounds=1, iterations=1)

    lines = ["Figure 7: normalized SSER and STP per workload category "
             "(relative to random)",
             f"{'category':>8s} {'perf SSER':>10s} {'rel SSER':>9s} "
             f"{'perf STP':>9s} {'rel STP':>8s}"]
    summary = {}
    for category in CATEGORY_ORDER:
        bucket = grouped[category]
        rel_sser = mean(
            r.sser / b.sser
            for r, b in zip(bucket["reliability"], bucket["random"])
        )
        perf_sser = mean(
            r.sser / b.sser
            for r, b in zip(bucket["performance"], bucket["random"])
        )
        rel_stp = mean(
            r.stp / b.stp
            for r, b in zip(bucket["reliability"], bucket["random"])
        )
        perf_stp = mean(
            r.stp / b.stp
            for r, b in zip(bucket["performance"], bucket["random"])
        )
        summary[category] = (perf_sser, rel_sser, perf_stp, rel_stp)
        lines.append(f"{category:>8s} {perf_sser:10.3f} {rel_sser:9.3f} "
                     f"{perf_stp:9.3f} {rel_stp:8.3f}")
    save_table("fig07_categories", lines)

    rel_sser = {c: v[1] for c, v in summary.items()}
    # HHLL benefits the most; mixed categories beat their homogeneous
    # counterparts; every category improves over random.
    assert rel_sser["HHLL"] == min(rel_sser.values())
    assert rel_sser["HHMM"] < rel_sser["HHHH"]
    assert rel_sser["MMLL"] < rel_sser["LLLL"]
    assert all(v < 1.0 for v in rel_sser.values())
