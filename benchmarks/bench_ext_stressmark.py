"""Extension: AVF stressmark (after Nair et al., MICRO 2010).

Searches the workload-characteristics space for the big-core
AVF-maximizing phase and compares it against the benchmark suite's
spectrum -- an upper bound on the vulnerability the scheduler may
encounter.  Also demonstrates that the stressmark is precisely the
kind of application reliability-aware scheduling protects: scheduled
against low-AVF co-runners, it is placed on a small core.
"""

from _harness import SCALE, machine_by_name, save_table

from repro.sched.reliability import ReliabilityScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import SUITE, big_core_avf
from repro.workloads.spec2006 import benchmark as lookup
from repro.workloads.stressmark import search_stressmark

ITERATIONS = 400


def _extension():
    result = search_stressmark(iterations=ITERATIONS, seed=3)
    machine = machine_by_name("2B2S")
    scale = min(SCALE, 200_000_000)
    profiles = [
        result.profile(instructions=scale),
        lookup("gobmk").scaled(scale),
        lookup("sjeng").scaled(scale),
        lookup("perlbench").scaled(scale),
    ]
    run = MulticoreSimulation(
        machine, profiles, ReliabilityScheduler(machine, 4)
    ).run()
    return result, run


def bench_ext_stressmark(benchmark):
    result, run = benchmark.pedantic(_extension, rounds=1, iterations=1)

    suite_avfs = sorted(big_core_avf(p) for p in SUITE.values())
    stress = run.app("avf-stressmark")
    small_share = stress.time_small_seconds / stress.time_seconds
    lines = [
        "Extension: AVF stressmark search",
        f"stressmark big-core AVF: {100 * result.avf:.1f}% "
        f"({result.evaluations} model evaluations)",
        f"suite AVF range: {100 * suite_avfs[0]:.1f}% .. "
        f"{100 * suite_avfs[-1]:.1f}%",
        f"stressmark characteristics: dep={result.characteristics.dep_distance_mean:.1f}, "
        f"l1d/l2/l3 MPKI={result.characteristics.l1d_mpki:.0f}/"
        f"{result.characteristics.l2_mpki:.0f}/"
        f"{result.characteristics.l3_mpki:.0f}, "
        f"mlp={result.characteristics.mlp:.1f}, "
        f"branch MPKI={result.characteristics.branch_mpki:.1f}",
        "scheduled against three low-AVF co-runners (2B2S, "
        "reliability-optimized):",
        f"stressmark small-core time share: {100 * small_share:.0f}%",
    ]
    save_table("ext_stressmark", lines)

    assert result.avf > suite_avfs[-1]
    assert small_share > 0.8  # the scheduler protects the stressmark
