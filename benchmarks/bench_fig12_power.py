"""Figure 12: impact on chip-level and total system power.

Average power of the 2B2S four-program sweep under each scheduler.
Paper: reliability-optimized scheduling reduces chip power by 6 % and
system power by 6.2 % relative to performance-optimized scheduling --
the performance scheduler keeps high-occupancy (high-MLP, memory
intensive) applications on big cores where they burn power; the
reliability scheduler moves exactly those applications to the small
cores.
"""

from _harness import cached_sweep, machine_by_name, mean, save_table

from repro.power import PowerModel


def _figure12():
    machine = machine_by_name("2B2S")
    results = cached_sweep(machine, 4)
    model = PowerModel(machine)
    power = {
        name: [model.run_power(run) for run in runs]
        for name, runs in results.items()
    }
    return power


def bench_fig12_power(benchmark):
    power = benchmark.pedantic(_figure12, rounds=1, iterations=1)

    lines = ["Figure 12: average chip and system power per scheduler (W)",
             f"{'scheduler':>14s} {'chip W':>8s} {'system W':>9s}"]
    chip = {}
    system = {}
    for name, breakdowns in power.items():
        chip[name] = mean(p.chip_watts for p in breakdowns)
        system[name] = mean(p.system_watts for p in breakdowns)
        lines.append(f"{name:>14s} {chip[name]:8.2f} {system[name]:9.2f}")
    chip_saving = 1.0 - chip["reliability"] / chip["performance"]
    system_saving = 1.0 - system["reliability"] / system["performance"]
    lines.append(
        f"rel-opt vs perf-opt: chip {-100 * chip_saving:+.1f}%, "
        f"system {-100 * system_saving:+.1f}% "
        "[paper: -6 % chip, -6.2 % system]"
    )
    save_table("fig12_power", lines)

    # Shape: the reliability scheduler consumes less power than the
    # performance scheduler at both chip and system level.
    assert chip["reliability"] < chip["performance"]
    assert system["reliability"] < system["performance"]
    assert chip_saving > 0.01
