"""Figure 8: SSER across asymmetric HCMPs with four cores.

Four-program workloads on 1B3S, 2B2S and 3B1S.  Paper: the symmetric
2B2S configuration gains the most (6 scheduling choices vs 4); the
3B1S machine gains the least (7.8 %) because a single small core
limits the opportunity to protect vulnerable applications; 1B3S sits
in between (27.5 %).
"""

from _harness import (
    cached_sweep,
    machine_by_name,
    mean,
    save_table,
    sser_ratios,
    stp_ratios,
)

MACHINES = ("1B3S", "2B2S", "3B1S")


def _figure8():
    return {
        name: cached_sweep(machine_by_name(name), 4) for name in MACHINES
    }


def bench_fig08_asymmetric(benchmark):
    per_machine = benchmark.pedantic(_figure8, rounds=1, iterations=1)

    lines = ["Figure 8: normalized SSER across asymmetric 4-core HCMPs "
             "(relative to random)",
             f"{'machine':>8s} {'perf SSER':>10s} {'rel SSER':>9s} "
             f"{'rel STP vs perf':>16s}"]
    reductions = {}
    for name in MACHINES:
        results = per_machine[name]
        rel = mean(sser_ratios(results, "reliability", "random"))
        perf = mean(sser_ratios(results, "performance", "random"))
        stp = mean(stp_ratios(results, "reliability", "performance"))
        reductions[name] = 1.0 - rel
        lines.append(f"{name:>8s} {perf:10.3f} {rel:9.3f} {stp:16.3f}")
    lines.append("paper: 1B3S -27.5 %, 2B2S -32 %, 3B1S -7.8 % vs random")
    save_table("fig08_asymmetric", lines)

    # Shape: 3B1S clearly gains the least (one small core limits the
    # opportunity to protect vulnerable applications); 2B2S and 1B3S
    # both gain a lot.  In the paper 2B2S leads 1B3S by ~4.5 points;
    # in this reproduction the two are within a couple of points of
    # each other (see EXPERIMENTS.md), so the assertion allows a
    # near-tie rather than a strict ordering.
    assert reductions["2B2S"] > reductions["3B1S"] + 0.05
    assert reductions["1B3S"] > reductions["3B1S"] + 0.05
    assert reductions["2B2S"] > reductions["1B3S"] - 0.03
    assert reductions["3B1S"] > 0.0
    # Performance stays within the paper's ballpark on every machine.
    for name in MACHINES:
        stp = mean(
            stp_ratios(per_machine[name], "reliability", "performance")
        )
        assert stp > 0.85
