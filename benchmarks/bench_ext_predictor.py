"""Extension: scheduling on predicted ABC (zero counter hardware).

The paper's area-optimized counters cost 296 bytes/core; the related
work (Walcott et al. [29], Duan et al. [14]) predicts vulnerability
from existing performance counters instead.  This bench runs
Algorithm 1 three ways -- full counters, ROB-only counters, and a
performance-counter regression with *no* ACE hardware at all -- and
compares the SSER reductions.  The expected shape: prediction recovers
most of the benefit, counters remain slightly better.
"""

from _harness import (
    SCALE,
    cached_sweep,
    machine_by_name,
    mean,
    save_table,
    workloads,
)

from repro.ace.counters import AceCounterMode
from repro.ace.predictor import PredictedReliabilityScheduler, train_predictor
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark as lookup


def _extension():
    machine = machine_by_name("2B2S")
    baseline = cached_sweep(machine, 4, ("random",))
    full = cached_sweep(machine, 4, ("reliability",))
    rob = cached_sweep(
        machine, 4, ("reliability",), counter_mode=AceCounterMode.ROB_ONLY
    )
    predictor = train_predictor()
    predicted = []
    for mix in workloads(4):
        profiles = [lookup(n).scaled(SCALE) for n in mix.benchmarks]
        predicted.append(
            MulticoreSimulation(
                machine, profiles,
                PredictedReliabilityScheduler(machine, 4, predictor),
            ).run()
        )
    return {
        "random": baseline["random"],
        "full counters (904 B)": full["reliability"],
        "ROB-only counters (296 B)": rob["reliability"],
        "perf-counter prediction (0 B)": predicted,
    }, predictor


def bench_ext_predictor(benchmark):
    results, predictor = benchmark.pedantic(_extension, rounds=1, iterations=1)

    lines = ["Extension: Algorithm 1 with counters vs counter-free ABC "
             "prediction (normalized SSER vs random, 2B2S)",
             f"training R^2: big {predictor.training_r2['big']:.3f}, "
             f"small {predictor.training_r2['small']:.3f}",
             f"{'ABC source':>30s} {'SSER vs random':>15s}"]
    reductions = {}
    for label, runs in results.items():
        if label == "random":
            continue
        ratios = [
            r.sser / b.sser for r, b in zip(runs, results["random"])
        ]
        reductions[label] = mean(ratios)
        lines.append(f"{label:>30s} {mean(ratios):15.3f}")
    save_table("ext_predictor", lines)

    full = reductions["full counters (904 B)"]
    predicted = reductions["perf-counter prediction (0 B)"]
    # Prediction recovers a large share of the counter benefit...
    assert predicted < 0.92
    # ...but dedicated counters are at least as good.
    assert full <= predicted + 0.03
