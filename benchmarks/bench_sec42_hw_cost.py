"""Section 4.2: hardware cost of the ACE-bit counter architecture.

Regenerates the cost arithmetic: baseline big-core counters 904
bytes/core, area-optimized ROB-only counters 296 bytes/core, in-order
core counters 67 bytes -- the exact numbers the paper reports.
"""

from _harness import save_table

from repro.ace.hardware_cost import (
    baseline_big_core_cost,
    in_order_core_cost,
    rob_only_big_core_cost,
)
from repro.config import big_core_config, small_core_config


def _costs():
    big, small = big_core_config(), small_core_config()
    return {
        "baseline big-core (all structures)": baseline_big_core_cost(big),
        "area-optimized big-core (ROB only)": rob_only_big_core_cost(big),
        "in-order core": in_order_core_cost(small),
    }


def bench_sec42_hw_cost(benchmark):
    costs = benchmark.pedantic(_costs, rounds=1, iterations=1)

    lines = ["Section 4.2: counter architecture hardware cost",
             f"{'implementation':36s} {'storage':>8s} {'adders':>7s} "
             f"{'bit-eq':>7s} {'bytes':>6s}"]
    for label, cost in costs.items():
        lines.append(
            f"{label:36s} {cost.storage_bits:8d} {cost.adders:7d} "
            f"{cost.bit_equivalents:7d} {cost.bytes:6d}"
        )
    lines.append("paper: 904 / 296 / 67 bytes")
    save_table("sec42_hw_cost", lines)

    assert costs["baseline big-core (all structures)"].bytes == 904
    assert costs["area-optimized big-core (ROB only)"].bytes == 296
    assert costs["in-order core"].bytes == 67
