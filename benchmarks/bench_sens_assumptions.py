"""Robustness: the headline result under varied modeling assumptions.

Re-runs the headline comparison while varying, one at a time, the
knobs that had to be chosen without the paper's testbed: scheduler
quantum, migration overhead, swap hysteresis, the LLC-sharing
exponent, and the workload-generation seed.  The paper's conclusion
(reliability-aware scheduling cuts SSER substantially at a bounded
throughput cost) must hold at every point.
"""

from _harness import SCALE, save_table

from repro.analysis.sensitivity import sweep_assumptions

#: Workloads per point (category-diverse subsample).
WORKLOADS = 12


def _sensitivity():
    return sweep_assumptions(
        instructions=min(SCALE, 200_000_000),
        workload_count=WORKLOADS,
    )


def bench_sens_assumptions(benchmark):
    points = benchmark.pedantic(_sensitivity, rounds=1, iterations=1)

    lines = ["Sensitivity: headline metrics while varying one modeling "
             "assumption at a time",
             f"{'assumption':28s} {'value':>10s} {'rel/rand SSER':>14s} "
             f"{'rel/perf STP':>13s}"]
    for p in points:
        lines.append(
            f"{p.assumption:28s} {p.value:10.4g} {p.sser_vs_random:14.3f} "
            f"{p.stp_vs_performance:13.3f}"
        )
    ssers = [p.sser_vs_random for p in points]
    lines.append(
        f"SSER-reduction band across all assumptions: "
        f"{100 * (1 - max(ssers)):.1f}% .. {100 * (1 - min(ssers)):.1f}%"
    )
    save_table("sens_assumptions", lines)

    for p in points:
        assert p.sser_vs_random < 0.92, p
        assert p.stp_vs_performance > 0.85, p
