"""Ablation: how much does shared-resource interference matter?

The Section 2.4 oracle assumes no interference; the online scheduler
runs with a shared LLC and memory bus.  This ablation replays each
workload's oracle-optimal static assignment inside the full simulator
(with interference) and compares (a) the oracle's predicted SSER with
the measured SSER, and (b) the oracle replay with the online
scheduler.
"""

from _harness import SCALE, machine_by_name, mean, save_table, workloads

from repro.sched.oracle import StaticScheduler, best_sser_schedule
from repro.sim.experiment import run_workload
from repro.sim.isolated import isolated_stats
from repro.sim.multicore import MulticoreSimulation, default_models
from repro.metrics.reliability import DEFAULT_IFR
from repro.workloads.spec2006 import benchmark as lookup


def _ablation():
    machine = machine_by_name("2B2S")
    models = default_models(machine)
    stats_cache = {}
    rows = []
    for index, mix in enumerate(workloads(4)):
        stats = []
        for name in mix.benchmarks:
            if name not in stats_cache:
                stats_cache[name] = isolated_stats(
                    lookup(name).scaled(SCALE), models["big"], models["small"]
                )
            stats.append(stats_cache[name])
        oracle = best_sser_schedule(stats, machine)
        profiles = [lookup(n).scaled(SCALE) for n in mix.benchmarks]
        replay = MulticoreSimulation(
            machine, profiles,
            StaticScheduler(machine, 4, oracle.big_apps),
        ).run()
        online = run_workload(machine, mix, "reliability",
                              instructions=SCALE, seed=index)
        rows.append((mix, oracle.sser * DEFAULT_IFR, replay.sser, online.sser))
    return rows


def bench_abl_interference(benchmark):
    rows = benchmark.pedantic(_ablation, rounds=1, iterations=1)

    lines = ["Ablation: interference-free oracle prediction vs measured "
             "execution",
             f"{'workload':>10s} {'measured/predicted':>19s} "
             f"{'online/oracle-replay':>21s}"]
    prediction_gap, online_gap = [], []
    for mix, predicted, replay_sser, online_sser in rows:
        prediction_gap.append(replay_sser / predicted)
        online_gap.append(online_sser / replay_sser)
        lines.append(f"{mix.category:>10s} {replay_sser / predicted:19.3f} "
                     f"{online_sser / replay_sser:21.3f}")
    lines.append(f"{'MEAN':>10s} {mean(prediction_gap):19.3f} "
                 f"{mean(online_gap):21.3f}")
    lines.append("conclusion: interference inflates SSER beyond the "
                 "no-interference prediction; the online scheduler "
                 "tracks the oracle replay closely")
    save_table("abl_interference", lines)

    # Interference makes the measured SSER at least the predicted one.
    assert mean(prediction_gap) >= 1.0
    # The online scheduler stays within ~15 % of its own oracle replay.
    assert mean(online_gap) < 1.15
