"""Figure 4: ABC over time for calculix and povray.

Left graph: per-quantum ABC of calculix and povray executed in
isolation on a big core (calculix shows a large ABC drop in its final
phase; povray is nearly constant).  Right graph: the two co-running on
a 1B1S HCMP under the reliability-aware scheduler -- calculix starts
on the small core because of its higher big-core ABC, and the
scheduler swaps the two applications when calculix's phase changes.
"""

from _harness import SCALE as _BASE_SCALE, machine_by_name, mean, save_table

#: The phase-change reaction needs enough scheduler quanta to play
#: out (staleness sampling every 10 quanta); cap the scale from below.
SCALE = max(_BASE_SCALE, 500_000_000)

from repro.config import BIG
from repro.sched.reliability import ReliabilityScheduler
from repro.sched.oracle import StaticScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark as lookup


def _isolated_timeline(name):
    """Per-quantum ABC of one benchmark alone on a big core.

    Runs the application on the big core of a 1B1S machine with an
    idle-placeholder co-runner pinned to the small core.
    """
    machine = machine_by_name("1B1S")
    # povray is the natural placeholder; for povray itself use gamess.
    other = "gamess" if name == "povray" else "povray"
    profiles = [lookup(name).scaled(SCALE), lookup(other).scaled(SCALE)]
    sim = MulticoreSimulation(
        machine, profiles, StaticScheduler(machine, 2, big_apps=(0,)),
        record_timeline=True,
    )
    result = sim.run()
    return [p for p in result.timeline if p.app_name == name]


def _corun_timeline():
    machine = machine_by_name("1B1S")
    profiles = [lookup("calculix").scaled(SCALE), lookup("povray").scaled(SCALE)]
    sim = MulticoreSimulation(
        machine, profiles, ReliabilityScheduler(machine, 2),
        record_timeline=True,
    )
    return sim.run()


def _figure4():
    return {
        "calculix_isolated": _isolated_timeline("calculix"),
        "povray_isolated": _isolated_timeline("povray"),
        "corun": _corun_timeline(),
    }


def _downsample(points, limit=60):
    step = max(1, len(points) // limit)
    return points[::step]


def _first_pass(points, total_instructions):
    """Truncate a per-quantum timeline at the first full pass."""
    done = 0
    kept = []
    for p in points:
        kept.append(p)
        done += p.instructions
        if done >= total_instructions:
            break
    return kept


def bench_fig04_abc_timeline(benchmark):
    data = benchmark.pedantic(_figure4, rounds=1, iterations=1)

    lines = ["Figure 4: ABC per quantum (average resident ACE bits)"]
    calculix = _first_pass(data["calculix_isolated"], SCALE)
    povray = _first_pass(data["povray_isolated"], SCALE)
    for key, points in (("calculix", calculix), ("povray", povray)):
        lines.append(f"-- {key} (isolated big core, first pass) --")
        for p in _downsample(points):
            lines.append(f"t={1e3 * p.time_seconds:8.2f}ms "
                         f"abc={p.abc_per_second:10.0f}")
    corun = data["corun"]
    lines.append("-- co-run on 1B1S under reliability-aware scheduling --")
    for p in _downsample(corun.timeline, limit=120):
        lines.append(f"t={1e3 * p.time_seconds:8.2f}ms {p.app_name:9s} "
                     f"core={p.core_type:5s} "
                     f"abc={p.abc_per_second:10.0f}")
    save_table("fig04_abc_timeline", lines)

    # Shape 1: calculix's isolated ABC drops sharply in the last phase.
    n = len(calculix)
    early = mean(p.abc_per_second for p in calculix[: int(0.6 * n)])
    late = mean(p.abc_per_second for p in calculix[int(0.85 * n):])
    assert late < 0.6 * early

    # Shape 2: povray's isolated ABC is nearly constant.
    values = [p.abc_per_second for p in povray]
    assert max(values) < 1.6 * (sum(values) / len(values))

    # Shape 3: under co-running, calculix starts on the small core
    # (higher big-core ABC) and moves to the big core after its phase
    # change, swapping with povray.
    calculix_points = _first_pass(
        [p for p in corun.timeline if p.app_name == "calculix"], SCALE
    )
    first_quarter = calculix_points[: max(1, len(calculix_points) // 4)]
    last_quarter = calculix_points[-max(1, len(calculix_points) // 4):]
    small_early = sum(1 for p in first_quarter if p.core_type != BIG)
    big_late = sum(1 for p in last_quarter if p.core_type == BIG)
    assert small_early / len(first_quarter) > 0.6
    assert big_late / len(last_quarter) > 0.6
