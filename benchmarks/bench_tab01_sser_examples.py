"""Table 1: the illustrative SSER examples.

Regenerates the paper's three worked examples of the SSER metric:
(a) a homogeneous multicore without interference (SSER = 2),
(b) one application slowed down 2x (SSER = 3), and
(c) a heterogeneous multicore where the small-core application has
SER 1/8 at slowdown 4 (wSER = 0.5, SSER = 1.5).
"""

from _harness import save_table

from repro.metrics.reliability import ApplicationReliability, sser


def _app(name, ser, slowdown, ref=1.0):
    time = slowdown * ref
    return ApplicationReliability(
        name=name, abc=ser * time, time_seconds=time,
        reference_time_seconds=ref,
    )


def _table1():
    examples = {
        "(a) homogeneous multicore": [
            _app("benchmark A on big", 1.0, 1.0),
            _app("benchmark B on big", 1.0, 1.0),
        ],
        "(b) homogeneous multicore": [
            _app("benchmark A on big", 1.0, 2.0),
            _app("benchmark B on big", 1.0, 1.0),
        ],
        "(c) heterogeneous multicore": [
            _app("benchmark A on small", 1.0 / 8.0, 4.0),
            _app("benchmark B on big", 1.0, 1.0),
        ],
    }
    return {label: (apps, sser(apps, ifr=1.0)) for label, apps in examples.items()}


def bench_tab01_sser_examples(benchmark):
    table = benchmark.pedantic(_table1, rounds=1, iterations=1)

    lines = ["Table 1: examples illustrating the SSER metric"]
    for label, (apps, total) in table.items():
        lines.append(f"{label}: SSER={total:g}")
        lines.append(f"  {'':24s} {'SER':>6s} {'slowdown':>9s} {'wSER':>6s}")
        for app in apps:
            lines.append(
                f"  {app.name:24s} {app.abc / app.time_seconds:6.3g} "
                f"{app.slowdown:9.3g} {app.wser_at(1.0):6.3g}"
            )
    save_table("tab01_sser_examples", lines)

    assert table["(a) homogeneous multicore"][1] == 2.0
    assert table["(b) homogeneous multicore"][1] == 3.0
    assert table["(c) heterogeneous multicore"][1] == 1.5
