"""Figure 1: sorted big-core AVF for the SPEC CPU2006 benchmarks.

Regenerates the AVF spectrum on the big out-of-order core together
with the H/M/L sensitivity classification derived from it (the paper
classifies the 8 highest-AVF benchmarks H, the 8 lowest L, the rest
M).  Shape checks: a wide AVF spread with the paper's named examples
on the right ends (milc, zeusmp high; mcf, libquantum low).
"""

from _harness import save_table

from repro.workloads.spec2006 import SUITE, big_core_avf, classify_benchmarks


def _figure1():
    avf = {name: big_core_avf(profile) for name, profile in SUITE.items()}
    classes = classify_benchmarks()
    ordered = sorted(avf, key=avf.get)
    return avf, classes, ordered


def bench_fig01_avf(benchmark):
    avf, classes, ordered = benchmark.pedantic(_figure1, rounds=1, iterations=1)

    lines = ["Figure 1: big-core AVF (sorted ascending), with H/M/L class",
             f"{'benchmark':12s} {'class':>5s} {'AVF %':>7s}"]
    for name in ordered:
        lines.append(f"{name:12s} {classes[name]:>5s} {100 * avf[name]:7.1f}")
    save_table("fig01_avf", lines)

    # Shape: wide spread, paper-named examples in the right classes.
    assert max(avf.values()) / min(avf.values()) > 2.5
    assert classes["milc"] == "H" and classes["zeusmp"] == "H"
    assert classes["mcf"] == "L" and classes["libquantum"] == "L"
    counts = {c: list(classes.values()).count(c) for c in "HML"}
    assert counts == {"H": 8, "M": 13, "L": 8}
