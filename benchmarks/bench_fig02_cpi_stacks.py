"""Figure 2: normalized big-core CPI stacks, ordered as Figure 1.

Regenerates the per-benchmark CPI stacks (base, resource stalls,
branch misprediction, I-cache, L2, LLC and memory components) on the
big core, ordered by big-core AVF.  Shape check: the low-AVF
(left-hand) benchmarks show substantially larger front-end miss
components than the high-AVF (right-hand) benchmarks -- the paper's
explanation for the AVF spectrum.
"""

from _harness import mean, save_table

from repro.config import MemoryConfig, big_core_config
from repro.cores import ISOLATED, MechanisticCoreModel
from repro.metrics.performance import normalize_cpi_stack
from repro.workloads.spec2006 import SUITE, big_core_avf

COMPONENTS = ("base", "resource", "bpred", "icache", "l2", "llc", "mem")


def _figure2():
    model = MechanisticCoreModel(big_core_config(), MemoryConfig())
    stacks = {}
    for name, profile in SUITE.items():
        combined = {c: 0.0 for c in COMPONENTS}
        for frac, chars in profile.phases:
            analysis = model.analyze(chars, ISOLATED)
            for c in COMPONENTS:
                combined[c] += frac * analysis.cpi_components[c]
        stacks[name] = normalize_cpi_stack(combined)
    order = sorted(SUITE, key=lambda n: big_core_avf(SUITE[n]))
    return stacks, order


def bench_fig02_cpi_stacks(benchmark):
    stacks, order = benchmark.pedantic(_figure2, rounds=1, iterations=1)

    lines = ["Figure 2: normalized CPI stacks (%) on the big core, "
             "ordered by big-core AVF",
             f"{'benchmark':12s} " + " ".join(f"{c:>8s}" for c in COMPONENTS)]
    for name in order:
        row = " ".join(f"{100 * stacks[name][c]:8.1f}" for c in COMPONENTS)
        lines.append(f"{name:12s} {row}")
    save_table("fig02_cpi_stacks", lines)

    # Shape: the front-end miss share (bpred + icache) is much larger
    # on the low-AVF side than on the high-AVF side.
    front_end = {
        name: stacks[name]["bpred"] + stacks[name]["icache"] for name in order
    }
    low_side = mean(front_end[n] for n in order[:8])
    high_side = mean(front_end[n] for n in order[-8:])
    assert low_side > 3 * high_side
