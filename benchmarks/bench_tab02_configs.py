"""Table 2: big and small core configurations.

Regenerates the configuration table from the library's machine
description and asserts the values match the paper exactly.
"""

from _harness import save_table

from repro.config import MemoryConfig, big_core_config, small_core_config


def _table2():
    return big_core_config(), small_core_config(), MemoryConfig()


def bench_tab02_configs(benchmark):
    big, small, memory = benchmark.pedantic(_table2, rounds=1, iterations=1)

    def fmt(core):
        rob = (f"{core.rob.entries}, {core.rob.bits_per_entry} bit/entry"
               if core.rob else "-")
        lq = (f"{core.load_queue.entries}, "
              f"{core.load_queue.bits_per_entry} bit/entry"
              if core.load_queue else "-")
        fus = "; ".join(
            f"{p.count}x {p.instruction_class.name.lower()} ({p.latency} cyc)"
            for p in core.functional_units
        )
        return [
            f"  frequency        {core.frequency_ghz} GHz",
            f"  type             {'out-of-order' if core.out_of_order else 'in-order'}",
            f"  ROB              {rob}",
            f"  issue queue      {core.issue_queue.entries}, "
            f"{core.issue_queue.bits_per_entry} bit/entry",
            f"  load queue       {lq}",
            f"  store queue      {core.store_queue.entries}, "
            f"{core.store_queue.bits_per_entry} bit/entry",
            f"  pipeline width   {core.width}",
            f"  frontend depth   {core.frontend_depth} stages",
            f"  functional units {fus}",
            f"  register file    {core.register_file.int_registers} int "
            f"({core.register_file.int_bits} bit), "
            f"{core.register_file.fp_registers} fp "
            f"({core.register_file.fp_bits} bit)",
        ]

    lines = ["Table 2: big and small core configurations", "big core:"]
    lines += fmt(big)
    lines.append("small core:")
    lines += fmt(small)
    lines.append(
        f"caches: L1I {memory.l1i.size_bytes // 1024} KB/"
        f"{memory.l1i.associativity}w/{memory.l1i.latency_cycles}cyc, "
        f"L1D {memory.l1d.size_bytes // 1024} KB/"
        f"{memory.l1d.associativity}w/{memory.l1d.latency_cycles}cyc, "
        f"L2 {memory.l2.size_bytes // 1024} KB/"
        f"{memory.l2.associativity}w/{memory.l2.latency_cycles}cyc, "
        f"L3 {memory.l3.size_bytes // (1024 * 1024)} MB/"
        f"{memory.l3.associativity}w/{memory.l3.latency_cycles}cyc"
    )
    lines.append(
        f"memory: BW {memory.dram_bandwidth_gbps} GB/s, "
        f"lat {memory.dram_latency_ns} ns"
    )
    save_table("tab02_configs", lines)

    assert big.rob.entries == 128 and big.rob.bits_per_entry == 76
    assert small.pipeline_latches.entries == 10
    assert memory.l3.size_bytes == 8 * 1024 * 1024
    assert big.frequency_ghz == small.frequency_ghz == 2.66
