"""Figure 9: lowering the small-core frequency to 1.33 GHz.

Paper: reliability-aware scheduling is robust to the frequency
setting -- it still reduces SSER by 29.8 % vs random with the small
cores at half clock (slightly less than at full clock, because the
slower small core increases weighted SER through larger slowdowns).
The performance-optimized scheduler improves reliability *more* at
the lower frequency (13 % vs 7.3 %) as a side effect of the wider
performance gap.
"""

from _harness import (
    cached_sweep,
    machine_by_name,
    mean,
    save_table,
    sser_ratios,
)


def _figure9():
    machine = machine_by_name("2B2S")
    return {
        2.66: cached_sweep(machine, 4),
        1.33: cached_sweep(machine, 4, small_frequency_ghz=1.33),
    }


def bench_fig09_frequency(benchmark):
    per_freq = benchmark.pedantic(_figure9, rounds=1, iterations=1)

    lines = ["Figure 9: normalized SSER on 2B2S with the small cores at "
             "2.66 vs 1.33 GHz (relative to random)",
             f"{'small-core freq':>15s} {'perf SSER':>10s} {'rel SSER':>9s}"]
    stats = {}
    for freq, results in per_freq.items():
        rel = mean(sser_ratios(results, "reliability", "random"))
        perf = mean(sser_ratios(results, "performance", "random"))
        stats[freq] = (perf, rel)
        lines.append(f"{freq:14.2f}G {perf:10.3f} {rel:9.3f}")
    lines.append("paper: rel-opt -32 % @2.66 GHz, -29.8 % @1.33 GHz; "
                 "perf-opt -7.3 % @2.66 GHz, -13 % @1.33 GHz")
    save_table("fig09_frequency", lines)

    # Shape: the reliability scheduler still wins big at half clock...
    assert stats[1.33][1] < 0.90
    # ...slightly less than at full clock...
    assert stats[1.33][1] >= stats[2.66][1] - 0.02
    # ...and the perf-opt side effect grows at the lower frequency.
    assert stats[1.33][0] < stats[2.66][0]
