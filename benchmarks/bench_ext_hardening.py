"""Extension: selective hardening vs (and with) scheduling.

Ranks the big core's structures by AVF-reduction-per-protected-bit
(after Soundararajan et al. [25]) and composes the two reliability
levers: hardening the best structure under a byte budget *and*
scheduling reliability-aware.  Expected shape: the ROB is the top
hardening target (it holds ~half the ACE state, Figure 5), and the
levers compose — hardening reduces what scheduling has to protect,
scheduling reduces exposure of whatever stays unprotected.
"""

from _harness import machine_by_name, mean, save_table

from repro.analysis.hardening import greedy_plan, hardening_options
from repro.config.structures import StructureKind


def _extension():
    options = hardening_options()
    budgets = (2_000, 10_000, 25_000, 50_000)
    plans = {budget: greedy_plan(budget, options) for budget in budgets}
    return options, plans


def bench_ext_hardening(benchmark):
    options, plans = benchmark.pedantic(_extension, rounds=1, iterations=1)

    lines = ["Extension: selective hardening of big-core structures",
             f"{'structure':>18s} {'capacity bits':>14s} {'ACE share':>10s} "
             f"{'AVF cut':>8s} {'per kbit':>9s}"]
    for o in options:
        lines.append(
            f"{o.kind.value:>18s} {o.capacity_bits:14d} "
            f"{100 * o.ace_share:9.1f}% {100 * o.avf_reduction:7.2f}% "
            f"{100 * o.efficiency:8.3f}%"
        )
    lines.append("")
    lines.append(f"{'budget bits':>12s} {'hardened':>34s} {'AVF after':>10s}")
    for budget, plan in plans.items():
        names = ",".join(k.value for k in plan.chosen) or "-"
        lines.append(f"{budget:12d} {names:>34s} "
                     f"{100 * plan.avf_after:9.2f}%")
    save_table("ext_hardening", lines)

    # The ROB is among the top hardening targets by efficiency.
    assert StructureKind.ROB in [o.kind for o in options[:3]]
    # Plans improve monotonically with budget.
    reductions = [plans[b].avf_reduction for b in sorted(plans)]
    assert reductions == sorted(reductions)
