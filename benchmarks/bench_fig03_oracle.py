"""Figure 3: oracle reliability-aware scheduling potential.

For every four-program workload on a 2B2S HCMP, enumerates all six
static schedules from isolated per-core-type runs (no interference,
exactly as Section 2.4), picks the best-STP and the best-SSER
schedule, and reports the SER gain and STP loss of the reliability
oracle relative to the performance oracle.  Paper: 27.2 % average SER
reduction (up to 62.8 %) at 7 % average STP loss.
"""

from _harness import SCALE, machine_by_name, mean, save_table, workloads

from repro.sched.oracle import best_sser_schedule, best_stp_schedule
from repro.sim.isolated import isolated_stats
from repro.sim.multicore import default_models
from repro.workloads.spec2006 import benchmark as lookup


def _figure3():
    machine = machine_by_name("2B2S")
    models = default_models(machine)
    stats_cache = {}
    rows = []
    for mix in workloads(4):
        stats = []
        for name in mix.benchmarks:
            if name not in stats_cache:
                stats_cache[name] = isolated_stats(
                    lookup(name).scaled(SCALE), models["big"], models["small"]
                )
            stats.append(stats_cache[name])
        sser_best = best_sser_schedule(stats, machine)
        stp_best = best_stp_schedule(stats, machine)
        rows.append(
            (
                mix,
                1.0 - sser_best.sser / stp_best.sser,  # SER gain
                1.0 - sser_best.stp / stp_best.stp,  # STP loss
            )
        )
    return rows


def bench_fig03_oracle(benchmark):
    rows = benchmark.pedantic(_figure3, rounds=1, iterations=1)

    rows_sorted = sorted(rows, key=lambda r: r[1])
    lines = ["Figure 3: oracle SER gain and STP loss vs performance "
             "oracle (per workload, sorted by SER gain)",
             f"{'workload':34s} {'SER gain %':>10s} {'STP loss %':>10s}"]
    for mix, gain, loss in rows_sorted:
        label = f"{mix.category}:" + "+".join(mix.benchmarks)
        lines.append(f"{label[:34]:34s} {100 * gain:10.1f} {100 * loss:10.1f}")
    gains = [r[1] for r in rows]
    losses = [r[2] for r in rows]
    lines.append(
        f"{'AVERAGE':34s} {100 * mean(gains):10.1f} {100 * mean(losses):10.1f}"
    )
    lines.append("paper: 27.2 % average SER gain (max 62.8 %), "
                 "7 % average STP loss")
    save_table("fig03_oracle", lines)

    # Shape: substantial average SER gain, much larger than the STP
    # loss, with a long positive tail.
    assert mean(gains) > 0.10
    assert mean(gains) > 2 * mean(losses)
    assert max(gains) > 0.30
    assert all(g >= -1e-9 for g in gains)
