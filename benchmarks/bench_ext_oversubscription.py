"""Extension: reliability-aware scheduling under oversubscription.

The paper runs one application per core.  This extension evaluates a
multiprogramming level of 1.5 (six applications on the 2B2S machine):
a fair-share scheduler that additionally places the most vulnerable
of the running applications on the small cores, against random
selection+placement.  The headline effect must survive
oversubscription.
"""

from _harness import SCALE, machine_by_name, mean, save_table, workloads

from repro.sched.oversubscribed import OversubscribedReliabilityScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark as lookup


def _six_program_mixes():
    """Six-application mixes: the first six slots of the 8-program
    canonical workloads (category labels shortened accordingly)."""
    return [
        (mix.category[:6], mix.benchmarks[:6]) for mix in workloads(8)[::3]
    ]


def _extension():
    machine = machine_by_name("2B2S")
    rows = []
    for index, (category, names) in enumerate(_six_program_mixes()):
        profiles = [lookup(n).scaled(SCALE) for n in names]
        rel = MulticoreSimulation(
            machine, profiles,
            OversubscribedReliabilityScheduler(machine, 6),
        ).run()
        rnd = MulticoreSimulation(
            machine, profiles, RandomScheduler(machine, 6, seed=index)
        ).run()
        rows.append((category, rel.sser / rnd.sser, rel.stp / rnd.stp))
    return rows


def bench_ext_oversubscription(benchmark):
    rows = benchmark.pedantic(_extension, rounds=1, iterations=1)

    lines = ["Extension: six applications on 2B2S (multiprogramming "
             "level 1.5), reliability-aware fair sharing vs random",
             f"{'mix':>8s} {'SSER vs random':>15s} {'STP vs random':>14s}"]
    sser_ratios = [r[1] for r in rows]
    stp_ratios = [r[2] for r in rows]
    for category, sser, stp in rows:
        lines.append(f"{category:>8s} {sser:15.3f} {stp:14.3f}")
    lines.append(f"{'MEAN':>8s} {mean(sser_ratios):15.3f} "
                 f"{mean(stp_ratios):14.3f}")
    lines.append("conclusion: the reliability benefit survives "
                 "oversubscription")
    save_table("ext_oversubscription", lines)

    assert mean(sser_ratios) < 0.90
    assert mean(stp_ratios) > 0.85
