"""Validation: Monte-Carlo fault injection vs ACE counting.

The paper's methodology (ACE analysis) is validated against the
alternative (statistical fault injection, Section 7.1): for a set of
benchmarks, random single-bit flips over the big core's structures
must estimate the same AVF the ACE counters compute.
"""

from _harness import save_table

from repro.ace.faultinject import FaultInjector
from repro.config import MemoryConfig, big_core_config
from repro.cores.base import ISOLATED
from repro.cores.ooo import OutOfOrderCoreModel
from repro.cores.tracebase import TraceApplication
from repro.workloads.generator import generate_trace
from repro.workloads.spec2006 import benchmark as lookup

BENCHES = ("gobmk", "mcf", "hmmer", "milc", "lbm", "povray")
TRIALS = 40_000
TRACE_LENGTH = 20_000


def _validation():
    model_config = big_core_config()
    rows = []
    for name in BENCHES:
        model = OutOfOrderCoreModel(model_config, MemoryConfig())
        trace = generate_trace(lookup(name), TRACE_LENGTH, seed=13)
        timing = model.simulate_window(
            TraceApplication(trace), 0, 50_000_000, ISOLATED
        )
        injector = FaultInjector(model_config, timing)
        result = injector.inject(trials=TRIALS, seed=13)
        rows.append((name, injector.counting_avf(), result))
    return rows


def bench_val_faultinject(benchmark):
    rows = benchmark.pedantic(_validation, rounds=1, iterations=1)

    lines = ["Validation: ACE-counting AVF vs Monte-Carlo fault "
             f"injection ({TRIALS} injections/benchmark)",
             f"{'benchmark':10s} {'counting':>9s} {'injected':>9s} "
             f"{'95% CI':>17s}"]
    for name, counting, result in rows:
        low, high = result.confidence_interval()
        lines.append(
            f"{name:10s} {100 * counting:8.2f}% {100 * result.avf_estimate:8.2f}% "
            f"[{100 * low:6.2f}%, {100 * high:6.2f}%]"
        )
    save_table("val_faultinject", lines)

    for name, counting, result in rows:
        low, high = result.confidence_interval(z=4.0)
        assert low <= counting <= high, name
