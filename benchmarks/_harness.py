"""Shared harness for the per-figure reproduction benches.

Every bench regenerates one table or figure of the paper: it runs the
experiment at the configured scale, prints the same rows/series the
paper reports, saves them under ``benchmarks/results/``, and asserts
the result's *shape* (who wins, roughly by how much).

Scale: set ``REPRO_BENCH_INSTRUCTIONS`` to override the per-benchmark
instruction count (default 1,000,000,000 -- the paper's SimPoint
length).  Smaller values (e.g. 100000000) give a quick pass with the
same qualitative results.

Sweeps are cached in-process so benches that share a configuration
(Figures 6, 7 and 12 all use the 2B2S four-program sweep) compute it
once; each bench's timed section is its own marginal work.

Parallelism: sweeps execute through the :mod:`repro.runtime` engine;
set ``REPRO_JOBS=N`` to fan each sweep out over N worker processes
(results are identical to a serial run).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

from repro.ace.counters import AceCounterMode
from repro.config import STANDARD_MACHINES, MachineConfig
from repro.runtime.engine import default_jobs
from repro.sim.experiment import sweep
from repro.sim.results import RunResult
from repro.workloads.mixes import WorkloadMix, generate_workloads

#: Instructions per benchmark (paper: 1e9).
SCALE = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", 1_000_000_000))

RESULTS_DIR = Path(__file__).parent / "results"

_SWEEP_CACHE: dict = {}
_WORKLOAD_CACHE: dict = {}


def workloads(num_programs: int) -> list[WorkloadMix]:
    if num_programs not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[num_programs] = generate_workloads(num_programs)
    return _WORKLOAD_CACHE[num_programs]


def machine_by_name(name: str) -> MachineConfig:
    return STANDARD_MACHINES[name]()


def cached_sweep(
    machine: MachineConfig,
    num_programs: int,
    scheduler_names: Sequence[str] = ("random", "performance", "reliability"),
    *,
    counter_mode: AceCounterMode = AceCounterMode.FULL,
    small_frequency_ghz: float | None = None,
    sampling: tuple[int, float] | None = None,
    cache_tag: str = "",
    jobs: int | None = None,
) -> dict[str, list[RunResult]]:
    """Run (or fetch) a full 36-workload sweep.

    Execution goes through the :mod:`repro.runtime` engine; set
    ``REPRO_JOBS`` (or pass ``jobs``) to fan the sweep out across
    worker processes.  Results are identical to a serial run.

    Args:
        machine: base machine configuration.
        num_programs: 2, 4 or 8 (must match the machine's core count).
        scheduler_names: schedulers to evaluate.
        counter_mode: ACE counter architecture for the schedulers.
        small_frequency_ghz: optional small-core frequency override.
        sampling: optional ``(period_quanta, sampling_quantum_seconds)``.
        cache_tag: extra cache-key component for custom machines.
        jobs: worker processes (default: the ``REPRO_JOBS`` env var).
    """
    if small_frequency_ghz is not None:
        machine = machine.with_small_frequency(small_frequency_ghz)
    if sampling is not None:
        machine = machine.with_sampling(sampling[0], sampling[1])
    key = (
        machine.name,
        num_programs,
        tuple(sorted(scheduler_names)),
        counter_mode,
        small_frequency_ghz,
        sampling,
        cache_tag,
        SCALE,
    )
    if key in _SWEEP_CACHE:
        return {
            name: _SWEEP_CACHE[key][name] for name in scheduler_names
        }
    results = sweep(
        machine,
        workloads(num_programs),
        scheduler_names,
        instructions=SCALE,
        counter_mode=counter_mode,
        jobs=jobs if jobs is not None else default_jobs(),
    )
    _SWEEP_CACHE[key] = results
    return results


def save_table(name: str, lines: Sequence[str]) -> Path:
    """Print a result table and save it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    print()
    print(text, end="")
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    return path


def mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values)


def sser_ratios(
    results: dict[str, list[RunResult]], numerator: str, denominator: str
) -> list[float]:
    return [
        a.sser / b.sser
        for a, b in zip(results[numerator], results[denominator])
    ]


def stp_ratios(
    results: dict[str, list[RunResult]], numerator: str, denominator: str
) -> list[float]:
    return [
        a.stp / b.stp
        for a, b in zip(results[numerator], results[denominator])
    ]


def by_category(
    results: dict[str, list[RunResult]], num_programs: int
) -> dict[str, dict[str, list[RunResult]]]:
    """Regroup sweep results per workload category."""
    grouped: dict[str, dict[str, list[RunResult]]] = {}
    for i, mix in enumerate(workloads(num_programs)):
        bucket = grouped.setdefault(
            mix.category, {name: [] for name in results}
        )
        for name in results:
            bucket[name].append(results[name][i])
    return grouped
