"""Figure 11: sensitivity to the sampling parameters (r, s).

Sweeps the sampling period r (quanta between staleness refreshes) and
the sampling quantum s (milliseconds) of the reliability scheduler on
the 2B2S machine.  Paper observations: reliability improves with
smaller sampling quanta (less sampling overhead) and with longer
sampling periods (the workloads are phase-stable), but some
phase-heavy workloads prefer frequent sampling.
"""

from _harness import (
    cached_sweep,
    machine_by_name,
    mean,
    save_table,
    sser_ratios,
    stp_ratios,
)

#: (r quanta, s milliseconds) points from the paper's sweep.
POINTS = (
    (10, 0.05),
    (10, 0.1),
    (10, 0.2),
    (5, 0.1),
    (20, 0.1),
    (100, 0.1),
)


def _figure11():
    machine = machine_by_name("2B2S")
    baseline = cached_sweep(machine, 4, ("random",))
    sweeps = {}
    for period, quantum_ms in POINTS:
        schedulers = ("reliability",)
        sweeps[(period, quantum_ms)] = cached_sweep(
            machine, 4, schedulers, sampling=(period, quantum_ms * 1e-3)
        )
    return baseline, sweeps


def bench_fig11_sampling(benchmark):
    baseline, sweeps = benchmark.pedantic(_figure11, rounds=1, iterations=1)

    lines = ["Figure 11: normalized SSER and STP of the reliability "
             "scheduler while varying the sampling parameters (r, s)",
             f"{'(r, s ms)':>12s} {'rel SSER':>9s} {'rel STP':>8s}"]
    stats = {}
    for (period, quantum_ms), results in sweeps.items():
        merged = {
            "reliability": results["reliability"],
            "random": baseline["random"],
        }
        sser = mean(sser_ratios(merged, "reliability", "random"))
        stp = mean(stp_ratios(merged, "reliability", "random"))
        stats[(period, quantum_ms)] = (sser, stp)
        lines.append(f"({period:3d}, {quantum_ms:4.2f}) {sser:9.3f} {stp:8.3f}")
    save_table("fig11_sampling", lines)

    default = stats[(10, 0.1)]
    # Shape 1: a shorter sampling quantum never hurts reliability much
    # (reduced sampling overhead).
    assert stats[(10, 0.05)][0] <= default[0] + 0.02
    # Shape 2: sampling less frequently (larger r) does not collapse
    # the benefit -- the workloads are phase-stable on average.
    assert stats[(100, 0.1)][0] < 0.95
    # Shape 3: every setting still improves on random scheduling.
    assert all(sser < 1.0 for sser, _ in stats.values())
