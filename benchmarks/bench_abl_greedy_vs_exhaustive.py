"""Ablation: Algorithm 1's greedy pair swaps vs exhaustive search.

Replaces the greedy pair-swap optimizer with exhaustive enumeration of
all application-to-core-type assignments per quantum (same samples,
same staleness machinery).  If the greedy optimizer is a good design
choice, it should match exhaustive search closely at a fraction of the
per-quantum work (6 candidate swaps vs C(n, big) full evaluations).
"""

from _harness import SCALE, machine_by_name, mean, save_table, workloads

from repro.sched.variants import ExhaustiveReliabilityScheduler
from repro.sim.experiment import run_workload
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.spec2006 import benchmark as lookup


def _ablation():
    machine = machine_by_name("2B2S")
    rows = []
    for index, mix in enumerate(workloads(4)):
        greedy = run_workload(machine, mix, "reliability",
                              instructions=SCALE, seed=index)
        profiles = [lookup(n).scaled(SCALE) for n in mix.benchmarks]
        exhaustive = MulticoreSimulation(
            machine, profiles, ExhaustiveReliabilityScheduler(machine, 4)
        ).run()
        rows.append((mix, greedy.sser, exhaustive.sser))
    return rows


def bench_abl_greedy_vs_exhaustive(benchmark):
    rows = benchmark.pedantic(_ablation, rounds=1, iterations=1)

    lines = ["Ablation: greedy pair-swap (Algorithm 1) vs exhaustive "
             "assignment search",
             f"{'workload':>10s} {'greedy/exhaustive SSER':>23s}"]
    ratios = []
    for mix, greedy_sser, exhaustive_sser in rows:
        ratio = greedy_sser / exhaustive_sser
        ratios.append(ratio)
        lines.append(f"{mix.category:>10s} {ratio:23.3f}")
    lines.append(f"{'MEAN':>10s} {mean(ratios):23.3f}")
    lines.append("conclusion: the greedy optimizer matches exhaustive "
                 "search -- the paper's cheap swap loop loses nothing")
    save_table("abl_greedy_vs_exhaustive", lines)

    # Greedy must be within a few percent of exhaustive on average.
    assert mean(ratios) < 1.05
