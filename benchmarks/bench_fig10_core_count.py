"""Figure 10: SSER vs core count, plus the ROB-only counter ablation.

Two-, four- and eight-program workloads on symmetric HCMPs (1B1S,
2B2S, 4B4S), and the 2B2S configuration re-run with the scheduler
reading the area-optimized ROB-only counters.  Paper: reductions of
29.3 % / 32 % / 29.8 % across core counts, and 31.6 % with ROB-only
counters vs 32 % with full counters -- the proxy is essentially free.
"""

from _harness import (
    cached_sweep,
    machine_by_name,
    mean,
    save_table,
    sser_ratios,
    stp_ratios,
)

from repro.ace.counters import AceCounterMode

CONFIGS = (("1B1S", 2), ("2B2S", 4), ("4B4S", 8))


def _figure10():
    sweeps = {
        name: cached_sweep(machine_by_name(name), nprog)
        for name, nprog in CONFIGS
    }
    sweeps["2B2S (ROB ABC)"] = cached_sweep(
        machine_by_name("2B2S"), 4, counter_mode=AceCounterMode.ROB_ONLY
    )
    return sweeps


def bench_fig10_core_count(benchmark):
    sweeps = benchmark.pedantic(_figure10, rounds=1, iterations=1)

    lines = ["Figure 10: normalized SSER vs core count, and ROB-only "
             "counter ablation (relative to random)",
             f"{'config':>14s} {'perf SSER':>10s} {'rel SSER':>9s} "
             f"{'rel STP vs perf':>16s}"]
    reductions = {}
    for label, results in sweeps.items():
        rel = mean(sser_ratios(results, "reliability", "random"))
        perf = mean(sser_ratios(results, "performance", "random"))
        stp = mean(stp_ratios(results, "reliability", "performance"))
        reductions[label] = 1.0 - rel
        lines.append(f"{label:>14s} {perf:10.3f} {rel:9.3f} {stp:16.3f}")
    lines.append("paper: 1B1S -29.3 %, 2B2S -32 %, 4B4S -29.8 %; "
                 "ROB-only -31.6 % vs full -32 %")
    save_table("fig10_core_count", lines)

    # Shape: consistent substantial reductions across core counts.
    for name, _ in CONFIGS:
        assert reductions[name] > 0.12, name
    # The ROB-only counters track the full counters closely.
    assert abs(
        reductions["2B2S (ROB ABC)"] - reductions["2B2S"]
    ) < 0.05
    # Performance within the paper's bound at every core count.
    for label, results in sweeps.items():
        assert mean(stp_ratios(results, "reliability", "performance")) > 0.85
