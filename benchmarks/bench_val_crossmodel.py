"""Validation: mechanistic vs trace-driven model agreement.

The mechanistic model (used for paper-scale runs) is validated against
the detailed trace-driven pipeline models: across a benchmark sample
spanning the AVF spectrum, the two levels must agree on the *ranking*
of per-benchmark IPC and ACE-bit rates on both core types -- the
relative quantities scheduling decisions depend on.
"""

from _harness import save_table

from repro.validation.crossmodel import DEFAULT_BENCHMARKS, compare_models

TRACE_INSTRUCTIONS = 30_000


def _validation():
    return compare_models(trace_instructions=TRACE_INSTRUCTIONS)


def bench_val_crossmodel(benchmark):
    agreement = benchmark.pedantic(_validation, rounds=1, iterations=1)

    lines = ["Validation: mechanistic vs trace-driven core models "
             f"({TRACE_INSTRUCTIONS}-instruction traces)",
             f"{'benchmark':12s} {'core':>5s} {'IPC tr/mech':>12s} "
             f"{'ABC/c tr/mech':>16s}"]
    for row in agreement.rows:
        lines.append(
            f"{row.name:12s} {row.core_type:>5s} "
            f"{row.trace_ipc:5.2f}/{row.mechanistic_ipc:5.2f} "
            f"{row.trace_abc_per_cycle:7.0f}/{row.mechanistic_abc_per_cycle:7.0f}"
        )
    for core in ("big", "small"):
        lines.append(
            f"{core} core Spearman: IPC {agreement.spearman_ipc(core):.3f}, "
            f"ABC {agreement.spearman_abc(core):.3f}"
        )
    save_table("val_crossmodel", lines)

    assert agreement.spearman_ipc("big") > 0.7
    assert agreement.spearman_abc("big") > 0.7
    assert agreement.spearman_ipc("small") > 0.7
    # Small-core ABC is nearly flat in both models; check values.
    for row in agreement.per_core("small"):
        assert 0.7 < row.abc_ratio < 1.4, row
