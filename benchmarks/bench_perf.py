"""Simulation hot-path performance benchmarks (`repro bench`).

Unlike the figure benches, this bench measures the *simulator itself*:
trace generation, the trace cache, batched cache access, the OoO and
in-order window kernels against their straight-line references, and a
small end-to-end sweep.  It writes ``BENCH_PERF.json`` next to the
repository root (override with ``--output``) so the performance
trajectory is tracked PR-over-PR; see docs/performance.md.

Usage::

    python benchmarks/bench_perf.py [--quick] [--output PATH]
                                    [--min-ooo-speedup FACTOR]
"""

from __future__ import annotations

import sys

from repro.cli.main import main

if __name__ == "__main__":
    raise SystemExit(main(["bench", *sys.argv[1:]]))
