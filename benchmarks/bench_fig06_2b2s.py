"""Figure 6: SSER and STP on a 2B2S HCMP, normalized to random.

The paper's headline experiment: all 36 four-program workloads under
the reliability- and performance-optimized schedulers, normalized to
the random scheduler.  Paper numbers: reliability-optimized reduces
SSER by 32 % on average (up to 55.6 %) vs random and by 25.4 % (up to
60.2 %) vs performance-optimized, while losing only 6.3 % STP vs
performance-optimized and roughly matching random's STP.
"""

from _harness import (
    cached_sweep,
    machine_by_name,
    mean,
    save_table,
    sser_ratios,
    stp_ratios,
    workloads,
)


def _figure6():
    return cached_sweep(machine_by_name("2B2S"), 4)


def bench_fig06_2b2s(benchmark):
    results = benchmark.pedantic(_figure6, rounds=1, iterations=1)

    rel_rand_sser = sser_ratios(results, "reliability", "random")
    perf_rand_sser = sser_ratios(results, "performance", "random")
    rel_perf_sser = sser_ratios(results, "reliability", "performance")
    rel_rand_stp = stp_ratios(results, "reliability", "random")
    perf_rand_stp = stp_ratios(results, "performance", "random")
    rel_perf_stp = stp_ratios(results, "reliability", "performance")

    lines = ["Figure 6a: normalized SSER per workload (sorted; "
             "lower is better)",
             f"{'rank':>4s} {'perf-opt':>9s} {'rel-opt':>9s}"]
    for i, (p, r) in enumerate(
        zip(sorted(perf_rand_sser), sorted(rel_rand_sser))
    ):
        lines.append(f"{i:4d} {p:9.3f} {r:9.3f}")
    lines.append("")
    lines.append("Figure 6b: normalized STP per workload (sorted; "
                 "higher is better)")
    lines.append(f"{'rank':>4s} {'perf-opt':>9s} {'rel-opt':>9s}")
    for i, (p, r) in enumerate(
        zip(sorted(perf_rand_stp), sorted(rel_rand_stp))
    ):
        lines.append(f"{i:4d} {p:9.3f} {r:9.3f}")
    lines.append("")
    lines.append(
        f"rel-opt vs random:  SSER {100 * (1 - mean(rel_rand_sser)):.1f}% "
        f"lower (best {100 * (1 - min(rel_rand_sser)):.1f}%) "
        "[paper: 32 %, up to 55.6 %]"
    )
    lines.append(
        f"rel-opt vs perf-opt: SSER {100 * (1 - mean(rel_perf_sser)):.1f}% "
        f"lower (best {100 * (1 - min(rel_perf_sser)):.1f}%) "
        "[paper: 25.4 %, up to 60.2 %]"
    )
    lines.append(
        f"perf-opt vs random: SSER {100 * (1 - mean(perf_rand_sser)):.1f}% "
        "lower [paper: 7.3 %, inconsistent]"
    )
    lines.append(
        f"rel-opt STP: {100 * (mean(rel_rand_stp) - 1):+.1f}% vs random "
        f"[paper: ~0 %], {100 * (mean(rel_perf_stp) - 1):+.1f}% vs "
        "perf-opt [paper: -6.3 %, worst -18.7 %]"
    )
    save_table("fig06_2b2s", lines)

    # Shape checks against the paper's claims.
    assert mean(rel_rand_sser) < 0.85
    assert min(rel_rand_sser) < 0.65
    assert mean(rel_perf_sser) < 0.92
    assert min(rel_perf_sser) < 0.70
    assert mean(perf_rand_sser) < 1.0  # on average better...
    assert max(perf_rand_sser) > 1.0  # ...but inconsistent
    assert 0.93 < mean(rel_rand_stp) < 1.07  # roughly random's STP
    assert 0.85 < mean(rel_perf_stp) < 1.0  # modest cost vs perf-opt
