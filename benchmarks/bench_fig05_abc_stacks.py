"""Figure 5: ABC stacks for the out-of-order core.

Regenerates the per-benchmark breakdown of big-core ACE bit counts
into microarchitectural structures.  Paper: the ROB contributes
almost half of the total occupancy and ROB ABC correlates with core
ABC at 0.99 -- the justification for the 296-byte ROB-only counter.
"""

from _harness import SCALE, mean, save_table

from repro.ace.stacks import abc_stack, rob_core_correlation
from repro.config import MemoryConfig, big_core_config
from repro.cores import MechanisticCoreModel
from repro.cores.base import ACE_STRUCTURES
from repro.sim.isolated import run_isolated
from repro.workloads.spec2006 import SUITE, big_core_avf


def _figure5():
    model = MechanisticCoreModel(big_core_config(), MemoryConfig())
    scale = min(SCALE, 20_000_000)  # stacks converge quickly
    results = {
        name: run_isolated(model, profile.scaled(scale))
        for name, profile in SUITE.items()
    }
    return results


def bench_fig05_abc_stacks(benchmark):
    results = benchmark.pedantic(_figure5, rounds=1, iterations=1)

    order = sorted(SUITE, key=lambda n: big_core_avf(SUITE[n]))
    kinds = [k for k in ACE_STRUCTURES
             if any(k in results[n].ace_bit_cycles for n in order)]
    lines = ["Figure 5: ABC stacks (%) for the out-of-order core",
             f"{'benchmark':12s} " + " ".join(f"{k.value[:10]:>10s}"
                                              for k in kinds)]
    rob_shares = []
    for name in order:
        stack = abc_stack(results[name])
        rob_shares.append(stack.get(kinds[0], 0.0))
        row = " ".join(f"{100 * stack.get(k, 0.0):10.1f}" for k in kinds)
        lines.append(f"{name:12s} {row}")
    correlation = rob_core_correlation(list(results.values()))
    lines.append(f"mean ROB share: {100 * mean(rob_shares):.1f}% "
                 "(paper: almost half)")
    lines.append(f"ROB-core ABC correlation: {correlation:.3f} (paper: 0.99)")
    save_table("fig05_abc_stacks", lines)

    assert 0.30 < mean(rob_shares) < 0.70
    assert correlation > 0.95
