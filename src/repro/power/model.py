"""Activity-based power model (McPAT substitute for Figure 12).

Average power over a run is assembled from:

* per-core **static** power (big cores leak more than small ones);
* per-instruction **dynamic** energy, with a big-core instruction
  costing ~3x a small-core one (wider pipeline, larger structures);
* **occupancy** power proportional to resident state bits (clocked
  latches and wakeup/select activity scale with queue occupancy --
  this is what makes high-ABC applications expensive on big cores,
  the mechanism behind Figure 12);
* shared **L3** static power plus per-access energy;
* **DRAM** background power plus per-access energy (system power).

Only relative comparisons across schedulers matter for Figure 12; the
constants are plausible 32 nm-class values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.machines import MachineConfig
from repro.sim.results import RunResult

#: Static power per big core (W).
BIG_STATIC_W = 0.8
#: Static power per small core (W).
SMALL_STATIC_W = 0.25
#: Dynamic energy per committed instruction, big core (J).
BIG_EPI_J = 0.35e-9
#: Dynamic energy per committed instruction, small core (J).
SMALL_EPI_J = 0.15e-9
#: Power per resident state bit (W/bit) -- occupancy-driven clock and
#: wakeup/select activity.
OCCUPANCY_W_PER_BIT = 1.3e-4
#: Shared L3 static power (W).
L3_STATIC_W = 1.0
#: Energy per L3 access (J).
L3_ACCESS_J = 1.2e-9
#: DRAM background power (W).
DRAM_BACKGROUND_W = 0.6
#: Energy per DRAM access (J, one line transfer).
DRAM_ACCESS_J = 15e-9


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power of one run, in watts.

    ``chip_watts`` covers the cores plus the L3 (the paper's
    "chip-level power including L3"); ``system_watts`` adds DRAM.
    """

    core_dynamic_watts: float
    core_static_watts: float
    occupancy_watts: float
    l3_watts: float
    dram_watts: float

    @property
    def chip_watts(self) -> float:
        return (
            self.core_dynamic_watts
            + self.core_static_watts
            + self.occupancy_watts
            + self.l3_watts
        )

    @property
    def system_watts(self) -> float:
        return self.chip_watts + self.dram_watts


class PowerModel:
    """Computes average power for simulation runs on a machine."""

    def __init__(self, machine: MachineConfig):
        self.machine = machine

    def run_power(self, result: RunResult) -> PowerBreakdown:
        """Average power over a completed simulation run."""
        duration = result.duration_seconds
        if duration <= 0:
            raise ValueError("run has no duration")
        dynamic_j = 0.0
        occupancy_bit_seconds = 0.0
        l3_j = 0.0
        dram_j = 0.0
        for app in result.apps:
            dynamic_j += app.instructions_big * BIG_EPI_J
            dynamic_j += app.instructions_small * SMALL_EPI_J
            occupancy_bit_seconds += app.occupancy_bit_seconds
            l3_j += app.l3_accesses * L3_ACCESS_J
            dram_j += app.dram_accesses * DRAM_ACCESS_J
        static_w = (
            self.machine.big_cores * BIG_STATIC_W
            + self.machine.small_cores * SMALL_STATIC_W
        )
        return PowerBreakdown(
            core_dynamic_watts=dynamic_j / duration,
            core_static_watts=static_w,
            occupancy_watts=OCCUPANCY_W_PER_BIT
            * occupancy_bit_seconds
            / duration,
            l3_watts=L3_STATIC_W + l3_j / duration,
            dram_watts=DRAM_BACKGROUND_W + dram_j / duration,
        )
