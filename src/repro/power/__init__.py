"""Activity-based power model (the McPAT substitute)."""

from repro.power.model import PowerBreakdown, PowerModel

__all__ = ["PowerBreakdown", "PowerModel"]
