"""Streaming JSONL event feed for the open-system service.

Every boundary decision of the :class:`~repro.service.server.OpenSystem`
-- arrive, shed, start, migrate, depart -- becomes one JSON line.  The
feed is the service's ground truth for differential testing: it
carries **virtual time only** (no wall clock, no pids, no worker
identity), keys are serialized sorted, and floats are produced by the
same arithmetic on every path, so the byte stream is identical across
repeated runs and across ``--jobs 1`` vs ``--jobs 8``.

:func:`feed_digest` reduces a feed to one sha256 hex digest; CI pins
the seeded 1k-arrival smoke run against a committed digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, IO, Iterable

__all__ = ["EVENT_KINDS", "ServiceFeed", "feed_digest"]

#: Event kinds in lifecycle order.
EVENT_KINDS = ("arrive", "shed", "start", "migrate", "depart")


def _serialize(event: dict[str, Any]) -> str:
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def feed_digest(lines: Iterable[str]) -> str:
    """sha256 hex digest of a feed (one JSON line per event)."""
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


class ServiceFeed:
    """Ordered, deterministic event collector.

    Events are retained in memory (``events`` as dicts, ``lines`` as
    serialized JSON) and optionally streamed to a writable text
    ``stream`` as they happen, one line per event.
    """

    def __init__(self, stream: IO[str] | None = None):
        self.events: list[dict[str, Any]] = []
        self.lines: list[str] = []
        self._stream = stream

    def emit(self, kind: str, time_seconds: float, **fields: Any) -> dict:
        """Record one event at a virtual timestamp."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; known: {EVENT_KINDS}"
            )
        event = {"event": kind, "time": float(time_seconds), **fields}
        line = _serialize(event)
        self.events.append(event)
        self.lines.append(line)
        if self._stream is not None:
            self._stream.write(line)
            self._stream.write("\n")
            self._stream.flush()
        return event

    def digest(self) -> str:
        return feed_digest(self.lines)

    def counts(self) -> dict[str, int]:
        """Events per kind (zero-filled over all known kinds)."""
        out = {kind: 0 for kind in EVENT_KINDS}
        for event in self.events:
            out[event["event"]] += 1
        return out
