"""Line framing shared by the scheduler service and the shard fleet.

Both ``repro serve`` (the open-system scheduler service) and
``repro shard`` (the sharded campaign coordinator and its workers)
speak the same wire format: **newline-delimited JSON objects**, one
message per line, keys sorted so identical messages are identical
bytes.  This module is the single definition of that framing so the
two protocols cannot drift apart and a future SSH/socket transport
inherits it unchanged.
"""

from __future__ import annotations

import json
from typing import Any, Mapping


class FramingError(ValueError):
    """A line on the wire was not a well-formed protocol message."""


def encode_line(message: Mapping[str, Any]) -> str:
    """Serialize one protocol message to its canonical line (no
    trailing newline).  Keys are sorted so equal messages are equal
    bytes -- the property the service's digest-checked feeds and the
    shard protocol's tests both rely on."""
    return json.dumps(dict(message), sort_keys=True)


def decode_line(line: str) -> dict[str, Any]:
    """Parse one wire line into a message dict.

    Raises :class:`FramingError` with the exact error texts the
    scheduler service has always returned, so refactored callers stay
    byte-compatible with existing clients.
    """
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise FramingError(f"bad json: {exc}") from exc
    if not isinstance(message, dict):
        raise FramingError("request must be an object")
    return message
