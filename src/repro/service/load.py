"""Closed-loop load generation: queueing delay vs SSER curves.

``repro load`` drives one :class:`~repro.service.server.OpenSystem`
per arrival rate with a seeded arrival stream and summarises each run
as a :class:`LoadPoint`: shed rate, exact queueing-delay percentiles,
and the SSER accumulated by the completed jobs.  Sweeping the rate
produces the open-system trade-off curve the fixed-mix pipeline
cannot express -- at low load the reliability placer keeps SSER down
with empty-slot headroom; approaching saturation, queueing delay
climbs until admission control sheds the excess.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.service.arrivals import ArrivalProcess
from repro.service.events import ServiceFeed
from repro.service.server import OpenSystem, ServiceConfig, ServiceResult

__all__ = [
    "LoadPoint",
    "TimelineWindow",
    "exact_percentile",
    "format_load_table",
    "format_timeline",
    "run_load_point",
    "service_timeline",
]


def exact_percentile(values: Sequence[float], q: float) -> float | None:
    """Exact (no interpolation) percentile of a sample.

    Returns the smallest value v such that at least ``q`` of the
    sample is <= v; ``None`` for an empty sample.
    """
    if not values:
        return None
    if not 0.0 < q <= 1.0:
        raise ValueError("percentile must be in (0, 1]")
    ordered = sorted(values)
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[index]


@dataclass(frozen=True)
class LoadPoint:
    """One arrival rate's outcome on the delay-vs-SSER curve."""

    rate_per_second: float
    result: ServiceResult
    digest: str

    @property
    def shed_rate(self) -> float:
        if self.result.arrived == 0:
            return 0.0
        return self.result.shed / self.result.arrived

    @property
    def mean_wait(self) -> float | None:
        waits = self.result.waits
        return sum(waits) / len(waits) if waits else None

    @property
    def p95_wait(self) -> float | None:
        return exact_percentile(self.result.waits, 0.95)

    @property
    def p99_wait(self) -> float | None:
        return exact_percentile(self.result.waits, 0.99)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rate_per_second": self.rate_per_second,
            "digest": self.digest,
            "shed_rate": self.shed_rate,
            "mean_wait_seconds": self.mean_wait,
            "p95_wait_seconds": self.p95_wait,
            "p99_wait_seconds": self.p99_wait,
            **self.result.to_dict(),
        }


def run_load_point(
    config: ServiceConfig,
    process: ArrivalProcess,
    count: int,
    *,
    feed: ServiceFeed | None = None,
    recorder=None,
    map_tasks: Callable[..., list] | None = None,
) -> LoadPoint:
    """Run ``count`` arrivals of one process through a fresh system."""
    feed = feed if feed is not None else ServiceFeed()
    system = OpenSystem(
        config, feed=feed, recorder=recorder, map_tasks=map_tasks
    )
    system.enqueue_arrivals(process.stream(count))
    result = system.run()
    return LoadPoint(
        rate_per_second=process.rate_per_second,
        result=result,
        digest=feed.digest(),
    )


@dataclass(frozen=True)
class TimelineWindow:
    """Aggregates of one virtual-time window of a service run."""

    start_seconds: float
    end_seconds: float
    arrived: int
    started: int
    shed: int
    departed: int
    queue_depth: int  # waiting jobs at window end
    running: int  # in-service jobs at window end
    p50_start_latency: float | None
    p95_start_latency: float | None

    @property
    def shed_rate(self) -> float:
        return (self.shed / self.arrived) if self.arrived else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "start_seconds": self.start_seconds,
            "end_seconds": self.end_seconds,
            "arrived": self.arrived,
            "started": self.started,
            "shed": self.shed,
            "departed": self.departed,
            "queue_depth": self.queue_depth,
            "running": self.running,
            "shed_rate": self.shed_rate,
            "p50_start_latency_seconds": self.p50_start_latency,
            "p95_start_latency_seconds": self.p95_start_latency,
        }


def service_timeline(
    events: Sequence[dict],
    *,
    window_seconds: float | None = None,
    windows: int = 12,
) -> list[TimelineWindow]:
    """Per-window operational view of a service run, computed post-hoc
    from the retained :class:`ServiceFeed` events.

    Each window counts its arrivals/starts/sheds/departures, carries
    exact p50/p95 start latency (the ``wait_seconds`` of its ``start``
    events), and reports queue depth and in-service occupancy at the
    window boundary from the cumulative conservation identities
    (``queued = arrived - started - shed``,
    ``running = started - departed``).  A pure function of the feed,
    so it is as deterministic as the feed digest itself.
    """
    if not events:
        return []
    times = [float(event["time"]) for event in events]
    t0, t1 = min(times), max(times)
    span = max(t1 - t0, 1e-9)
    if window_seconds is None:
        if windows < 1:
            raise ValueError("timeline needs at least one window")
        window_seconds = span / windows
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    count = max(1, math.ceil(span / window_seconds))
    buckets: list[list[dict]] = [[] for _ in range(count)]
    for event in events:
        index = int((float(event["time"]) - t0) / window_seconds)
        buckets[min(index, count - 1)].append(event)
    out: list[TimelineWindow] = []
    arrived = started = shed = departed = 0
    for index, bucket in enumerate(buckets):
        kinds = [event["event"] for event in bucket]
        w_arrived = kinds.count("arrive")
        w_started = kinds.count("start")
        w_shed = kinds.count("shed")
        w_departed = kinds.count("depart")
        arrived += w_arrived
        started += w_started
        shed += w_shed
        departed += w_departed
        waits = [
            float(event["wait_seconds"])
            for event in bucket
            if event["event"] == "start"
        ]
        out.append(
            TimelineWindow(
                start_seconds=t0 + index * window_seconds,
                end_seconds=min(t0 + (index + 1) * window_seconds, t1),
                arrived=w_arrived,
                started=w_started,
                shed=w_shed,
                departed=w_departed,
                queue_depth=arrived - started - shed,
                running=started - departed,
                p50_start_latency=exact_percentile(waits, 0.50),
                p95_start_latency=exact_percentile(waits, 0.95),
            )
        )
    return out


def format_timeline(windows: Sequence[TimelineWindow]) -> str:
    """The per-window table printed by ``repro load --timeline``."""
    if not windows:
        return "(empty timeline)"
    headers = (
        "window",
        "arrive",
        "start",
        "shed",
        "shed%",
        "queue",
        "running",
        "p50_start_ms",
        "p95_start_ms",
    )
    rows = [headers]
    for window in windows:
        rows.append(
            (
                f"{window.start_seconds:.2f}-{window.end_seconds:.2f}s",
                str(window.arrived),
                str(window.started),
                str(window.shed),
                f"{100.0 * window.shed_rate:.1f}",
                str(window.queue_depth),
                str(window.running),
                _fmt(window.p50_start_latency, 1e3),
                _fmt(window.p95_start_latency, 1e3),
            )
        )
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: float | None, scale: float = 1.0, digits: int = 3) -> str:
    if value is None:
        return "-"
    return f"{value * scale:.{digits}f}"


def format_load_table(points: Sequence[LoadPoint]) -> str:
    """The queueing-delay-vs-SSER summary table printed by ``repro load``."""
    headers = (
        "rate/s",
        "arrived",
        "admitted",
        "shed",
        "shed%",
        "mean_wait_ms",
        "p95_wait_ms",
        "p99_wait_ms",
        "sser",
        "slowdown",
    )
    rows = [headers]
    for point in points:
        result = point.result
        rows.append(
            (
                f"{point.rate_per_second:g}",
                str(result.arrived),
                str(result.admitted),
                str(result.shed),
                f"{100.0 * point.shed_rate:.1f}",
                _fmt(point.mean_wait, 1e3),
                _fmt(point.p95_wait, 1e3),
                _fmt(point.p99_wait, 1e3),
                f"{result.sser:.4e}",
                _fmt(result.mean_slowdown),
            )
        )
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
