"""Closed-loop load generation: queueing delay vs SSER curves.

``repro load`` drives one :class:`~repro.service.server.OpenSystem`
per arrival rate with a seeded arrival stream and summarises each run
as a :class:`LoadPoint`: shed rate, exact queueing-delay percentiles,
and the SSER accumulated by the completed jobs.  Sweeping the rate
produces the open-system trade-off curve the fixed-mix pipeline
cannot express -- at low load the reliability placer keeps SSER down
with empty-slot headroom; approaching saturation, queueing delay
climbs until admission control sheds the excess.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.service.arrivals import ArrivalProcess
from repro.service.events import ServiceFeed
from repro.service.server import OpenSystem, ServiceConfig, ServiceResult

__all__ = [
    "LoadPoint",
    "exact_percentile",
    "format_load_table",
    "run_load_point",
]


def exact_percentile(values: Sequence[float], q: float) -> float | None:
    """Exact (no interpolation) percentile of a sample.

    Returns the smallest value v such that at least ``q`` of the
    sample is <= v; ``None`` for an empty sample.
    """
    if not values:
        return None
    if not 0.0 < q <= 1.0:
        raise ValueError("percentile must be in (0, 1]")
    ordered = sorted(values)
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[index]


@dataclass(frozen=True)
class LoadPoint:
    """One arrival rate's outcome on the delay-vs-SSER curve."""

    rate_per_second: float
    result: ServiceResult
    digest: str

    @property
    def shed_rate(self) -> float:
        if self.result.arrived == 0:
            return 0.0
        return self.result.shed / self.result.arrived

    @property
    def mean_wait(self) -> float | None:
        waits = self.result.waits
        return sum(waits) / len(waits) if waits else None

    @property
    def p95_wait(self) -> float | None:
        return exact_percentile(self.result.waits, 0.95)

    @property
    def p99_wait(self) -> float | None:
        return exact_percentile(self.result.waits, 0.99)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rate_per_second": self.rate_per_second,
            "digest": self.digest,
            "shed_rate": self.shed_rate,
            "mean_wait_seconds": self.mean_wait,
            "p95_wait_seconds": self.p95_wait,
            "p99_wait_seconds": self.p99_wait,
            **self.result.to_dict(),
        }


def run_load_point(
    config: ServiceConfig,
    process: ArrivalProcess,
    count: int,
    *,
    feed: ServiceFeed | None = None,
    recorder=None,
    map_tasks: Callable[..., list] | None = None,
) -> LoadPoint:
    """Run ``count`` arrivals of one process through a fresh system."""
    feed = feed if feed is not None else ServiceFeed()
    system = OpenSystem(
        config, feed=feed, recorder=recorder, map_tasks=map_tasks
    )
    system.enqueue_arrivals(process.stream(count))
    result = system.run()
    return LoadPoint(
        rate_per_second=process.rate_per_second,
        result=result,
        digest=feed.digest(),
    )


def _fmt(value: float | None, scale: float = 1.0, digits: int = 3) -> str:
    if value is None:
        return "-"
    return f"{value * scale:.{digits}f}"


def format_load_table(points: Sequence[LoadPoint]) -> str:
    """The queueing-delay-vs-SSER summary table printed by ``repro load``."""
    headers = (
        "rate/s",
        "arrived",
        "admitted",
        "shed",
        "shed%",
        "mean_wait_ms",
        "p95_wait_ms",
        "p99_wait_ms",
        "sser",
        "slowdown",
    )
    rows = [headers]
    for point in points:
        result = point.result
        rows.append(
            (
                f"{point.rate_per_second:g}",
                str(result.arrived),
                str(result.admitted),
                str(result.shed),
                f"{100.0 * point.shed_rate:.1f}",
                _fmt(point.mean_wait, 1e3),
                _fmt(point.p95_wait, 1e3),
                _fmt(point.p99_wait, 1e3),
                f"{result.sser:.4e}",
                _fmt(result.mean_slowdown),
            )
        )
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
