"""Bounded admission queue with SLA deadline expiry.

Jobs that arrive while every slot is busy wait here.  The queue is
bounded: an arrival that finds it full is shed immediately
(``queue_full``).  A queued job whose SLA start deadline passes before
a slot frees up is shed at the next quantum boundary (``deadline``).
Both shed paths emit explicit events, so overload is always visible in
the feed rather than silently inflating queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.arrivals import JobArrival

__all__ = ["AdmissionQueue", "QueuedJob"]


@dataclass(frozen=True)
class QueuedJob:
    """One job waiting for a slot.

    Attributes:
        arrival: the originating :class:`JobArrival`.
        deadline_time: absolute virtual time by which the job must
            *start* executing, or ``None`` for no SLA.
    """

    arrival: JobArrival
    deadline_time: float | None

    @property
    def job_id(self) -> int:
        return self.arrival.job_id

    def wait_seconds(self, now: float) -> float:
        return now - self.arrival.time_seconds


class AdmissionQueue:
    """Bounded FIFO-ordered holding area for not-yet-placed jobs."""

    def __init__(
        self, capacity: int, *, deadline_seconds: float | None = None
    ):
        """Args:
        capacity: maximum number of waiting jobs (>= 1).
        deadline_seconds: service-wide start-deadline applied to
            jobs whose arrival carries no per-job deadline.
        """
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline must be positive")
        self.capacity = capacity
        self.deadline_seconds = deadline_seconds
        self._jobs: list[QueuedJob] = []

    def __len__(self) -> int:
        return len(self._jobs)

    @property
    def jobs(self) -> tuple[QueuedJob, ...]:
        """Waiting jobs in arrival order."""
        return tuple(self._jobs)

    def offer(self, arrival: JobArrival) -> QueuedJob | None:
        """Enqueue an arrival; ``None`` means the queue was full."""
        if len(self._jobs) >= self.capacity:
            return None
        deadline = (
            arrival.deadline_seconds
            if arrival.deadline_seconds is not None
            else self.deadline_seconds
        )
        job = QueuedJob(
            arrival=arrival,
            deadline_time=(
                arrival.time_seconds + deadline
                if deadline is not None
                else None
            ),
        )
        self._jobs.append(job)
        return job

    def expire(self, now: float) -> list[QueuedJob]:
        """Remove and return jobs whose start deadline has passed."""
        expired = [
            j
            for j in self._jobs
            if j.deadline_time is not None and now > j.deadline_time
        ]
        if expired:
            gone = {j.job_id for j in expired}
            self._jobs = [j for j in self._jobs if j.job_id not in gone]
        return expired

    def take(self, job: QueuedJob) -> None:
        """Remove a specific job (it is being admitted)."""
        self._jobs.remove(job)
