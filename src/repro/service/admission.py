"""Admission policies: which waiting job gets the next free slot.

Policies are pure orderings over the queue contents -- deterministic
functions of (waiting jobs, virtual time) with explicit tie-breaks on
``job_id`` -- so the service's event feed stays byte-identical across
runs and worker counts.

* :class:`FifoAdmission` -- arrival order (the M/G/k baseline).
* :class:`SserPriorityAdmission` -- reliability-aware: jobs whose
  benchmark has the *lowest* big-core AVF are admitted first.  Under
  overload this preferentially sheds the high-AVF jobs that would
  contribute most SSER per unit of service -- the open-system analogue
  of the paper's reliability-aware placement preference.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.config.machines import MemoryConfig
from repro.service.queue import QueuedJob
from repro.workloads.spec2006 import benchmark, big_core_avf

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "FifoAdmission",
    "SserPriorityAdmission",
    "make_admission",
]


class AdmissionPolicy(abc.ABC):
    """Chooses the next waiting job for a freed slot."""

    name = "admission"

    @abc.abstractmethod
    def select(self, waiting: Sequence[QueuedJob], now: float) -> QueuedJob:
        """The job to admit next (``waiting`` is non-empty)."""


class FifoAdmission(AdmissionPolicy):
    """First-come, first-served."""

    name = "fifo"

    def select(self, waiting: Sequence[QueuedJob], now: float) -> QueuedJob:
        return min(
            waiting, key=lambda j: (j.arrival.time_seconds, j.job_id)
        )


class SserPriorityAdmission(AdmissionPolicy):
    """Lowest big-core AVF first (reliability-aware priority).

    AVF per benchmark is a pure function of the profile and memory
    configuration; it is computed once per name and cached.
    """

    name = "sser"

    def __init__(self, memory: MemoryConfig | None = None):
        self._memory = memory
        self._avf: dict[str, float] = {}

    def _avf_of(self, name: str) -> float:
        value = self._avf.get(name)
        if value is None:
            value = big_core_avf(benchmark(name), self._memory)
            self._avf[name] = value
        return value

    def select(self, waiting: Sequence[QueuedJob], now: float) -> QueuedJob:
        return min(
            waiting,
            key=lambda j: (
                self._avf_of(j.arrival.benchmark),
                j.arrival.time_seconds,
                j.job_id,
            ),
        )


#: Registry of admission policies by name.
ADMISSION_POLICIES: dict[str, type[AdmissionPolicy]] = {
    cls.name: cls for cls in (FifoAdmission, SserPriorityAdmission)
}


def make_admission(name: str, **kwargs) -> AdmissionPolicy:
    """Instantiate an admission policy by registry name."""
    try:
        cls = ADMISSION_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown admission policy {name!r}; "
            f"known: {', '.join(ADMISSION_POLICIES)}"
        ) from None
    return cls(**kwargs)
