"""The open-system virtual-time loop and its asyncio front-end.

:class:`OpenSystem` owns the quantum loop: at each 1 ms boundary it
retires completed jobs, drains due arrivals into the bounded admission
queue (shedding on overflow), expires SLA deadlines, admits waiting
jobs to free slots, asks the :class:`~repro.service.placement.SlotPlacer`
for this quantum's placement/migrations, and executes every occupied
slot's slice through the mechanistic core models -- either in-process
or fanned out over an :class:`~repro.runtime.engine.ExecutionEngine`
worker pool via :meth:`map_tasks`.

Everything runs in **virtual time**.  Worker processes compute pure
slice functions of hashable inputs, and the serial path calls the very
same function, so the event feed is byte-identical for ``jobs=1`` and
``jobs=N`` (pinned by ``repro check --service-cases``).

:class:`SchedulerService` wraps an interactive :class:`OpenSystem` in
a line-oriented JSON request/response protocol (``repro serve``):
submit jobs, step virtual time, query placement -- over stdin/stdout
or a local unix socket.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import math
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.ace.counters import AceCounterMode, measured_abc
from repro.config.cores import CoreConfig
from repro.config.machines import BIG, MachineConfig, MemoryConfig
from repro.cores.base import MemoryEnvironment, QuantumResult
from repro.cores.mechanistic import MechanisticCoreModel
from repro.memory.interference import ApplicationDemand, InterferenceModel
from repro.metrics.reliability import weighted_ser
from repro.obs import metrics as obs_metrics
from repro.sched.base import Observation
from repro.sched.sampling import DEFAULT_SWAP_THRESHOLD, CoreTypeSample
from repro.service.admission import make_admission
from repro.service.arrivals import JobArrival
from repro.service.events import ServiceFeed
from repro.service.framing import FramingError, decode_line, encode_line
from repro.service.placement import SlotPlacer
from repro.service.queue import AdmissionQueue
from repro.sim.isolated import ReferenceTimes
from repro.workloads.spec2006 import benchmark

__all__ = [
    "OpenSystem",
    "SchedulerService",
    "ServiceConfig",
    "ServiceJob",
    "ServiceResult",
]

#: Hard cap on service quanta (guards non-terminating runs).
DEFAULT_MAX_QUANTA = 2_000_000


# -- worker-side slice execution ---------------------------------------------
#
# The slice function is module-level and pure so it can run identically
# in-process and in ExecutionEngine worker processes: same inputs, same
# floats, same event feed.  Models and scaled profiles are cached per
# process keyed by hashable configs.

_WORKER_MODELS: dict[tuple[CoreConfig, MemoryConfig], MechanisticCoreModel] = {}
_WORKER_PROFILES: dict[tuple[str, int], Any] = {}

#: (core config, memory config, benchmark, instructions, position,
#:  exec_cycles, memory environment)
SliceTask = tuple[
    CoreConfig, MemoryConfig, str, int, int, float, MemoryEnvironment
]


def run_slice(task: SliceTask) -> QuantumResult:
    """Execute one slot's slice of one segment (pure function)."""
    core_cfg, memory, name, instructions, position, cycles, env = task
    model = _WORKER_MODELS.get((core_cfg, memory))
    if model is None:
        model = MechanisticCoreModel(core_cfg, memory)
        _WORKER_MODELS[(core_cfg, memory)] = model
    profile = _WORKER_PROFILES.get((name, instructions))
    if profile is None:
        profile = benchmark(name).scaled(instructions)
        _WORKER_PROFILES[(name, instructions)] = profile
    return model.run_cycles(profile, position, cycles, env)


@dataclass(frozen=True)
class ServiceConfig:
    """Static configuration of one open-system service instance."""

    machine: MachineConfig
    scheduler: str = "reliability"
    admission: str = "fifo"
    queue_capacity: int = 16
    #: Service-wide start-deadline for jobs without a per-job SLA.
    deadline_seconds: float | None = None
    counter_mode: AceCounterMode = AceCounterMode.FULL
    swap_threshold: float = DEFAULT_SWAP_THRESHOLD
    max_quanta: int = DEFAULT_MAX_QUANTA


@dataclass
class ServiceJob:
    """Lifecycle state of one job inside the open system."""

    arrival: JobArrival
    status: str = "queued"  # queued | running | completed | shed
    shed_reason: str = ""
    slot: int | None = None
    admit_time: float | None = None
    depart_time: float | None = None
    position: int = 0
    abc_seconds: float = 0.0
    migrations: int = 0
    #: Real measured samples per core type (no mirroring here).
    samples: dict[str, CoreTypeSample] = field(default_factory=dict)
    consecutive: int = 0
    last_type: str | None = None
    last_core: int | None = None
    demand: ApplicationDemand = field(
        default_factory=lambda: ApplicationDemand(0.0, 0.0)
    )
    wser: float | None = None
    slowdown: float | None = None

    @property
    def job_id(self) -> int:
        return self.arrival.job_id

    @property
    def benchmark(self) -> str:
        return self.arrival.benchmark

    @property
    def instructions(self) -> int:
        return self.arrival.instructions

    @property
    def done(self) -> bool:
        return self.position >= self.instructions

    def wait_seconds(self) -> float | None:
        if self.admit_time is None:
            return None
        return self.admit_time - self.arrival.time_seconds

    def summary(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "benchmark": self.benchmark,
            "status": self.status,
            "shed_reason": self.shed_reason,
            "arrival_time": self.arrival.time_seconds,
            "admit_time": self.admit_time,
            "depart_time": self.depart_time,
            "wait_seconds": self.wait_seconds(),
            "position": self.position,
            "instructions": self.instructions,
            "migrations": self.migrations,
            "wser": self.wser,
            "slowdown": self.slowdown,
        }


@dataclass(frozen=True)
class ServiceResult:
    """Aggregate outcome of an open-system run.

    The conservation laws pinned by ``repro.check``:
    ``arrived == admitted + shed`` and
    ``admitted == completed + in_flight``.
    """

    machine_name: str
    scheduler: str
    admission: str
    arrived: int
    admitted: int
    shed: int
    shed_reasons: dict[str, int]
    completed: int
    in_flight: int
    quanta: int
    duration_seconds: float
    #: Queueing delay of each admitted job, in admission order.
    waits: tuple[float, ...]
    #: Sum of completed jobs' weighted SER (Equation 2).
    sser: float
    mean_slowdown: float | None
    jobs: tuple[dict[str, Any], ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "machine": self.machine_name,
            "scheduler": self.scheduler,
            "admission": self.admission,
            "arrived": self.arrived,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_reasons": dict(self.shed_reasons),
            "completed": self.completed,
            "in_flight": self.in_flight,
            "quanta": self.quanta,
            "duration_seconds": self.duration_seconds,
            "sser": self.sser,
            "mean_slowdown": self.mean_slowdown,
        }


class OpenSystem:
    """Jobs arrive, wait, run, migrate, and depart over virtual time.

    Args:
        config: the static service configuration.
        feed: optional :class:`~repro.service.events.ServiceFeed`
            receiving every boundary event.
        recorder: optional
            :class:`~repro.obs.decisions.DecisionTraceRecorder`; the
            trace chain-validates across admissions and departures.
        map_tasks: optional ordered parallel map (e.g.
            ``ExecutionEngine.map_tasks``) used to execute slot slices;
            in-process execution when omitted.  Results must come back
            in task order for determinism.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        feed: ServiceFeed | None = None,
        recorder=None,
        map_tasks: Callable[..., list] | None = None,
    ):
        self.config = config
        machine = config.machine
        self.machine = machine
        self.feed = feed if feed is not None else ServiceFeed()
        self.placer = SlotPlacer(
            machine,
            config.scheduler,
            swap_threshold=config.swap_threshold,
        )
        self.placer.recorder = recorder
        self.admission = make_admission(config.admission)
        self.queue = AdmissionQueue(
            config.queue_capacity, deadline_seconds=config.deadline_seconds
        )
        self.interference = InterferenceModel(machine.memory)
        self._map_tasks = map_tasks
        self.slots: list[ServiceJob | None] = [None] * machine.num_cores
        self.jobs: dict[int, ServiceJob] = {}
        self.pending: list[JobArrival] = []
        self._next_pending = 0
        self._next_job_id = 0
        self.quantum = 0
        self.arrived = 0
        self.admitted = 0
        self.shed_reasons: dict[str, int] = {}
        self.completed = 0
        self.waits: list[float] = []
        self.sser = 0.0
        self._slowdowns: list[float] = []
        self._big_model = MechanisticCoreModel(machine.big, machine.memory)
        self._reference: dict[tuple[str, int], ReferenceTimes] = {}

    # -- time & intake ---------------------------------------------------

    @property
    def now(self) -> float:
        """Virtual time of the current quantum boundary."""
        return self.quantum * self.machine.quantum_seconds

    @property
    def shed(self) -> int:
        return sum(self.shed_reasons.values())

    @property
    def in_flight(self) -> int:
        """Admitted jobs not yet completed (running slots)."""
        return sum(1 for job in self.slots if job is not None)

    def enqueue_arrivals(self, arrivals: Sequence[JobArrival]) -> None:
        """Feed a pre-built arrival stream (``repro load``)."""
        for arrival in arrivals:
            if self.pending and arrival.time_seconds < self.pending[-1].time_seconds:
                raise ValueError("arrivals must be time-ordered")
            self.pending.append(arrival)
            self._next_job_id = max(self._next_job_id, arrival.job_id + 1)

    def submit(
        self,
        benchmark_name: str,
        instructions: int,
        deadline_seconds: float | None = None,
    ) -> int:
        """Interactive submission at the current virtual time."""
        benchmark(benchmark_name)  # validate the name eagerly
        arrival = JobArrival(
            job_id=self._next_job_id,
            time_seconds=self.now,
            benchmark=benchmark_name,
            instructions=instructions,
            deadline_seconds=deadline_seconds,
        )
        self._next_job_id += 1
        self.pending.append(arrival)
        return arrival.job_id

    # -- metrics ---------------------------------------------------------

    def _observe_queue_metrics(self, wait: float | None) -> None:
        reg = obs_metrics.ACTIVE
        if reg is None:
            return
        if wait is not None:
            reg.histogram("queue.wait_seconds").observe(wait)
        reg.gauge("queue.depth").set(float(len(self.queue)))

    def _count(self, counter: str, **labels) -> None:
        reg = obs_metrics.ACTIVE
        if reg is not None:
            reg.counter(counter, **labels).inc()

    # -- boundary processing ---------------------------------------------

    def _record_boundary(self, phase: str) -> None:
        recorder = self.placer.recorder
        if recorder is None:
            return
        core_of = self.placer.assignment.core_of
        recorder.quantum(
            quantum=self.quantum,
            scheduler=type(self.placer.scheduler).__name__,
            phase=phase,
            before=core_of,
            after=core_of,
        )

    def _retire_completed(self) -> None:
        departed = False
        for slot, job in enumerate(self.slots):
            if job is None or not job.done:
                continue
            reference = self._reference_times(job)
            ref_seconds = reference.seconds_for(job.position)
            job.wser = weighted_ser(job.abc_seconds, ref_seconds)
            if job.admit_time is not None and ref_seconds > 0:
                job.slowdown = (
                    (job.depart_time or self.now) - job.admit_time
                ) / ref_seconds
                self._slowdowns.append(job.slowdown)
            job.status = "completed"
            job.slot = None
            self.slots[slot] = None
            self.completed += 1
            self.sser += job.wser
            self._count("service.completed")
            reg = obs_metrics.ACTIVE
            if reg is not None:
                reg.gauge("service.sser").set(self.sser)
            self.feed.emit(
                "depart",
                job.depart_time if job.depart_time is not None else self.now,
                job_id=job.job_id,
                benchmark=job.benchmark,
                slot=slot,
                wser=job.wser,
                slowdown=job.slowdown,
            )
            departed = True
        if departed:
            self._record_boundary("depart")

    def _reference_times(self, job: ServiceJob) -> ReferenceTimes:
        key = (job.benchmark, job.instructions)
        reference = self._reference.get(key)
        if reference is None:
            profile = benchmark(job.benchmark).scaled(job.instructions)
            reference = ReferenceTimes.from_models(profile, self._big_model)
            self._reference[key] = reference
        return reference

    def _shed_job(self, job: ServiceJob, reason: str, time: float) -> None:
        job.status = "shed"
        job.shed_reason = reason
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
        self._count("service.shed", reason=reason)
        self.feed.emit(
            "shed",
            time,
            job_id=job.job_id,
            benchmark=job.benchmark,
            reason=reason,
            waited_seconds=time - job.arrival.time_seconds,
        )

    def _drain_arrivals(self) -> bool:
        any_shed = False
        now = self.now
        while (
            self._next_pending < len(self.pending)
            and self.pending[self._next_pending].time_seconds <= now
        ):
            arrival = self.pending[self._next_pending]
            self._next_pending += 1
            job = ServiceJob(arrival=arrival)
            self.jobs[arrival.job_id] = job
            self.arrived += 1
            self._count("service.arrivals")
            self.feed.emit(
                "arrive",
                arrival.time_seconds,
                job_id=arrival.job_id,
                benchmark=arrival.benchmark,
                instructions=arrival.instructions,
            )
            if self.queue.offer(arrival) is None:
                self._shed_job(job, "queue_full", now)
                any_shed = True
        return any_shed

    def _expire_deadlines(self) -> bool:
        expired = self.queue.expire(self.now)
        for queued in expired:
            self._shed_job(self.jobs[queued.job_id], "deadline", self.now)
        return bool(expired)

    def _admit(self) -> bool:
        admitted = False
        now = self.now
        for slot in self.placer.free_slots_by_preference(self.slots):
            if not len(self.queue):
                break
            queued = self.admission.select(self.queue.jobs, now)
            self.queue.take(queued)
            job = self.jobs[queued.job_id]
            job.status = "running"
            job.slot = slot
            job.admit_time = now
            self.slots[slot] = job
            self.admitted += 1
            wait = now - queued.arrival.time_seconds
            self.waits.append(wait)
            self._count("service.admitted")
            self._observe_queue_metrics(wait)
            self.feed.emit(
                "start",
                now,
                job_id=job.job_id,
                benchmark=job.benchmark,
                slot=slot,
                core=self.placer.core_of(slot),
                wait_seconds=wait,
            )
            admitted = True
        return admitted

    # -- quantum execution -----------------------------------------------

    def _execute_quantum(self) -> None:
        machine = self.machine
        plans = self.placer.plan(self.slots, self.quantum)
        total_fraction = sum(p.fraction for p in plans)
        if not math.isclose(total_fraction, 1.0, abs_tol=1e-9):
            raise ValueError(
                f"quantum segments cover {total_fraction}, expected 1.0"
            )
        seg_start = self.now
        n = machine.num_cores
        for plan in plans:
            plan.assignment.validate(machine)
            duration = plan.fraction * machine.quantum_seconds
            demands = [
                self.slots[i].demand
                if self.slots[i] is not None
                else ApplicationDemand(0.0, 0.0)
                for i in range(n)
            ]
            envs = self.interference.environments(demands)
            tasks: list[tuple[int, SliceTask, float, int]] = []
            for slot in range(n):
                job = self.slots[slot]
                if job is None:
                    continue
                core = plan.assignment.core_of[slot]
                config = machine.core_config(core)
                migrated = (
                    job.last_core is not None and job.last_core != core
                )
                overhead = (
                    min(machine.migration_overhead_seconds, duration)
                    if migrated
                    else 0.0
                )
                if migrated:
                    job.migrations += 1
                    self._count("service.migrations")
                    self.feed.emit(
                        "migrate",
                        seg_start,
                        job_id=job.job_id,
                        benchmark=job.benchmark,
                        slot=slot,
                        from_core=job.last_core,
                        to_core=core,
                    )
                exec_cycles = (duration - overhead) * config.frequency_hz
                tasks.append(
                    (
                        slot,
                        (
                            config,
                            machine.memory,
                            job.benchmark,
                            job.instructions,
                            job.position,
                            exec_cycles,
                            envs[slot],
                        ),
                        overhead,
                        core,
                    )
                )
            payloads = [task for _, task, _, _ in tasks]
            if self._map_tasks is not None and len(payloads) > 1:
                results = self._map_tasks(run_slice, payloads)
            else:
                results = [run_slice(task) for task in payloads]
            final = plan is plans[-1]
            for (slot, task, overhead, core), result in zip(tasks, results):
                self._digest_slice(
                    slot, core, overhead, duration, seg_start, result, final
                )
            seg_start += duration
        # End of quantum: sample ages advance for every running job.
        for job in self.slots:
            if job is None:
                continue
            for sample in job.samples.values():
                sample.age_quanta += 1
        reg = obs_metrics.ACTIVE
        if reg is not None:
            reg.gauge("service.running").set(float(self.in_flight))

    def _digest_slice(
        self,
        slot: int,
        core: int,
        overhead: float,
        duration: float,
        seg_start: float,
        result: QuantumResult,
        final_segment: bool,
    ) -> None:
        machine = self.machine
        job = self.slots[slot]
        assert job is not None
        config = machine.core_config(core)
        core_type = machine.core_type(core)
        freq = config.frequency_hz
        remaining = job.instructions - job.position
        if result.instructions > remaining:
            # Clip at the job's end; the rest of the slice idles.
            scale = remaining / result.instructions
            result = QuantumResult(
                instructions=remaining,
                cycles=result.cycles * scale,
                ace_bit_cycles={
                    k: v * scale for k, v in result.ace_bit_cycles.items()
                },
                occupancy_bit_cycles={
                    k: v * scale
                    for k, v in result.occupancy_bit_cycles.items()
                },
                memory_accesses=result.memory_accesses * scale,
                l3_accesses=result.l3_accesses * scale,
            )
        job.abc_seconds += result.total_ace_bit_cycles / freq
        job.position += result.instructions
        job.demand = ApplicationDemand(
            l3_accesses_per_second=result.l3_accesses / duration,
            dram_accesses_per_second=result.memory_accesses / duration,
        )
        observation = Observation(
            app_index=slot,
            core_id=core,
            core_type=core_type,
            duration_seconds=duration - overhead,
            instructions=result.instructions,
            measured_abc_seconds=measured_abc(
                result, self.config.counter_mode, config.out_of_order
            )
            / freq,
            l3_accesses=result.l3_accesses,
            dram_accesses=result.memory_accesses,
            branch_mispredictions=result.branch_mispredictions,
        )
        if observation.duration_seconds > 0 and observation.instructions > 0:
            job.samples[core_type] = CoreTypeSample(
                instructions_per_second=observation.instructions_per_second,
                abc_per_second=observation.abc_per_second,
                l3_apki=observation.l3_apki,
                dram_apki=observation.dram_apki,
                branch_mpki=observation.branch_mpki,
                age_quanta=0,
            )
        job.last_core = core
        if job.done and job.depart_time is None:
            job.depart_time = seg_start + overhead + result.cycles / freq
        if final_segment:
            if job.last_type == core_type:
                job.consecutive += 1
            else:
                job.consecutive = 1
            job.last_type = core_type
            # A fresh off-type sample satisfies the staleness rule.
            other = "small" if core_type == BIG else BIG
            off = job.samples.get(other)
            if off is not None and off.age_quanta == 0:
                job.consecutive = min(job.consecutive, 1)

    # -- driving ---------------------------------------------------------

    def step(self) -> None:
        """Process one quantum boundary and execute one quantum."""
        if self.quantum >= self.config.max_quanta:
            raise RuntimeError(
                f"service exceeded {self.config.max_quanta} quanta"
            )
        self._retire_completed()
        any_shed = self._drain_arrivals()
        any_shed |= self._expire_deadlines()
        if any_shed:
            self._record_boundary("shed")
        if self._admit():
            self._record_boundary("admit")
        self._observe_queue_metrics(None)
        if self.in_flight:
            self._execute_quantum()
        self.quantum += 1

    def drained(self) -> bool:
        """No pending arrivals, no waiting jobs, no running jobs."""
        return (
            self._next_pending >= len(self.pending)
            and not len(self.queue)
            and self.in_flight == 0
        )

    def run(self) -> ServiceResult:
        """Run until the system drains; returns the aggregate result."""
        while not self.drained():
            self.step()
        # Retire jobs that completed during the final quantum.
        self._retire_completed()
        return self.result()

    def result(self) -> ServiceResult:
        slowdowns = self._slowdowns
        return ServiceResult(
            machine_name=self.machine.name,
            scheduler=self.config.scheduler,
            admission=self.config.admission,
            arrived=self.arrived,
            admitted=self.admitted,
            shed=self.shed,
            shed_reasons=dict(self.shed_reasons),
            completed=self.completed,
            in_flight=self.in_flight,
            quanta=self.quantum,
            duration_seconds=self.now,
            waits=tuple(self.waits),
            sser=self.sser,
            mean_slowdown=(
                sum(slowdowns) / len(slowdowns) if slowdowns else None
            ),
            jobs=tuple(
                self.jobs[jid].summary() for jid in sorted(self.jobs)
            ),
        )


class SchedulerService:
    """Line-oriented JSON protocol around an interactive open system.

    Requests are single JSON objects with an ``op`` field; responses
    always carry ``ok``.  Supported ops (see docs/service.md):

    * ``submit`` -- enqueue a job at the current virtual time.
    * ``step`` -- advance ``quanta`` quantum boundaries (default 1).
    * ``placement`` -- current slot -> core -> job mapping.
    * ``job`` -- lifecycle state of one job by id.
    * ``stats`` -- aggregate counters so far (carries the session's
      trace context alongside the counters).
    * ``trace`` -- the session's :class:`~repro.obs.context.
      TraceContext`, so clients can correlate service sessions with
      campaign logs.
    * ``shutdown`` -- close the session.
    """

    def __init__(
        self, system: OpenSystem, *, default_instructions: int = 1_000_000
    ):
        self.system = system
        self.default_instructions = default_instructions
        self.closed = False
        # Session identity: inherit the ambient trace context when the
        # embedding process installed one (e.g. a campaign driving the
        # service), else mint one from the service configuration.
        from repro.obs import context as obs_context

        context = obs_context.current()
        if context is None:
            config_key = json.dumps(
                dataclasses.asdict(system.config),
                sort_keys=True,
                default=str,
            )
            context = obs_context.TraceContext(
                campaign=obs_context.campaign_id([config_key])
            )
        self.trace = context

    async def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        try:
            return self._dispatch(request)
        except Exception as exc:  # protocol surface: report, don't die
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        system = self.system
        if op == "submit":
            job_id = system.submit(
                request["benchmark"],
                int(request.get("instructions", self.default_instructions)),
                request.get("deadline_seconds"),
            )
            return {"ok": True, "job_id": job_id}
        if op == "step":
            quanta = int(request.get("quanta", 1))
            if quanta < 1:
                return {"ok": False, "error": "quanta must be >= 1"}
            for _ in range(quanta):
                system.step()
            return {
                "ok": True,
                "quantum": system.quantum,
                "time": system.now,
            }
        if op == "placement":
            placement = []
            for slot, job in enumerate(system.slots):
                placement.append(
                    {
                        "slot": slot,
                        "core": system.placer.core_of(slot),
                        "core_type": system.machine.core_type(
                            system.placer.core_of(slot)
                        ),
                        "job_id": job.job_id if job is not None else None,
                        "benchmark": (
                            job.benchmark if job is not None else None
                        ),
                    }
                )
            return {"ok": True, "placement": placement}
        if op == "job":
            job = system.jobs.get(int(request["job_id"]))
            if job is None:
                return {"ok": False, "error": "unknown job id"}
            return {"ok": True, "job": job.summary()}
        if op == "stats":
            return {
                "ok": True,
                "stats": {
                    **system.result().to_dict(),
                    "queue_depth": len(system.queue),
                },
                "trace": self.trace.to_dict(),
            }
        if op == "trace":
            return {"ok": True, "trace": self.trace.to_dict()}
        if op == "shutdown":
            self.closed = True
            return {"ok": True, "shutdown": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def handle_line(self, line: str) -> str:
        line = line.strip()
        if not line:
            return ""
        try:
            request = decode_line(line)
        except FramingError as exc:
            return encode_line({"ok": False, "error": str(exc)})
        response = await self.handle(request)
        return encode_line(response)

    async def serve_stdio(self, infile=None, outfile=None) -> None:
        """Serve newline-delimited JSON over stdin/stdout."""
        infile = infile if infile is not None else sys.stdin
        outfile = outfile if outfile is not None else sys.stdout
        loop = asyncio.get_running_loop()
        while not self.closed:
            line = await loop.run_in_executor(None, infile.readline)
            if not line:
                break
            response = await self.handle_line(line)
            if response:
                outfile.write(response + "\n")
                outfile.flush()

    async def serve_socket(self, path: str) -> None:
        """Serve newline-delimited JSON over a unix-domain socket."""

        async def on_client(reader, writer):
            while not self.closed:
                line = await reader.readline()
                if not line:
                    break
                response = await self.handle_line(line.decode("utf-8"))
                if response:
                    writer.write(response.encode("utf-8") + b"\n")
                    await writer.drain()
            writer.close()

        server = await asyncio.start_unix_server(on_client, path=path)
        async with server:
            while not self.closed:
                await asyncio.sleep(0.05)
