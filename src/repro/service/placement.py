"""Online per-quantum placement over *slots* (cores) instead of apps.

The paper's sampling schedulers optimize a fixed application list.
The open system has a changing population, so the service plans over
**slots**: one slot per core, persistently bound to a core through a
permutation :class:`~repro.sched.base.Assignment`.  Jobs occupy slots;
arrivals fill free slots and departures empty them, while the slot ->
core binding (and therefore the decision-trace chain) survives across
population changes.

Each quantum the placer projects the current occupants' samples onto
the slot space and runs the *unmodified* greedy pair-swap optimizer
(:meth:`SamplingScheduler._optimize`, Algorithm 1) over it:

* an empty slot gets zero samples -- objective 0 on both core types,
  so it never initiates a swap, but a job that would do better on the
  empty slot's core type can swap *with* it (that is how migrations
  onto idle cores happen);
* a half-sampled job (seen only one core type so far) gets its one
  sample mirrored to the other type -- the optimizer sees a zero
  delta and will not move the job on fabricated data; the staleness
  machinery schedules a real off-type sampling segment instead.
"""

from __future__ import annotations

from typing import Sequence

from repro.config.machines import BIG, SMALL, MachineConfig
from repro.sched.base import Assignment, SegmentPlan
from repro.sched.performance import PerformanceScheduler
from repro.sched.reliability import ReliabilityScheduler
from repro.sched.sampling import (
    DEFAULT_SWAP_THRESHOLD,
    CoreTypeSample,
    SamplingScheduler,
)

__all__ = ["PLACER_SCHEDULERS", "SlotPlacer"]

#: Sampling-based schedulers the placer can drive.
PLACER_SCHEDULERS: dict[str, type[SamplingScheduler]] = {
    "reliability": ReliabilityScheduler,
    "performance": PerformanceScheduler,
}

_ZERO_SAMPLE = CoreTypeSample(
    instructions_per_second=0.0, abc_per_second=0.0
)


class SlotPlacer:
    """Greedy pair-swap placement over core slots.

    ``slots`` passed to :meth:`plan` is a per-slot sequence of the
    current occupants (``None`` = empty); an occupant must expose
    ``samples`` (``{core_type: CoreTypeSample}`` of *real* measured
    samples) and ``consecutive`` (quanta spent on the current core
    type) -- see :class:`~repro.service.server.ServiceJob`.
    """

    def __init__(
        self,
        machine: MachineConfig,
        scheduler_name: str = "reliability",
        *,
        swap_threshold: float = DEFAULT_SWAP_THRESHOLD,
    ):
        try:
            cls = PLACER_SCHEDULERS[scheduler_name]
        except KeyError:
            raise ValueError(
                f"unknown placement scheduler {scheduler_name!r}; "
                f"known: {', '.join(PLACER_SCHEDULERS)}"
            ) from None
        self.machine = machine
        self.scheduler_name = scheduler_name
        self.scheduler = cls(
            machine, machine.num_cores, swap_threshold=swap_threshold
        )
        self.assignment = Assignment(tuple(range(machine.num_cores)))

    @property
    def recorder(self):
        """Optional :class:`~repro.obs.decisions.DecisionTraceRecorder`."""
        return self.scheduler.recorder

    @recorder.setter
    def recorder(self, value) -> None:
        self.scheduler.recorder = value

    def core_of(self, slot: int) -> int:
        """The core a slot is currently bound to."""
        return self.assignment.core_of[slot]

    def free_slots_by_preference(self, slots: Sequence) -> list[int]:
        """Empty slots in admission order: big cores first, then core id."""
        free = [i for i, job in enumerate(slots) if job is None]
        return sorted(
            free,
            key=lambda i: (
                self.machine.core_type(self.core_of(i)) != BIG,
                self.core_of(i),
            ),
        )

    def _effective_samples(
        self, slots: Sequence
    ) -> dict[tuple[int, str], CoreTypeSample]:
        eff: dict[tuple[int, str], CoreTypeSample] = {}
        for i, job in enumerate(slots):
            big = job.samples.get(BIG) if job is not None else None
            small = job.samples.get(SMALL) if job is not None else None
            if big is None and small is None:
                big = small = _ZERO_SAMPLE
            elif big is None:
                big = small
            elif small is None:
                small = big
            eff[(i, BIG)] = big
            eff[(i, SMALL)] = small
        return eff

    def plan(self, slots: Sequence, quantum_index: int) -> list[SegmentPlan]:
        """Segments for the next quantum (fractions sum to 1).

        Assignments are over slots: ``core_of[slot]`` is the core the
        slot's occupant (if any) runs on this segment.
        """
        machine = self.machine
        sched = self.scheduler
        if len(slots) != machine.num_cores:
            raise ValueError("one slot per core required")
        before = self.assignment.core_of
        sched._samples = self._effective_samples(slots)
        self.assignment = sched._optimize(self.assignment)
        after = self.assignment

        # Staleness rule over occupied slots: refresh any job missing
        # an off-type sample or parked on one core type too long.
        stale: list[int] = []
        for i, job in enumerate(slots):
            if job is None:
                continue
            my_type = after.core_type_of(i, machine)
            other = SMALL if my_type == BIG else BIG
            if (
                job.samples.get(other) is None
                or job.consecutive >= machine.sampling_period_quanta
            ):
                stale.append(i)
        sampling = after
        sampling_swaps: list[tuple[int, int]] = []
        used: set[int] = set()
        for slot in sorted(stale, key=lambda i: -slots[i].consecutive):
            if slot in used:
                continue
            my_type = after.core_type_of(slot, machine)
            partners = [
                j
                for j in range(machine.num_cores)
                if j != slot
                and j not in used
                and after.core_type_of(j, machine) != my_type
            ]
            if not partners:
                continue
            # Prefer swapping with an empty slot (no work displaced);
            # otherwise with the occupant longest on the other type.
            partner = max(
                partners,
                key=lambda j: (
                    slots[j] is None,
                    slots[j].consecutive if slots[j] is not None else 0,
                    -j,
                ),
            )
            sampling = sampling.with_swap(slot, partner)
            sampling_swaps.append((slot, partner))
            used.update((slot, partner))

        if sampling_swaps:
            fraction = (
                machine.sampling_quantum_seconds / machine.quantum_seconds
            )
            plan = [
                SegmentPlan(fraction, sampling, True),
                SegmentPlan(1.0 - fraction, after, False),
            ]
        else:
            plan = [SegmentPlan(1.0, after, False)]

        recorder = sched.recorder
        if recorder is not None:
            objectives = [
                (
                    i,
                    sched.objective_value(i, BIG),
                    sched.objective_value(i, SMALL),
                )
                for i in range(machine.num_cores)
            ]
            recorder.quantum(
                quantum=quantum_index,
                scheduler=type(sched).__name__,
                phase="greedy",
                before=before,
                after=after.core_of,
                objectives=objectives,
                stale=tuple(stale),
                sampling_swaps=tuple(sampling_swaps),
                segments=tuple(
                    (p.fraction, p.assignment.core_of, p.is_sampling)
                    for p in plan
                ),
            )
        return plan
