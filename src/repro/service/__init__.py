"""Open-system scheduler-as-a-service on top of the multicore sim.

The paper evaluates *closed* multiprogram mixes: one fixed set of
applications per run.  This package adds the production-shaped view --
an **open system** where jobs arrive over (virtual) time, wait in a
bounded admission queue, get placed and migrated online by the
existing sampling schedulers, and depart when their instruction budget
completes:

* :mod:`repro.service.arrivals` -- seeded, deterministic arrival
  processes (Poisson, bursty/MMPP, diurnal) producing
  :class:`JobArrival` streams drawn from the canonical workload mixes.
* :mod:`repro.service.queue` / :mod:`repro.service.admission` -- the
  bounded admission queue and its policies (FIFO, SSER-aware
  priority), with overload shedding and SLA deadline expiry.
* :mod:`repro.service.placement` -- per-quantum online placement that
  reuses the paper's greedy pair-swap optimizer over *slots* (cores)
  instead of a fixed application list.
* :mod:`repro.service.server` -- the :class:`OpenSystem` virtual-time
  quantum loop plus the asyncio :class:`SchedulerService` protocol
  front-end (``repro serve``).
* :mod:`repro.service.events` -- the streaming JSONL event feed
  (arrive/shed/start/migrate/depart) in pure virtual time, so the
  feed is byte-identical across runs and worker counts.
* :mod:`repro.service.load` -- the closed-loop load generator behind
  ``repro load`` (queueing-delay-vs-SSER curves).

Everything is seed-deterministic: ``repro.check``'s
``open_system_conservation`` invariant and ``--service-cases``
differential fuzzing pin the event stream across serial and parallel
execution engines.
"""

from repro.service.admission import (
    ADMISSION_POLICIES,
    AdmissionPolicy,
    FifoAdmission,
    SserPriorityAdmission,
    make_admission,
)
from repro.service.arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    JobArrival,
    PoissonArrivals,
    make_process,
    service_benchmark_pool,
)
from repro.service.events import ServiceFeed, feed_digest
from repro.service.load import LoadPoint, run_load_point
from repro.service.placement import SlotPlacer
from repro.service.queue import AdmissionQueue, QueuedJob
from repro.service.server import (
    OpenSystem,
    SchedulerService,
    ServiceConfig,
    ServiceJob,
    ServiceResult,
)

__all__ = [
    "ADMISSION_POLICIES",
    "ARRIVAL_PROCESSES",
    "AdmissionPolicy",
    "AdmissionQueue",
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "FifoAdmission",
    "JobArrival",
    "LoadPoint",
    "OpenSystem",
    "PoissonArrivals",
    "QueuedJob",
    "SchedulerService",
    "ServiceConfig",
    "ServiceFeed",
    "ServiceJob",
    "ServiceResult",
    "SlotPlacer",
    "SserPriorityAdmission",
    "feed_digest",
    "make_admission",
    "make_process",
    "run_load_point",
    "service_benchmark_pool",
]
