"""Disk-cached experiment campaigns.

A campaign is a named collection of simulation runs (machine ×
workload × scheduler × parameters).  Each run's result is persisted as
JSON under the campaign directory the first time it executes;
re-running the campaign loads cached results, so large sweeps can be
built up incrementally and analyses re-run cheaply.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.ace.counters import AceCounterMode
from repro.config.machines import STANDARD_MACHINES, MachineConfig
from repro.sim.experiment import run_workload
from repro.sim.results import RunResult
from repro.sim.serialize import load_run, save_run
from repro.workloads.mixes import WorkloadMix


@dataclass(frozen=True)
class RunSpec:
    """A single run's full specification (and cache key).

    Attributes:
        machine: topology name (``"2B2S"``) or a custom tag when a
            machine override is supplied at run time.
        benchmarks: benchmark names, one per core.
        scheduler: scheduler name.
        instructions: per-benchmark instruction count.
        seed: random-scheduler seed.
        counter_mode: ACE counter architecture.
        small_frequency_ghz: optional small-core frequency override.
        sampling: optional (period quanta, sampling quantum seconds).
    """

    machine: str
    benchmarks: tuple[str, ...]
    scheduler: str
    instructions: int
    seed: int = 0
    counter_mode: str = AceCounterMode.FULL.value
    small_frequency_ghz: float | None = None
    sampling: tuple[int, float] | None = None

    def key(self) -> str:
        """Stable content hash used as the cache file name."""
        payload = json.dumps(
            {
                "machine": self.machine,
                "benchmarks": list(self.benchmarks),
                "scheduler": self.scheduler,
                "instructions": self.instructions,
                "seed": self.seed,
                "counter_mode": self.counter_mode,
                "small_frequency_ghz": self.small_frequency_ghz,
                "sampling": list(self.sampling) if self.sampling else None,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def build_machine(self) -> MachineConfig:
        machine = STANDARD_MACHINES[self.machine]()
        if self.small_frequency_ghz is not None:
            machine = machine.with_small_frequency(self.small_frequency_ghz)
        if self.sampling is not None:
            machine = machine.with_sampling(self.sampling[0], self.sampling[1])
        return machine


class Campaign:
    """A directory-backed collection of cached simulation runs."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, spec: RunSpec) -> Path:
        return self.directory / f"{spec.key()}.json"

    def is_cached(self, spec: RunSpec) -> bool:
        return self._path(spec).exists()

    def run(self, spec: RunSpec) -> RunResult:
        """Execute a spec, or load its cached result."""
        path = self._path(spec)
        if path.exists():
            self.hits += 1
            return load_run(path)
        self.misses += 1
        machine = spec.build_machine()
        result = run_workload(
            machine,
            spec.benchmarks,
            spec.scheduler,
            instructions=spec.instructions,
            seed=spec.seed,
            counter_mode=AceCounterMode(spec.counter_mode),
        )
        save_run(result, path)
        return result

    def run_all(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        return [self.run(spec) for spec in specs]

    def sweep(
        self,
        machine: str,
        workloads: Sequence[WorkloadMix | Sequence[str]],
        schedulers: Sequence[str],
        instructions: int,
        **overrides,
    ) -> dict[str, list[RunResult]]:
        """Cached equivalent of :func:`repro.sim.experiment.sweep`."""
        results: dict[str, list[RunResult]] = {s: [] for s in schedulers}
        for index, mix in enumerate(workloads):
            names = (
                mix.benchmarks if isinstance(mix, WorkloadMix) else tuple(mix)
            )
            for scheduler in schedulers:
                spec = RunSpec(
                    machine=machine,
                    benchmarks=names,
                    scheduler=scheduler,
                    instructions=instructions,
                    seed=index,
                    **overrides,
                )
                results[scheduler].append(self.run(spec))
        return results

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed
