"""Disk-cached experiment campaigns.

A campaign is a named collection of simulation runs (machine ×
workload × scheduler × parameters).  Each run's result is persisted as
JSON under the campaign directory the first time it executes;
re-running the campaign loads cached results, so large sweeps can be
built up incrementally and analyses re-run cheaply.

Batch execution (:meth:`Campaign.run_all`, :meth:`Campaign.sweep`)
goes through the :mod:`repro.runtime` engine, so campaigns
parallelize across CPU cores with ``jobs=N`` and tolerate worker
failures; cache writes are atomic, and corrupt or partial cache
entries are treated as misses rather than raising.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.ace.counters import AceCounterMode
from repro.config.machines import STANDARD_MACHINES, MachineConfig
from repro.sim.experiment import run_workload
from repro.sim.results import RunResult
from repro.workloads.mixes import WorkloadMix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.engine import ExecutionEngine
    from repro.runtime.store import ResultStore


@dataclass(frozen=True)
class RunSpec:
    """A single run's full specification (and cache key).

    Attributes:
        machine: topology name (``"2B2S"``) or a custom tag when a
            machine override is supplied at run time.
        benchmarks: benchmark names, one per core.
        scheduler: scheduler name.
        instructions: per-benchmark instruction count (``None`` runs
            each profile at its full length).
        seed: random-scheduler seed.
        counter_mode: ACE counter architecture.
        small_frequency_ghz: optional small-core frequency override.
        sampling: optional (period quanta, sampling quantum seconds).
    """

    machine: str
    benchmarks: tuple[str, ...]
    scheduler: str
    instructions: int | None
    seed: int = 0
    counter_mode: str = AceCounterMode.FULL.value
    small_frequency_ghz: float | None = None
    sampling: tuple[int, float] | None = None

    def key(self) -> str:
        """Stable content hash used as the cache file name.

        Derived structurally from *every* dataclass field (via
        :func:`dataclasses.asdict`), so a field added to the spec --
        a new scheduler kwarg, say -- can never be silently omitted
        from the cache key and collide two distinct runs.  The JSON
        encoding matches the previous hand-written payload exactly,
        so existing cache directories stay valid.
        """
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from its :func:`dataclasses.asdict` form.

        JSON round-trips tuples as lists; this is the inverse used by
        campaign resume (:class:`repro.runtime.resume.ResumeState`) to
        rebuild specs recorded in an event log's plan record.
        """
        data = dict(data)
        data["benchmarks"] = tuple(data["benchmarks"])
        if data.get("sampling") is not None:
            data["sampling"] = tuple(data["sampling"])
        return cls(**data)

    def build_machine(self) -> MachineConfig:
        try:
            machine = STANDARD_MACHINES[self.machine]()
        except KeyError:
            raise ValueError(
                f"unknown machine {self.machine!r}; known machines: "
                f"{', '.join(STANDARD_MACHINES)}.  Specs with a custom "
                f"tag need an explicit machine override at run time."
            ) from None
        if self.small_frequency_ghz is not None:
            machine = machine.with_small_frequency(self.small_frequency_ghz)
        if self.sampling is not None:
            machine = machine.with_sampling(self.sampling[0], self.sampling[1])
        return machine


class Campaign:
    """A directory-backed collection of cached simulation runs.

    The directory is a :class:`repro.runtime.store.ResultStore` --
    one atomically-written ``<spec key>.json`` per completed run, with
    corrupt entries read as misses -- so a campaign directory doubles
    as the durable half of checkpoint/resume (``repro resume``).
    """

    def __init__(self, directory: str | Path):
        from repro.runtime.store import ResultStore

        self.store = ResultStore(directory)
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Path:
        return self.store.directory

    def _path(self, spec: RunSpec) -> Path:
        return self.store.path_for(spec)

    def is_cached(self, spec: RunSpec) -> bool:
        return self.store.contains(spec.key())

    def run(
        self, spec: RunSpec, machine: MachineConfig | None = None
    ) -> RunResult:
        """Execute a spec, or load its cached result.

        Args:
            spec: the run to execute.
            machine: optional machine override; required when
                ``spec.machine`` is a custom tag rather than one of
                the standard topology names.
        """
        key = spec.key()
        result = self.store.load(key)
        if result is not None:
            self.hits += 1
            return result
        self.misses += 1
        if machine is None:
            machine = spec.build_machine()
        result = run_workload(
            machine,
            spec.benchmarks,
            spec.scheduler,
            instructions=spec.instructions,
            seed=spec.seed,
            counter_mode=AceCounterMode(spec.counter_mode),
        )
        self.store.save(key, result)
        return result

    def run_all(
        self,
        specs: Sequence[RunSpec],
        *,
        jobs: int = 1,
        engine: "ExecutionEngine | None" = None,
        machines: MachineConfig | Sequence[MachineConfig | None] | None = None,
        checks=None,
        batched: bool = False,
    ) -> list[RunResult]:
        """Execute a batch of specs through the runtime engine.

        Results come back in spec order, identically to running each
        spec serially.  With the engine's default fail-fast policy a
        permanent job failure raises
        :class:`~repro.runtime.retry.CampaignError`; under a collect
        policy, failed entries are ``None``.

        ``checks`` is the engine's opt-in per-result invariant hook
        (see :func:`repro.check.default_run_checks`); it validates
        cached and freshly executed results alike.  ``batched``
        executes cache misses through one cross-run
        :class:`~repro.batch.sweep.BatchedSweep` instead of per-job
        scalar simulations (byte-identical results, see
        ``docs/batching.md``); it is ignored when an explicit
        ``engine`` is supplied.
        """
        from repro.runtime.engine import ExecutionEngine

        if engine is None:
            if batched:
                from repro.batch.sweep import BatchedExecutionEngine

                engine = BatchedExecutionEngine(jobs=jobs, checks=checks)
            else:
                engine = ExecutionEngine(jobs=jobs, checks=checks)
        elif checks is not None and engine.checks is None:
            engine.checks = checks
        report = engine.run_many(specs, machines=machines, store=self.store)
        self.hits += report.cache_hits
        self.misses += report.executed
        return report.results

    def sweep(
        self,
        machine: str,
        workloads: Sequence[WorkloadMix | Sequence[str]],
        schedulers: Sequence[str],
        instructions: int | None,
        *,
        jobs: int = 1,
        engine: "ExecutionEngine | None" = None,
        checks=None,
        batched: bool = False,
        **overrides,
    ) -> dict[str, list[RunResult]]:
        """Cached equivalent of :func:`repro.sim.experiment.sweep`.

        Extra keyword ``overrides`` become :class:`RunSpec` fields
        (e.g. ``counter_mode``, ``small_frequency_ghz``); ``jobs`` and
        ``engine`` control parallel execution, ``checks`` runs the
        per-result invariant hook on every run, and ``batched``
        executes the misses through one cross-run
        :class:`~repro.batch.sweep.BatchedSweep`.
        """
        specs = []
        for index, mix in enumerate(workloads):
            names = (
                mix.benchmarks if isinstance(mix, WorkloadMix) else tuple(mix)
            )
            for scheduler in schedulers:
                specs.append(
                    RunSpec(
                        machine=machine,
                        benchmarks=names,
                        scheduler=scheduler,
                        instructions=instructions,
                        seed=index,
                        **overrides,
                    )
                )
        flat = self.run_all(
            specs, jobs=jobs, engine=engine, checks=checks, batched=batched
        )
        results: dict[str, list[RunResult]] = {s: [] for s in schedulers}
        for spec, result in zip(specs, flat):
            results[spec.scheduler].append(result)
        return results

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        return self.store.clear()
