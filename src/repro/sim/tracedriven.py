"""Trace-driven multiprogram simulation.

Wires the trace-driven pipeline models into the multicore engine with
a *really shared* L3 cache: the big- and small-core models of one
machine reference the same :class:`SetAssociativeCache` instance, so
LLC capacity contention between co-running applications is physical
rather than analytical.  (Memory-bus queueing still comes from the
analytical bandwidth model, which the trace models consume through the
DRAM-latency multiplier.)

This path is O(instructions) -- use it for validation and small-scale
studies (10^5..10^7 instructions); the mechanistic path covers
paper-scale runs.
"""

from __future__ import annotations

from typing import Sequence

from repro.ace.counters import AceCounterMode
from repro.config.machines import MachineConfig
from repro.cores.base import CoreModel
from repro.cores.inorder import InOrderCoreModel
from repro.cores.ooo import OutOfOrderCoreModel
from repro.cores.tracebase import TraceApplication
from repro.memory.cache import SetAssociativeCache
from repro.obs.tracing import span
from repro.sim.experiment import make_scheduler
from repro.sim.isolated import ReferenceTimes, run_isolated
from repro.sim.multicore import MulticoreSimulation
from repro.sim.results import RunResult
from repro.kernels.trace_cache import cached_generate_trace
from repro.workloads.mixes import WorkloadMix
from repro.workloads.spec2006 import benchmark


def trace_driven_models(machine: MachineConfig) -> dict[str, CoreModel]:
    """Big/small trace-driven models sharing one physical L3."""
    shared_l3 = SetAssociativeCache(machine.memory.l3, "shared-l3")
    return {
        "big": OutOfOrderCoreModel(
            machine.big, machine.memory, shared_l3=shared_l3
        ),
        "small": InOrderCoreModel(
            machine.small, machine.memory, shared_l3=shared_l3
        ),
    }


def trace_applications(
    names: Sequence[str], instructions: int, seed: int = 0
) -> list[TraceApplication]:
    """Generate trace-backed applications for benchmark names."""
    return [
        TraceApplication(
            cached_generate_trace(benchmark(name), instructions, seed=seed + i)
        )
        for i, name in enumerate(names)
    ]


def run_trace_workload(
    machine: MachineConfig,
    mix: WorkloadMix | Sequence[str],
    scheduler_name: str,
    *,
    instructions: int = 200_000,
    seed: int = 0,
    counter_mode: AceCounterMode = AceCounterMode.FULL,
    record_timeline: bool = False,
) -> RunResult:
    """Run one workload mix with the trace-driven pipeline models.

    The scheduler quantum is scaled so a run covers a few dozen quanta
    at trace scale (the paper's 1 ms quantum assumes 10^9-instruction
    applications); the sampling-quantum-to-quantum ratio and the
    staleness period are preserved.
    """
    names = mix.benchmarks if isinstance(mix, WorkloadMix) else tuple(mix)
    with span("trace.generate", apps=len(names)):
        apps = trace_applications(names, instructions, seed=seed)
    # Scale the quantum to ~1/50th of a typical application runtime.
    cycles_estimate = instructions  # IPC ~ 1 on the big core
    quantum_seconds = max(
        cycles_estimate / 50 / machine.big.frequency_hz, 1e-7
    )
    scaled = MachineConfig(
        big_cores=machine.big_cores,
        small_cores=machine.small_cores,
        big=machine.big,
        small=machine.small,
        memory=machine.memory,
        quantum_seconds=quantum_seconds,
        sampling_quantum_seconds=quantum_seconds / 10,
        sampling_period_quanta=machine.sampling_period_quanta,
        migration_overhead_seconds=min(
            machine.migration_overhead_seconds, quantum_seconds / 50
        ),
    )
    scheduler = make_scheduler(scheduler_name, scaled, len(apps), seed)
    # Reference times come from a *separate* isolated model so the
    # measurement neither warms nor pollutes the shared-L3 models.
    # A priming pass warms the reference caches first: in the mix the
    # applications run repeatedly with warm private caches, so a
    # cold-cache reference would overestimate T_ref at trace scale.
    reference_model = OutOfOrderCoreModel(scaled.big, scaled.memory)
    references = []
    with span("trace.reference_runs"):
        for app in apps:
            run_isolated(reference_model, app)  # warm-up pass
            run = run_isolated(reference_model, app)
            references.append(
                ReferenceTimes.uniform(
                    app, run.cycles / scaled.big.frequency_hz
                )
            )
    simulation = MulticoreSimulation(
        scaled,
        apps,
        scheduler,
        models=trace_driven_models(scaled),
        counter_mode=counter_mode,
        record_timeline=record_timeline,
        reference_times=references,
    )
    result = simulation.run()
    result.scheduler_name = scheduler_name
    return result
