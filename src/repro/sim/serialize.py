"""JSON serialization for simulation results.

Sweeps at paper scale take minutes; persisting
:class:`~repro.sim.results.RunResult` objects lets analyses and
reports run on stored results without re-simulation.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.sim.results import AppRunRecord, RunResult, TimelinePoint

#: Format marker embedded in every serialized result.
FORMAT_VERSION = 1


def run_result_to_dict(result: RunResult) -> dict[str, Any]:
    """Convert a run result to plain JSON-serializable data."""
    return {
        "format_version": FORMAT_VERSION,
        "machine_name": result.machine_name,
        "scheduler_name": result.scheduler_name,
        "quanta": result.quanta,
        "duration_seconds": result.duration_seconds,
        "apps": [dataclasses.asdict(app) for app in result.apps],
        "timeline": [dataclasses.asdict(p) for p in result.timeline],
    }


def run_result_from_dict(data: dict[str, Any]) -> RunResult:
    """Rebuild a run result from serialized data."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        apps = [AppRunRecord(**app) for app in data["apps"]]
        timeline = [TimelinePoint(**p) for p in data.get("timeline", [])]
        return RunResult(
            machine_name=data["machine_name"],
            scheduler_name=data["scheduler_name"],
            quanta=data["quanta"],
            duration_seconds=data["duration_seconds"],
            apps=apps,
            timeline=timeline,
        )
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed result data: {error}") from error


def save_run(result: RunResult, path: str | Path) -> Path:
    """Write a run result to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(run_result_to_dict(result), indent=1))
    return path


def load_run(path: str | Path) -> RunResult:
    """Read a run result from a JSON file."""
    return run_result_from_dict(json.loads(Path(path).read_text()))


def save_sweep(
    results: dict[str, list[RunResult]], path: str | Path
) -> Path:
    """Write a whole sweep (scheduler -> runs) to one JSON file."""
    path = Path(path)
    payload = {
        "format_version": FORMAT_VERSION,
        "sweep": {
            name: [run_result_to_dict(r) for r in runs]
            for name, runs in results.items()
        },
    }
    path.write_text(json.dumps(payload))
    return path


def load_sweep(path: str | Path) -> dict[str, list[RunResult]]:
    """Read a sweep written by :func:`save_sweep`."""
    data = json.loads(Path(path).read_text())
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError("unsupported sweep format")
    return {
        name: [run_result_from_dict(r) for r in runs]
        for name, runs in data["sweep"].items()
    }
