"""JSON serialization for simulation results.

Sweeps at paper scale take minutes; persisting
:class:`~repro.sim.results.RunResult` objects lets analyses and
reports run on stored results without re-simulation.

Writes are atomic (temp file + :func:`os.replace`) so concurrent
campaign workers sharing a cache directory never leave a partial file
behind, and reads raise :class:`ResultCacheError` on anything
unreadable so callers can treat corrupt entries as cache misses.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any

from repro.sim.results import AppRunRecord, RunResult, TimelinePoint

#: Format marker embedded in every serialized result.
FORMAT_VERSION = 1


class ResultCacheError(ValueError):
    """A stored result could not be read back (missing, truncated,
    corrupt JSON, wrong format version, or malformed fields)."""


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The temp name embeds the PID so concurrent writers in different
    worker processes never collide; ``os.replace`` makes the final
    rename atomic, so readers see either the old file or the new one,
    never a partial write.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def run_result_to_dict(result: RunResult) -> dict[str, Any]:
    """Convert a run result to plain JSON-serializable data."""
    return {
        "format_version": FORMAT_VERSION,
        "machine_name": result.machine_name,
        "scheduler_name": result.scheduler_name,
        "quanta": result.quanta,
        "duration_seconds": result.duration_seconds,
        "apps": [dataclasses.asdict(app) for app in result.apps],
        "timeline": [dataclasses.asdict(p) for p in result.timeline],
    }


def run_result_from_dict(data: dict[str, Any]) -> RunResult:
    """Rebuild a run result from serialized data."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ResultCacheError(
            f"unsupported result format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        apps = [AppRunRecord(**app) for app in data["apps"]]
        timeline = [TimelinePoint(**p) for p in data.get("timeline", [])]
        return RunResult(
            machine_name=data["machine_name"],
            scheduler_name=data["scheduler_name"],
            quanta=data["quanta"],
            duration_seconds=data["duration_seconds"],
            apps=apps,
            timeline=timeline,
        )
    except (KeyError, TypeError) as error:
        raise ResultCacheError(f"malformed result data: {error}") from error


def save_run(result: RunResult, path: str | Path) -> Path:
    """Write a run result to a JSON file (atomically)."""
    path = Path(path)
    _atomic_write_text(path, json.dumps(run_result_to_dict(result), indent=1))
    return path


def load_run(path: str | Path) -> RunResult:
    """Read a run result from a JSON file.

    Raises:
        ResultCacheError: if the file is missing, not valid JSON, or
            does not hold a result in the current format.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ResultCacheError(
            f"unreadable result file {path}: {error}"
        ) from error
    return run_result_from_dict(data)


def save_sweep(
    results: dict[str, list[RunResult]], path: str | Path
) -> Path:
    """Write a whole sweep (scheduler -> runs) to one JSON file."""
    path = Path(path)
    payload = {
        "format_version": FORMAT_VERSION,
        "sweep": {
            name: [run_result_to_dict(r) for r in runs]
            for name, runs in results.items()
        },
    }
    _atomic_write_text(path, json.dumps(payload))
    return path


def load_sweep(path: str | Path) -> dict[str, list[RunResult]]:
    """Read a sweep written by :func:`save_sweep`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ResultCacheError(
            f"unreadable sweep file {path}: {error}"
        ) from error
    if data.get("format_version") != FORMAT_VERSION:
        raise ResultCacheError("unsupported sweep format")
    return {
        name: [run_result_from_dict(r) for r in runs]
        for name, runs in data["sweep"].items()
    }
