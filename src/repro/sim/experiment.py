"""Experiment harness shared by the benchmarks and examples.

Convenience functions for running the paper's evaluations: build
scheduler instances by name, run a workload mix on a machine, and
sweep workload lists under several schedulers.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.ace.counters import AceCounterMode
from repro.config.machines import MachineConfig
from repro.cores.base import CoreModel
from repro.sched.base import Scheduler
from repro.sched.performance import PerformanceScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.reliability import ReliabilityScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.sim.results import RunResult
from repro.workloads.mixes import WorkloadMix
from repro.workloads.spec2006 import benchmark

#: The three dynamic schedulers evaluated throughout Section 6.
SCHEDULER_NAMES = ("random", "performance", "reliability")


def make_scheduler(
    name: str, machine: MachineConfig, num_apps: int, seed: int = 0
) -> Scheduler:
    """Instantiate a scheduler by its evaluation name."""
    if name == "random":
        return RandomScheduler(machine, num_apps, seed=seed)
    if name == "performance":
        return PerformanceScheduler(machine, num_apps)
    if name == "reliability":
        return ReliabilityScheduler(machine, num_apps)
    if name == "modes":
        # Imported here: repro.sched.modes pulls in repro.ace, which
        # imports back into repro.sched at package-init time.
        from repro.sched.modes import ModeAwareReliabilityScheduler

        return ModeAwareReliabilityScheduler(machine, num_apps)
    raise ValueError(
        f"unknown scheduler {name!r}; known: {SCHEDULER_NAMES + ('modes',)}"
    )


def run_workload(
    machine: MachineConfig,
    mix: WorkloadMix | Sequence[str],
    scheduler_name: str,
    *,
    instructions: int | None = None,
    seed: int = 0,
    counter_mode: AceCounterMode = AceCounterMode.FULL,
    models: dict[str, CoreModel] | None = None,
    record_timeline: bool = False,
) -> RunResult:
    """Run one workload mix under one scheduler.

    Args:
        machine: HCMP configuration.
        mix: a :class:`WorkloadMix` or a plain list of benchmark names.
        scheduler_name: ``"random"``, ``"performance"`` or
            ``"reliability"``.
        instructions: optional per-benchmark instruction override
            (scales runs down for quick experiments and tests).
        seed: seed for the random scheduler.
        counter_mode: ACE counter architecture the scheduler reads.
        models: core-model override (defaults to mechanistic models).
        record_timeline: record per-quantum ABC samples (Figure 4).
    """
    names = mix.benchmarks if isinstance(mix, WorkloadMix) else tuple(mix)
    profiles = [benchmark(name) for name in names]
    if instructions is not None:
        profiles = [p.scaled(instructions) for p in profiles]
    scheduler = make_scheduler(scheduler_name, machine, len(profiles), seed)
    simulation = MulticoreSimulation(
        machine,
        profiles,
        scheduler,
        models=models,
        counter_mode=counter_mode,
        record_timeline=record_timeline,
    )
    result = simulation.run()
    result.scheduler_name = scheduler_name
    return result


def sweep_specs(
    machine: MachineConfig,
    workloads: Iterable[WorkloadMix],
    scheduler_names: Sequence[str] = SCHEDULER_NAMES,
    *,
    instructions: int | None = None,
    counter_mode: AceCounterMode = AceCounterMode.FULL,
) -> tuple[list, list[str]]:
    """The sweep's campaign plan: ``(specs, labels)`` in run order.

    This is the single definition of how a sweep turns into
    :class:`~repro.sim.campaign.RunSpec`s, shared by the serial/
    parallel/batched engine path (:func:`sweep`) and the shard
    coordinator (``repro shard``), so every execution mode runs the
    byte-identical campaign.
    """
    from repro.sim.campaign import RunSpec

    specs: list[RunSpec] = []
    labels: list[str] = []
    for index, mix in enumerate(workloads):
        names = mix.benchmarks if isinstance(mix, WorkloadMix) else tuple(mix)
        category = mix.category if isinstance(mix, WorkloadMix) else "mix"
        for name in scheduler_names:
            specs.append(
                RunSpec(
                    machine=machine.name,
                    benchmarks=names,
                    scheduler=name,
                    instructions=instructions,
                    seed=index,
                    counter_mode=counter_mode.value,
                )
            )
            labels.append(f"{category}/{index} {name}")
    return specs, labels


def sweep(
    machine: MachineConfig,
    workloads: Iterable[WorkloadMix],
    scheduler_names: Sequence[str] = SCHEDULER_NAMES,
    *,
    instructions: int | None = None,
    counter_mode: AceCounterMode = AceCounterMode.FULL,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    sinks: Sequence = (),
    checks=None,
    metrics: bool = False,
    store=None,
    batched: bool = False,
) -> dict[str, list[RunResult]]:
    """Run a workload list under several schedulers.

    Execution goes through the :mod:`repro.runtime` engine: ``jobs``
    sets the worker-process count (1 = in-process serial), ``sinks``
    receive the structured progress-event stream, ``checks`` is the
    engine's opt-in per-result invariant hook (see
    :func:`repro.check.default_run_checks`), and ``progress`` is
    a legacy per-run text callback kept for compatibility.  With
    ``metrics``, every job collects a :mod:`repro.obs.metrics`
    registry whose snapshot is emitted as a
    :class:`~repro.runtime.events.MetricsSnapshot` event (aggregate
    with ``repro stats``).  ``store`` (a directory path or
    :class:`~repro.runtime.store.ResultStore`) makes the sweep durable:
    completed results persist as atomically-written per-spec files, are
    reused as cache hits on re-run, and -- together with a
    :class:`~repro.runtime.events.JsonlEventSink` log -- allow an
    interrupted sweep to be finished with ``repro resume``.  Results
    are deterministic: the same specs in the same order regardless of
    ``jobs``.

    ``batched`` executes the whole sweep through one
    :class:`~repro.batch.sweep.BatchedSweep` (cross-run numpy arrays)
    instead of per-job scalar simulations; results are byte-identical
    to the scalar engine's (see ``docs/batching.md``).

    Returns ``{scheduler_name: [RunResult per workload, in order]}``.
    """
    from repro.runtime.engine import ExecutionEngine
    from repro.runtime.events import CallbackSink, JobFinished

    specs, labels = sweep_specs(
        machine,
        workloads,
        scheduler_names,
        instructions=instructions,
        counter_mode=counter_mode,
    )

    sinks = list(sinks)
    if progress is not None:
        callback = progress  # bind for the closure below

        def _legacy_line(event) -> None:
            if isinstance(event, JobFinished) and event.sser is not None:
                callback(f"{event.label}: sser={event.sser:.3e}")

        sinks.append(CallbackSink(_legacy_line))

    if batched:
        from repro.batch.sweep import BatchedExecutionEngine

        engine = BatchedExecutionEngine(
            jobs=jobs, sinks=sinks, checks=checks, metrics=metrics
        )
    else:
        engine = ExecutionEngine(
            jobs=jobs, sinks=sinks, checks=checks, metrics=metrics
        )
    report = engine.run_many(
        specs, machines=machine, labels=labels, store=store
    )
    results: dict[str, list[RunResult]] = {name: [] for name in scheduler_names}
    for spec, result in zip(specs, report.results):
        results[spec.scheduler].append(result)
    return results


def geomean_ratio(
    numerators: Sequence[float], denominators: Sequence[float]
) -> float:
    """Geometric mean of pairwise ratios (used for normalized metrics)."""
    if len(numerators) != len(denominators) or not numerators:
        raise ValueError("need equal-length, non-empty sequences")
    product = 1.0
    for num, den in zip(numerators, denominators):
        if num <= 0 or den <= 0:
            raise ValueError("ratios need positive values")
        product *= num / den
    return product ** (1.0 / len(numerators))


def average_ratio(
    numerators: Sequence[float], denominators: Sequence[float]
) -> float:
    """Arithmetic mean of pairwise ratios."""
    if len(numerators) != len(denominators) or not numerators:
        raise ValueError("need equal-length, non-empty sequences")
    return sum(n / d for n, d in zip(numerators, denominators)) / len(numerators)
