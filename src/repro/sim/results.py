"""Result containers for multicore simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.reliability import DEFAULT_IFR


@dataclass
class AppRunRecord:
    """Everything accumulated for one application over a run.

    Attributes:
        name: application name.
        instructions: total committed instructions (across restarts).
        time_seconds: wall-clock time in the mix (equals the
            experiment duration; applications run continuously).
        abc_seconds: ground-truth ACE bit-seconds accumulated.
        occupancy_bit_seconds: total occupied bit-seconds (power model).
        reference_time_seconds: isolated big-core time for the same
            work (T_ref).
        time_big_seconds / time_small_seconds: time per core type.
        instructions_big / instructions_small: work per core type.
        dram_accesses / l3_accesses: shared-resource traffic.
        migrations: number of core migrations (including sampling).
        completed_runs: whole passes over the profile.
    """

    name: str
    instructions: int = 0
    time_seconds: float = 0.0
    abc_seconds: float = 0.0
    occupancy_bit_seconds: float = 0.0
    reference_time_seconds: float = 0.0
    time_big_seconds: float = 0.0
    time_small_seconds: float = 0.0
    instructions_big: int = 0
    instructions_small: int = 0
    dram_accesses: float = 0.0
    l3_accesses: float = 0.0
    migrations: int = 0
    completed_runs: int = 0

    @property
    def wser(self) -> float:
        """Weighted SER (Equation 2), with the default IFR."""
        return self.abc_seconds / self.reference_time_seconds * DEFAULT_IFR

    @property
    def slowdown(self) -> float:
        return self.time_seconds / self.reference_time_seconds

    @property
    def normalized_progress(self) -> float:
        """STP contribution: reference time over mix time."""
        return self.reference_time_seconds / self.time_seconds

    @property
    def ser(self) -> float:
        """Raw SER within the mix (Equation 1)."""
        return self.abc_seconds / self.time_seconds * DEFAULT_IFR


@dataclass(frozen=True)
class TimelinePoint:
    """One application-quantum sample for ABC-over-time plots (Fig 4)."""

    time_seconds: float
    app_name: str
    core_type: str
    abc_per_second: float
    instructions: int


@dataclass
class RunResult:
    """Outcome of one multicore simulation run."""

    machine_name: str
    scheduler_name: str
    quanta: int
    duration_seconds: float
    apps: list[AppRunRecord]
    timeline: list[TimelinePoint] = field(default_factory=list)

    @property
    def sser(self) -> float:
        """System soft error rate (Equation 3)."""
        return sum(app.wser for app in self.apps)

    @property
    def stp(self) -> float:
        """System throughput (sum of normalized progress)."""
        return sum(app.normalized_progress for app in self.apps)

    @property
    def antt(self) -> float:
        """Average normalized turnaround time."""
        return sum(app.slowdown for app in self.apps) / len(self.apps)

    def app(self, name: str) -> AppRunRecord:
        for record in self.apps:
            if record.name == name:
                return record
        raise KeyError(f"no application named {name!r} in this run")
