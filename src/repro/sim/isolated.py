"""Isolated (single-application) execution helpers.

Two things need isolated runs:

* the **reference times** that weight SSER and STP (``T_ref`` is the
  application's execution time on an isolated big core, Section 3);
* the **oracle schedules** of Section 2.4, which are built purely
  from isolated per-core-type performance and SER numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.machines import BIG, SMALL
from repro.cores.base import ISOLATED, CoreModel, MemoryEnvironment, QuantumResult
from repro.workloads.characteristics import BenchmarkProfile

#: Cycle-budget granularity for isolated runs of generic core models.
_CHUNK_CYCLES = 50e6


def run_isolated(
    model: CoreModel,
    profile: BenchmarkProfile,
    env: MemoryEnvironment = ISOLATED,
    chunk_cycles: float = _CHUNK_CYCLES,
) -> QuantumResult:
    """Run a full profile to completion on an isolated core.

    Works with any :class:`CoreModel` by repeatedly granting cycle
    budgets until the profile's instruction count is reached.
    """
    total = QuantumResult.zero()
    position = 0
    while position < profile.instructions:
        chunk = model.run_cycles(profile, position, chunk_cycles, env)
        if chunk.instructions <= 0:
            raise RuntimeError(
                f"{profile.name}: core model made no progress at {position}"
            )
        # Clip the final chunk at the profile boundary.
        overshoot = position + chunk.instructions - profile.instructions
        if overshoot > 0:
            scale = (chunk.instructions - overshoot) / chunk.instructions
            chunk = QuantumResult(
                instructions=chunk.instructions - overshoot,
                cycles=chunk.cycles * scale,
                ace_bit_cycles={
                    k: v * scale for k, v in chunk.ace_bit_cycles.items()
                },
                occupancy_bit_cycles={
                    k: v * scale for k, v in chunk.occupancy_bit_cycles.items()
                },
                memory_accesses=chunk.memory_accesses * scale,
                l3_accesses=chunk.l3_accesses * scale,
            )
        total = total.merged_with(chunk)
        position += chunk.instructions
    return total


@dataclass(frozen=True)
class IsolatedRun:
    """Summary of one application alone on one core type.

    Attributes:
        core_type: ``"big"`` or ``"small"``.
        time_seconds: full-run execution time.
        abc_seconds: full-run ACE bit-seconds.
        instructions: the profile's instruction count.
    """

    core_type: str
    time_seconds: float
    abc_seconds: float
    instructions: int

    @property
    def ser_rate(self) -> float:
        """ACE bits per second (proportional to SER)."""
        return self.abc_seconds / self.time_seconds


@dataclass(frozen=True)
class IsolatedStats:
    """Isolated big- and small-core summaries of one application."""

    name: str
    big: IsolatedRun
    small: IsolatedRun

    def run(self, core_type: str) -> IsolatedRun:
        if core_type == BIG:
            return self.big
        if core_type == SMALL:
            return self.small
        raise ValueError(f"unknown core type {core_type!r}")

    @property
    def reference_time_seconds(self) -> float:
        """T_ref: the isolated big-core execution time."""
        return self.big.time_seconds


def isolated_stats(
    profile: BenchmarkProfile,
    big_model: CoreModel,
    small_model: CoreModel,
) -> IsolatedStats:
    """Isolated statistics of one profile on both core types."""
    results = {}
    for core_type, model in ((BIG, big_model), (SMALL, small_model)):
        run = run_isolated(model, profile)
        results[core_type] = IsolatedRun(
            core_type=core_type,
            time_seconds=run.cycles / model.core.frequency_hz,
            abc_seconds=run.total_ace_bit_cycles / model.core.frequency_hz,
            instructions=run.instructions,
        )
    return IsolatedStats(name=profile.name, big=results[BIG], small=results[SMALL])


class ReferenceTimes:
    """Isolated big-core time as a function of work done.

    ``seconds_for(n)`` is the time an isolated big core needs for the
    first ``n`` dynamic instructions of the application, with whole-run
    wrap-around for restarted applications.  Built from per-segment
    seconds-per-instruction so mid-run phase changes are respected.
    """

    def __init__(
        self,
        profile,
        segment_seconds_per_instruction: list[float],
        boundaries: list[int] | None = None,
    ):
        """Construct from per-segment rates.

        Args:
            profile: anything with an ``instructions`` attribute; a
                :class:`BenchmarkProfile` supplies segment boundaries
                from its phases when ``boundaries`` is omitted.
            segment_seconds_per_instruction: rate per segment.
            boundaries: cumulative instruction boundaries, length
                ``len(rates) + 1``; defaults to the profile's phase
                boundaries.
        """
        if boundaries is None:
            boundaries = profile.phase_boundaries()
        if len(segment_seconds_per_instruction) != len(boundaries) - 1:
            raise ValueError("need one rate per segment")
        self.profile = profile
        self._spi = list(segment_seconds_per_instruction)
        self._boundaries = list(boundaries)
        self._full = sum(
            (self._boundaries[i + 1] - self._boundaries[i]) * self._spi[i]
            for i in range(len(self._spi))
        )

    @classmethod
    def from_models(
        cls, profile: BenchmarkProfile, big_model
    ) -> "ReferenceTimes":
        """Build from a mechanistic big-core model's phase analyses."""
        spi = []
        for _, chars in profile.phases:
            analysis = big_model.analyze(chars, ISOLATED)
            spi.append(analysis.cpi / big_model.core.frequency_hz)
        return cls(profile, spi)

    @classmethod
    def uniform(cls, profile, total_seconds: float) -> "ReferenceTimes":
        """A single-segment curve: constant seconds per instruction.

        Works for any application object exposing ``instructions``
        (trace-backed applications have no phase structure).
        """
        rate = total_seconds / profile.instructions
        return cls(profile, [rate], boundaries=[0, profile.instructions])

    @property
    def full_run_seconds(self) -> float:
        return self._full

    def seconds_for(self, instructions: int) -> float:
        """Reference time for a number of instructions (wrapping)."""
        if instructions < 0:
            raise ValueError("instruction count cannot be negative")
        full_runs, rest = divmod(instructions, self.profile.instructions)
        seconds = full_runs * self._full
        for i in range(len(self._spi)):
            lo, hi = self._boundaries[i], self._boundaries[i + 1]
            if rest <= lo:
                break
            seconds += (min(rest, hi) - lo) * self._spi[i]
        return seconds
