"""Quantum-driven heterogeneous multicore simulation engine.

Ties every substrate together: the scheduler plans each 1 ms quantum
(possibly split into a sampling segment and a main segment), the core
models execute each application's slice under the shared-resource
environment derived from the previous segment's measured demand, the
ACE counter architecture produces the observations the scheduler sees,
and ground-truth reliability/performance bookkeeping accumulates into
a :class:`~repro.sim.results.RunResult`.

Following the paper's methodology (Section 5): applications migrate
with a 20 us state-transfer penalty; the experiment ends when the
longest-running application finishes its full instruction budget, and
faster applications restart and are accounted across repetitions.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.ace.counters import AceCounterMode, measured_abc
from repro.config.machines import BIG, MachineConfig
from repro.cores.base import CoreModel, QuantumResult
from repro.cores.mechanistic import MechanisticCoreModel
from repro.memory.interference import ApplicationDemand, InterferenceModel
from repro.obs import metrics as obs_metrics
from repro.obs.tracing import span
from repro.sched.base import PARKED, Observation, Scheduler
from repro.sim.isolated import ReferenceTimes, run_isolated
from repro.sim.results import AppRunRecord, RunResult, TimelinePoint
from repro.workloads.characteristics import BenchmarkProfile

#: Hard cap on simulated quanta (a guard against non-terminating runs).
DEFAULT_MAX_QUANTA = 5_000_000


def default_models(machine: MachineConfig) -> dict[str, CoreModel]:
    """Mechanistic big/small core models for a machine."""
    return {
        "big": MechanisticCoreModel(machine.big, machine.memory),
        "small": MechanisticCoreModel(machine.small, machine.memory),
    }


def _reference_times(
    profile: BenchmarkProfile, big_model: CoreModel
) -> ReferenceTimes:
    if isinstance(big_model, MechanisticCoreModel):
        return ReferenceTimes.from_models(profile, big_model)
    # Generic core model (e.g. trace-driven): measure the isolated run
    # once and assume a uniform rate.
    run = run_isolated(big_model, profile)
    seconds = run.cycles / big_model.core.frequency_hz
    return ReferenceTimes.uniform(profile, seconds)


class MulticoreSimulation:
    """One multiprogram workload on one machine under one scheduler."""

    def __init__(
        self,
        machine: MachineConfig,
        profiles: Sequence[BenchmarkProfile],
        scheduler: Scheduler,
        *,
        models: dict[str, CoreModel] | None = None,
        counter_mode: AceCounterMode = AceCounterMode.FULL,
        record_timeline: bool = False,
        reference_times: Sequence[ReferenceTimes] | None = None,
        max_quanta: int = DEFAULT_MAX_QUANTA,
        restart_finished: bool = True,
    ):
        """Set up one run.

        Args:
            restart_finished: the paper's methodology (default):
                applications that finish restart until the longest one
                completes, and metrics cover all repetitions.  With
                ``False`` (run-to-completion mode), a finished
                application's core idles and per-application time
                stops accumulating at its completion -- the accounting
                used for turnaround-time studies.
        """
        if len(profiles) < machine.num_cores and getattr(
            scheduler, "requires_full_occupancy", True
        ):
            raise ValueError(
                f"{machine.name} needs at least {machine.num_cores} "
                f"applications; got {len(profiles)}"
            )
        if len(profiles) != getattr(scheduler, "num_apps", len(profiles)):
            raise ValueError(
                "scheduler was built for a different application count"
            )
        self.machine = machine
        self.profiles = list(profiles)
        self.scheduler = scheduler
        self.models = models if models is not None else default_models(machine)
        self.counter_mode = counter_mode
        self.record_timeline = record_timeline
        self.max_quanta = max_quanta
        self.restart_finished = restart_finished
        self.interference = InterferenceModel(machine.memory)
        if reference_times is None:
            big_model = self.models[BIG]
            reference_times = [
                _reference_times(p, big_model) for p in self.profiles
            ]
        self.reference_times = list(reference_times)

    def run(self) -> RunResult:
        with span(
            "sim.run",
            machine=self.machine.name,
            scheduler=type(self.scheduler).__name__,
        ):
            result = self._run()
        reg = obs_metrics.ACTIVE
        if reg is not None:
            self._record_metrics(reg, result)
        return result

    def _record_metrics(self, reg, result: RunResult) -> None:
        reg.counter("sim.runs").inc()
        reg.counter("sim.quanta").inc(result.quanta)
        reg.gauge("sim.apps").set(len(result.apps))
        for rec in result.apps:
            reg.counter("sim.instructions", core="big").inc(
                rec.instructions_big
            )
            reg.counter("sim.instructions", core="small").inc(
                rec.instructions_small
            )
            reg.counter("sched.migrations").inc(rec.migrations)

    def _run(self) -> RunResult:
        n = len(self.profiles)
        records = [AppRunRecord(name=p.name) for p in self.profiles]
        positions = [0] * n
        completion_time: list[float | None] = [None] * n
        last_core: list[int | None] = [None] * n
        demands = [ApplicationDemand(0.0, 0.0)] * n
        timeline: list[TimelinePoint] = []
        now = 0.0
        quantum = 0

        def finished() -> bool:
            return all(
                positions[i] >= self.profiles[i].instructions for i in range(n)
            )

        while not finished():
            if quantum >= self.max_quanta:
                raise RuntimeError(
                    f"simulation exceeded {self.max_quanta} quanta"
                )
            with span("sched.plan_quantum"):
                plans = self.scheduler.plan_quantum(quantum)
            total_fraction = sum(p.fraction for p in plans)
            if not math.isclose(total_fraction, 1.0, abs_tol=1e-9):
                raise ValueError(
                    f"quantum segments cover {total_fraction}, expected 1.0"
                )
            quantum_abc = [0.0] * n
            quantum_instr = [0] * n
            final_types = [""] * n
            for plan in plans:
                plan.assignment.validate(self.machine)
                duration = plan.fraction * self.machine.quantum_seconds
                envs = self.interference.environments(demands)
                observations = []
                new_demands = list(demands)
                for i in range(n):
                    core = plan.assignment.core_of[i]
                    if core == PARKED:
                        # Oversubscription: the application waits this
                        # segment.  It keeps accumulating wall-clock
                        # (turnaround) time but no execution.
                        observations.append(
                            Observation(i, core, "parked", 0.0, 0, 0.0)
                        )
                        new_demands[i] = ApplicationDemand(0.0, 0.0)
                        final_types[i] = "parked"
                        continue
                    core_type = self.machine.core_type(core)
                    config = self.machine.core_config(core)
                    model = self.models[core_type]
                    remaining = self.profiles[i].instructions - positions[i]
                    if not self.restart_finished and remaining <= 0:
                        # Run-to-completion mode: the core idles.
                        observations.append(
                            Observation(i, core, core_type, 0.0, 0, 0.0)
                        )
                        new_demands[i] = ApplicationDemand(0.0, 0.0)
                        final_types[i] = core_type
                        last_core[i] = core
                        continue
                    migrated = last_core[i] is not None and last_core[i] != core
                    overhead = (
                        min(self.machine.migration_overhead_seconds, duration)
                        if migrated
                        else 0.0
                    )
                    exec_cycles = (duration - overhead) * config.frequency_hz
                    with span("sim.exec", core=core_type):
                        result = model.run_cycles(
                            self.profiles[i], positions[i], exec_cycles, envs[i]
                        )
                    freq = config.frequency_hz
                    if (
                        not self.restart_finished
                        and result.instructions > remaining
                    ):
                        # Clip the slice at the application's end; the
                        # rest of the quantum idles.
                        scale = remaining / result.instructions
                        result = QuantumResult(
                            instructions=remaining,
                            cycles=result.cycles * scale,
                            ace_bit_cycles={
                                k: v * scale
                                for k, v in result.ace_bit_cycles.items()
                            },
                            occupancy_bit_cycles={
                                k: v * scale
                                for k, v in result.occupancy_bit_cycles.items()
                            },
                            memory_accesses=result.memory_accesses * scale,
                            l3_accesses=result.l3_accesses * scale,
                        )
                    abc_seconds = result.total_ace_bit_cycles / freq
                    rec = records[i]
                    rec.instructions += result.instructions
                    rec.abc_seconds += abc_seconds
                    rec.occupancy_bit_seconds += (
                        sum(result.occupancy_bit_cycles.values()) / freq
                    )
                    rec.dram_accesses += result.memory_accesses
                    rec.l3_accesses += result.l3_accesses
                    if core_type == BIG:
                        rec.time_big_seconds += duration
                        rec.instructions_big += result.instructions
                    else:
                        rec.time_small_seconds += duration
                        rec.instructions_small += result.instructions
                    if migrated:
                        rec.migrations += 1
                    positions[i] += result.instructions
                    if (
                        completion_time[i] is None
                        and positions[i] >= self.profiles[i].instructions
                    ):
                        completion_time[i] = now + duration
                    new_demands[i] = ApplicationDemand(
                        l3_accesses_per_second=result.l3_accesses / duration,
                        dram_accesses_per_second=result.memory_accesses
                        / duration,
                    )
                    # The scheduler's counters measure rates over the
                    # time the application actually executed; the
                    # migration dead time is invisible to them (it
                    # still costs wall-clock time in the ground-truth
                    # accounting above).
                    observations.append(
                        Observation(
                            app_index=i,
                            core_id=core,
                            core_type=core_type,
                            duration_seconds=duration - overhead,
                            instructions=result.instructions,
                            measured_abc_seconds=measured_abc(
                                result, self.counter_mode, config.out_of_order
                            )
                            / freq,
                            l3_accesses=result.l3_accesses,
                            dram_accesses=result.memory_accesses,
                            branch_mispredictions=result.branch_mispredictions,
                        )
                    )
                    quantum_abc[i] += abc_seconds
                    quantum_instr[i] += result.instructions
                    final_types[i] = core_type
                    last_core[i] = core
                demands = new_demands
                self.scheduler.observe(plan, observations)
                now += duration
            if self.record_timeline:
                for i in range(n):
                    timeline.append(
                        TimelinePoint(
                            time_seconds=now,
                            app_name=self.profiles[i].name,
                            core_type=final_types[i],
                            abc_per_second=quantum_abc[i]
                            / self.machine.quantum_seconds,
                            instructions=quantum_instr[i],
                        )
                    )
            reg = obs_metrics.ACTIVE
            if reg is not None:
                reg.histogram("sim.quantum_instructions").observe(
                    float(sum(quantum_instr))
                )
            quantum += 1

        for i in range(n):
            rec = records[i]
            if not self.restart_finished and completion_time[i] is not None:
                rec.time_seconds = completion_time[i]
            else:
                rec.time_seconds = now
            rec.reference_time_seconds = self.reference_times[i].seconds_for(
                positions[i]
            )
            rec.completed_runs = positions[i] // self.profiles[i].instructions
        return RunResult(
            machine_name=self.machine.name,
            scheduler_name=type(self.scheduler).__name__,
            quanta=quantum,
            duration_seconds=now,
            apps=records,
            timeline=timeline,
        )
