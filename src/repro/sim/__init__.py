"""Multicore simulation engine: isolated runs, full runs, sweeps."""

from repro.sim.experiment import (
    SCHEDULER_NAMES,
    average_ratio,
    geomean_ratio,
    make_scheduler,
    run_workload,
    sweep,
)
from repro.sim.isolated import (
    IsolatedRun,
    IsolatedStats,
    ReferenceTimes,
    isolated_stats,
    run_isolated,
)
from repro.sim.multicore import MulticoreSimulation, default_models
from repro.sim.results import AppRunRecord, RunResult, TimelinePoint

__all__ = [
    "AppRunRecord",
    "IsolatedRun",
    "IsolatedStats",
    "MulticoreSimulation",
    "ReferenceTimes",
    "RunResult",
    "SCHEDULER_NAMES",
    "TimelinePoint",
    "average_ratio",
    "default_models",
    "geomean_ratio",
    "isolated_stats",
    "make_scheduler",
    "run_workload",
    "sweep",
]
