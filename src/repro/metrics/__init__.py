"""Reliability (AVF/SER/wSER/SSER) and performance (STP/ANTT) metrics."""

from repro.metrics.performance import (
    ApplicationPerformance,
    average_normalized_turnaround,
    ipc,
    normalize_cpi_stack,
    system_throughput,
)
from repro.metrics.reliability import (
    DEFAULT_IFR,
    ApplicationReliability,
    SserBreakdown,
    avf,
    mttf,
    soft_error_rate,
    sser,
    sser_breakdown,
    system_ser,
    weighted_ser,
)

__all__ = [
    "DEFAULT_IFR",
    "ApplicationPerformance",
    "ApplicationReliability",
    "SserBreakdown",
    "average_normalized_turnaround",
    "avf",
    "ipc",
    "mttf",
    "normalize_cpi_stack",
    "soft_error_rate",
    "sser",
    "sser_breakdown",
    "system_ser",
    "system_throughput",
    "weighted_ser",
]
