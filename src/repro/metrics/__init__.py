"""Reliability (AVF/SER/wSER/SSER) and performance (STP/ANTT) metrics."""

from repro.metrics.performance import (
    ApplicationPerformance,
    average_normalized_turnaround,
    ipc,
    normalize_cpi_stack,
    system_throughput,
)
from repro.metrics.reliability import (
    DEFAULT_IFR,
    ApplicationReliability,
    avf,
    mttf,
    soft_error_rate,
    sser,
    system_ser,
    weighted_ser,
)

__all__ = [
    "DEFAULT_IFR",
    "ApplicationPerformance",
    "ApplicationReliability",
    "average_normalized_turnaround",
    "avf",
    "ipc",
    "mttf",
    "normalize_cpi_stack",
    "soft_error_rate",
    "sser",
    "system_ser",
    "system_throughput",
    "weighted_ser",
]
