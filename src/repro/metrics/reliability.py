"""Reliability metrics: AVF, SER, wSER and SSER (paper Section 3).

The paper's equations:

* ``SER = ABC / T * IFR``                      (Equation 1)
* ``wSER = (ABC / T) * (T / T_ref) * IFR
        = ABC / T_ref * IFR``                  (Equation 2)
* ``SSER = sum_i wSER_i = sum_i ABC_i / T_ref_i * IFR``   (Equation 3)

``ABC`` is the total ACE-bit count over the run (ACE bits integrated
over time), ``T`` the execution time in the workload mix, ``T_ref``
the execution time on the isolated reference core (an isolated big
core), and ``IFR`` the intrinsic fault rate of a single bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

#: Default intrinsic fault rate: errors per bit per second.  The
#: absolute value only scales SER/SSER linearly (the paper treats IFR
#: as a technology constant); relative comparisons are IFR-independent.
DEFAULT_IFR = 1e-25


def soft_error_rate(abc: float, time_seconds: float, ifr: float = DEFAULT_IFR) -> float:
    """Single-program soft error rate (Equation 1).

    Args:
        abc: total ACE-bit count over the execution (bit-seconds worth
            of ACE state, expressed in bit-cycles times the cycle time,
            or directly in bit-seconds).
        time_seconds: execution time.
        ifr: intrinsic fault rate per bit per second.
    """
    if time_seconds <= 0:
        raise ValueError("execution time must be positive")
    return abc / time_seconds * ifr


def weighted_ser(
    abc: float, reference_time_seconds: float, ifr: float = DEFAULT_IFR
) -> float:
    """Slowdown-weighted SER of one application (Equation 2).

    The multiprogram execution time cancels: wSER depends only on the
    ACE bits accumulated while getting the work done and on how long
    the same work takes on the isolated reference core.
    """
    if reference_time_seconds <= 0:
        raise ValueError("reference time must be positive")
    return abc / reference_time_seconds * ifr


def system_ser(
    abcs: Iterable[float],
    reference_times_seconds: Iterable[float],
    ifr: float = DEFAULT_IFR,
) -> float:
    """System soft error rate of a multiprogram workload (Equation 3)."""
    abcs = list(abcs)
    refs = list(reference_times_seconds)
    if len(abcs) != len(refs):
        raise ValueError("need one reference time per application")
    return sum(weighted_ser(a, t, ifr) for a, t in zip(abcs, refs))


@dataclass(frozen=True)
class ApplicationReliability:
    """Reliability bookkeeping for one application in a mix.

    Attributes:
        name: application name.
        abc: accumulated ACE-bit count (bit-seconds).
        time_seconds: execution time within the mix.
        reference_time_seconds: isolated reference-core time for the
            same work.
    """

    name: str
    abc: float
    time_seconds: float
    reference_time_seconds: float

    @property
    def ser(self) -> float:
        return soft_error_rate(self.abc, self.time_seconds)

    @property
    def slowdown(self) -> float:
        return self.time_seconds / self.reference_time_seconds

    @property
    def wser(self) -> float:
        return weighted_ser(self.abc, self.reference_time_seconds)

    def wser_at(self, ifr: float) -> float:
        return weighted_ser(self.abc, self.reference_time_seconds, ifr)


def sser(applications: Sequence[ApplicationReliability], ifr: float = DEFAULT_IFR) -> float:
    """SSER of a mix from per-application bookkeeping records."""
    return sum(app.wser_at(ifr) for app in applications)


def avf(ace_bit_cycles: float, total_bits: int, cycles: float) -> float:
    """Architectural vulnerability factor of a structure or core.

    The fraction of (structure bits x cycles) that held ACE state.
    """
    if total_bits <= 0 or cycles <= 0:
        raise ValueError("total_bits and cycles must be positive")
    return ace_bit_cycles / (total_bits * cycles)


def mttf(ser: float) -> float:
    """Mean time to failure: the reciprocal of the soft error rate.

    A zero SER -- reachable when every application runs fully
    protected, or when a run accumulates no ACE bits at all -- means
    the system never fails, so MTTF is infinite rather than an error.
    """
    if ser < 0:
        raise ValueError("SER must be non-negative to define MTTF")
    if ser == 0:
        return math.inf
    return 1.0 / ser


@dataclass(frozen=True)
class SserBreakdown:
    """Per-component SSER decomposition (cf. ``PowerBreakdown``).

    Each field is the summed wSER contribution of one hardware
    component class across all applications in the mix, in errors per
    second.  ``chip_sser`` is their total: the uncore-extended SSER.
    """

    core_sser: float
    l2_sser: float
    l3_sser: float

    @property
    def uncore_sser(self) -> float:
        return self.l2_sser + self.l3_sser

    @property
    def chip_sser(self) -> float:
        return self.core_sser + self.l2_sser + self.l3_sser


def sser_breakdown(
    core_abcs: Sequence[float],
    l2_abcs: Sequence[float],
    l3_abcs: Sequence[float],
    reference_times_seconds: Sequence[float],
    ifr: float = DEFAULT_IFR,
) -> SserBreakdown:
    """Component-wise SSER from per-application ABC sequences.

    Applies Equation 3 separately per component: each application's
    component ABC is weighted by the same isolated reference time used
    for its core wSER, so the components sum to a consistent chip SSER.
    """
    n = len(reference_times_seconds)
    if not len(core_abcs) == len(l2_abcs) == len(l3_abcs) == n:
        raise ValueError("need one ABC of each component per application")
    return SserBreakdown(
        core_sser=system_ser(core_abcs, reference_times_seconds, ifr),
        l2_sser=system_ser(l2_abcs, reference_times_seconds, ifr),
        l3_sser=system_ser(l3_abcs, reference_times_seconds, ifr),
    )
