"""Performance metrics: IPC, slowdown, STP and ANTT.

System throughput (STP) and average normalized turnaround time (ANTT)
follow Eyerman & Eeckhout, "System-level performance metrics for
multiprogram workloads", IEEE Micro 2008 -- the metrics the paper's
performance-optimized scheduler targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ApplicationPerformance:
    """Performance bookkeeping for one application in a mix.

    Attributes:
        name: application name.
        instructions: instructions committed within the mix.
        time_seconds: wall-clock time spent in the mix for that work.
        reference_time_seconds: time the same work takes on the
            isolated reference core (an isolated big core).
    """

    name: str
    instructions: int
    time_seconds: float
    reference_time_seconds: float

    @property
    def normalized_progress(self) -> float:
        """Reference time over mix time: this application's share of STP."""
        if self.time_seconds <= 0:
            raise ValueError("time must be positive")
        return self.reference_time_seconds / self.time_seconds

    @property
    def slowdown(self) -> float:
        """Mix time over reference time (the SSER weighting factor)."""
        if self.reference_time_seconds <= 0:
            raise ValueError("reference time must be positive")
        return self.time_seconds / self.reference_time_seconds


def system_throughput(applications: Sequence[ApplicationPerformance]) -> float:
    """STP: the sum of per-application normalized progress.

    Equals the number of applications when nothing slows down relative
    to the reference core; higher is better.
    """
    return sum(app.normalized_progress for app in applications)


def average_normalized_turnaround(
    applications: Sequence[ApplicationPerformance],
) -> float:
    """ANTT: average per-application slowdown (lower is better)."""
    if not applications:
        raise ValueError("need at least one application")
    return sum(app.slowdown for app in applications) / len(applications)


def ipc(instructions: int, cycles: float) -> float:
    """Committed instructions per cycle."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return instructions / cycles


def normalize_cpi_stack(components: dict[str, float]) -> dict[str, float]:
    """Scale CPI components to fractions summing to 1 (Figure 2)."""
    total = sum(components.values())
    if total <= 0:
        raise ValueError("CPI stack must have positive total")
    return {name: value / total for name, value in components.items()}
