"""Instruction-set substrate: instruction classes and dynamic traces."""

from repro.isa.instruction import (
    EXECUTION_LATENCY,
    FP_WRITERS,
    FU_BITS,
    INT_WRITERS,
    NUM_CLASSES,
    InstructionClass,
    fu_bits_table,
    latency_table,
)
from repro.isa.trace import Trace

__all__ = [
    "EXECUTION_LATENCY",
    "FP_WRITERS",
    "FU_BITS",
    "INT_WRITERS",
    "NUM_CLASSES",
    "InstructionClass",
    "Trace",
    "fu_bits_table",
    "latency_table",
]
