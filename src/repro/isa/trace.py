"""Numpy-backed dynamic instruction traces.

A :class:`Trace` is a struct-of-arrays representation of a dynamic
instruction stream: one entry per committed (correct-path) instruction.
Traces feed the trace-driven core models (`repro.cores.ooo` and
`repro.cores.inorder`).  Wrong-path instructions are not materialized;
the core models reconstruct their timing impact from the per-branch
misprediction flags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.instruction import InstructionClass


@dataclass
class Trace:
    """A dynamic instruction stream.

    Attributes:
        classes: int8 array of :class:`InstructionClass` values.
        dep1 / dep2: int32 arrays of backward dependency distances for
            up to two source operands; ``0`` means "no dependency".
            Instruction ``i`` with ``dep1[i] = d`` reads the result of
            instruction ``i - d``.
        addresses: int64 array of data addresses (loads/stores; zero
            otherwise).
        mispredicted: bool array -- ``True`` on branches whose
            direction/target is mispredicted.
        icache_miss: bool array -- ``True`` when fetching this
            instruction misses in the L1 instruction cache.
        name: benchmark name the trace was generated from.
    """

    classes: np.ndarray
    dep1: np.ndarray
    dep2: np.ndarray
    addresses: np.ndarray
    mispredicted: np.ndarray
    icache_miss: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        n = len(self.classes)
        for arr_name in ("dep1", "dep2", "addresses", "mispredicted", "icache_miss"):
            arr = getattr(self, arr_name)
            if len(arr) != n:
                raise ValueError(f"{arr_name} length {len(arr)} != classes length {n}")
        if n and ((self.dep1 < 0).any() or (self.dep2 < 0).any()):
            raise ValueError("dependency distances must be non-negative")

    def __len__(self) -> int:
        return len(self.classes)

    def slice(self, start: int, stop: int) -> "Trace":
        """A view of instructions ``[start, stop)``.

        Dependency distances reaching before ``start`` are clamped to
        zero (treated as ready), matching how a core would see a
        context-switched-in window.

        When no distance reaches before ``start`` the returned trace
        shares the underlying arrays (views, no copies); callers must
        treat sliced traces as read-only.
        """
        if not 0 <= start <= stop <= len(self):
            raise IndexError(f"slice [{start}, {stop}) out of range")
        dep1 = self.dep1[start:stop]
        dep2 = self.dep2[start:stop]
        n = stop - start
        if n:
            # A distance at window-relative position j reaches before
            # `start` iff it exceeds j, so only the first max-distance
            # positions can ever need clamping: check just that head.
            head = min(n, int(max(dep1.max(), dep2.max())))
            if head:
                index = np.arange(head, dtype=np.int64)
                clamp1 = dep1[:head] > index
                clamp2 = dep2[:head] > index
                if clamp1.any():
                    dep1 = dep1.copy()
                    dep1[:head][clamp1] = 0
                if clamp2.any():
                    dep2 = dep2.copy()
                    dep2[:head][clamp2] = 0
        return Trace(
            classes=self.classes[start:stop],
            dep1=dep1,
            dep2=dep2,
            addresses=self.addresses[start:stop],
            mispredicted=self.mispredicted[start:stop],
            icache_miss=self.icache_miss[start:stop],
            name=self.name,
        )

    def class_fraction(self, cls: InstructionClass) -> float:
        """Fraction of instructions belonging to a class."""
        if len(self) == 0:
            return 0.0
        return float(np.count_nonzero(self.classes == cls)) / len(self)

    @property
    def nop_fraction(self) -> float:
        return self.class_fraction(InstructionClass.NOP)

    @property
    def branch_mpki(self) -> float:
        """Branch mispredictions per kilo-instruction in this trace."""
        if len(self) == 0:
            return 0.0
        return 1000.0 * float(np.count_nonzero(self.mispredicted)) / len(self)

    @property
    def icache_mpki(self) -> float:
        if len(self) == 0:
            return 0.0
        return 1000.0 * float(np.count_nonzero(self.icache_miss)) / len(self)

    @staticmethod
    def empty(name: str = "empty") -> "Trace":
        return Trace(
            classes=np.zeros(0, dtype=np.int8),
            dep1=np.zeros(0, dtype=np.int32),
            dep2=np.zeros(0, dtype=np.int32),
            addresses=np.zeros(0, dtype=np.int64),
            mispredicted=np.zeros(0, dtype=bool),
            icache_miss=np.zeros(0, dtype=bool),
            name=name,
        )

    @staticmethod
    def concatenate(traces: "list[Trace]", name: str = "concat") -> "Trace":
        """Concatenate traces back to back (dependencies kept local)."""
        if not traces:
            return Trace.empty(name)
        return Trace(
            classes=np.concatenate([t.classes for t in traces]),
            dep1=np.concatenate([t.dep1 for t in traces]),
            dep2=np.concatenate([t.dep2 for t in traces]),
            addresses=np.concatenate([t.addresses for t in traces]),
            mispredicted=np.concatenate([t.mispredicted for t in traces]),
            icache_miss=np.concatenate([t.icache_miss for t in traces]),
            name=name,
        )
