"""Instruction classes and execution latencies.

The reproduction uses a compact RISC-like instruction taxonomy: every
dynamic instruction belongs to one :class:`InstructionClass`, which
determines the functional unit it executes on and its execution
latency (Table 2 of the paper).  Loads additionally take a
memory-hierarchy latency determined by the cache simulation.
"""

from __future__ import annotations

import enum

import numpy as np


class InstructionClass(enum.IntEnum):
    """Dynamic instruction classes.

    The integer values index numpy lookup tables, so they must stay
    dense and start at zero.
    """

    NOP = 0
    INT_ALU = 1
    INT_MUL = 2
    INT_DIV = 3
    FP_ADD = 4
    FP_MUL = 5
    FP_DIV = 6
    LOAD = 7
    STORE = 8
    BRANCH = 9


#: Execution latency in cycles per class (Table 2 functional units).
#: Loads/stores get their memory latency from the cache hierarchy; the
#: value here is the address-generation / L1-pipeline portion.
EXECUTION_LATENCY = {
    InstructionClass.NOP: 1,
    InstructionClass.INT_ALU: 1,
    InstructionClass.INT_MUL: 3,
    InstructionClass.INT_DIV: 18,
    InstructionClass.FP_ADD: 3,
    InstructionClass.FP_MUL: 5,
    InstructionClass.FP_DIV: 6,
    InstructionClass.LOAD: 1,
    InstructionClass.STORE: 1,
    InstructionClass.BRANCH: 1,
}

#: Operand width (bits) held in a functional unit while an instruction
#: of the class executes; used for functional-unit ACE accounting.
FU_BITS = {
    InstructionClass.NOP: 0,
    InstructionClass.INT_ALU: 64,
    InstructionClass.INT_MUL: 64,
    InstructionClass.INT_DIV: 64,
    InstructionClass.FP_ADD: 128,
    InstructionClass.FP_MUL: 128,
    InstructionClass.FP_DIV: 128,
    InstructionClass.LOAD: 64,
    InstructionClass.STORE: 64,
    InstructionClass.BRANCH: 64,
}

#: Classes that write an integer destination register.
INT_WRITERS = frozenset(
    {
        InstructionClass.INT_ALU,
        InstructionClass.INT_MUL,
        InstructionClass.INT_DIV,
        InstructionClass.LOAD,
    }
)

#: Classes that write a floating-point destination register.
FP_WRITERS = frozenset(
    {
        InstructionClass.FP_ADD,
        InstructionClass.FP_MUL,
        InstructionClass.FP_DIV,
    }
)

#: Number of distinct instruction classes.
NUM_CLASSES = len(InstructionClass)


def latency_table() -> np.ndarray:
    """Execution latencies as a dense int32 array indexed by class value."""
    table = np.zeros(NUM_CLASSES, dtype=np.int32)
    for cls, lat in EXECUTION_LATENCY.items():
        table[cls] = lat
    return table


def fu_bits_table() -> np.ndarray:
    """Functional-unit bit widths as a dense int32 array indexed by class."""
    table = np.zeros(NUM_CLASSES, dtype=np.int32)
    for cls, bits in FU_BITS.items():
        table[cls] = bits
    return table
