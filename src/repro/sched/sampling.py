"""Sampling-based scheduling machinery (paper Section 4.1).

Both the reliability-optimized and the performance-optimized
schedulers are instances of the same sampling algorithm; they differ
only in the per-application objective estimated from the samples:

* an **initial sampling phase** runs every application at least once
  on each core type (two quanta on a symmetric HCMP, more on an
  asymmetric one);
* a **staleness rule** re-samples any application that has run on the
  same core type for ``sampling_period_quanta`` consecutive quanta by
  swapping it, for one short sampling quantum, with the application
  that has run longest on the other core type;
* a **greedy pair-swap optimizer** repeatedly switches the application
  with the largest objective reduction against the application with
  the smallest objective increase while the net effect improves
  (Algorithm 1).

Subclasses implement :meth:`SamplingScheduler.objective_value`: the
estimated per-application contribution to the (minimized) system
objective when running on a given core type.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.config.machines import BIG, SMALL, MachineConfig
from repro.obs import metrics as obs_metrics
from repro.sched.base import Assignment, Observation, Scheduler, SegmentPlan


@dataclass
class CoreTypeSample:
    """Most recent counter readings of one application on one core type.

    ``l3_apki`` / ``dram_apki`` are memory accesses per kilo-instruction
    from ordinary performance counters (used by counter-free ABC
    predictors; see `repro.ace.predictor`).
    """

    instructions_per_second: float
    abc_per_second: float
    l3_apki: float = 0.0
    dram_apki: float = 0.0
    branch_mpki: float = 0.0
    age_quanta: int = 0


def _other(core_type: str) -> str:
    return SMALL if core_type == BIG else BIG


#: Default swap hysteresis: a pair swap must promise at least this
#: relative improvement of the system objective.  Without hysteresis,
#: nearly-tied applications ping-pong between core types every
#: quantum, and because wSER is a ratio of integrals (ACE bits over
#: reference work), an application that time-slices between the core
#: types keeps most of its big-core ACE accumulation while gaining
#: little reference work -- strictly worse than either static choice.
DEFAULT_SWAP_THRESHOLD = 0.02


class SamplingScheduler(Scheduler):
    """Base class implementing the sampling schedule of Algorithm 1."""

    #: Optimizer phase reported in decision-trace records; subclasses
    #: replacing the greedy loop override this (see repro.obs.decisions).
    decision_phase = "greedy"

    def __init__(
        self,
        machine: MachineConfig,
        num_apps: int,
        swap_threshold: float = DEFAULT_SWAP_THRESHOLD,
    ):
        super().__init__(machine, num_apps)
        if machine.big_cores == 0 or machine.small_cores == 0:
            raise ValueError("sampling schedulers need both core types")
        if swap_threshold < 0:
            raise ValueError("swap threshold cannot be negative")
        self.swap_threshold = swap_threshold
        #: Optional repro.obs.decisions.DecisionTraceRecorder; when set,
        #: plan_quantum emits one QuantumRecord per quantum and the
        #: optimizer reports every swap candidate it weighs.
        self.recorder = None
        self._samples: dict[tuple[int, str], CoreTypeSample] = {}
        self._consecutive = [0] * num_apps
        self._last_type: dict[int, str] = {}
        self._assignment = self.identity_assignment(num_apps)
        self._final_segment: SegmentPlan | None = None
        self._sampling_fraction = (
            machine.sampling_quantum_seconds / machine.quantum_seconds
        )

    # -- objective -------------------------------------------------------

    @abc.abstractmethod
    def objective_value(self, app_index: int, core_type: str) -> float:
        """Estimated contribution to the minimized objective.

        Implementations read ``self._samples``; both core types are
        guaranteed to have samples when this is called.
        """

    # -- mode-aware hooks ------------------------------------------------
    #
    # Mode-aware subclasses dedicate cores to protection duties (a DMR
    # checker occupies a small-core slot) and pin protected apps in
    # place.  The base scheduler consults these hooks so its placement
    # machinery never touches reserved cores or pinned applications;
    # the empty defaults leave base behavior byte-identical.

    def _blocked_cores(self) -> frozenset[int]:
        """Cores reserved by protection modes (never host an app)."""
        return frozenset()

    def _swap_locked(self) -> frozenset[int]:
        """Apps pinned by their protection mode (never swapped)."""
        return frozenset()

    def _mode_keys(self) -> tuple[str, ...]:
        """Per-app protection-mode keys for decision-trace records."""
        return ()

    # -- sample access ---------------------------------------------------

    def sample(self, app_index: int, core_type: str) -> CoreTypeSample | None:
        return self._samples.get((app_index, core_type))

    def _has_both_samples(self, app_index: int) -> bool:
        return (app_index, BIG) in self._samples and (
            app_index,
            SMALL,
        ) in self._samples

    # -- planning --------------------------------------------------------

    def plan_quantum(self, quantum_index: int) -> list[SegmentPlan]:
        recorder = self.recorder
        before = self._assignment.core_of
        missing = [i for i in range(self.num_apps) if not self._has_both_samples(i)]
        stale: list[int] = []
        sampling_swaps: tuple[tuple[int, int], ...] = ()
        objectives: list[tuple[int, float, float]] = []
        if missing:
            plan = [
                SegmentPlan(1.0, self._initial_sampling_assignment(), True)
            ]
        else:
            stale = [
                i
                for i in range(self.num_apps)
                if self._consecutive[i] >= self.machine.sampling_period_quanta
            ]
            self._assignment = self._optimize(self._assignment)
            if stale:
                reg = obs_metrics.ACTIVE
                if reg is not None:
                    reg.counter("sched.stale_apps").inc(len(stale))
                sampling, sampling_swaps = self._staleness_swaps(
                    self._assignment, stale
                )
                plan = [
                    SegmentPlan(self._sampling_fraction, sampling, True),
                    SegmentPlan(
                        1.0 - self._sampling_fraction, self._assignment, False
                    ),
                ]
            else:
                plan = [SegmentPlan(1.0, self._assignment, False)]
            if recorder is not None:
                objectives = [
                    (
                        i,
                        self.objective_value(i, BIG),
                        self.objective_value(i, SMALL),
                    )
                    for i in range(self.num_apps)
                ]
        self._final_segment = plan[-1]
        if recorder is not None:
            recorder.quantum(
                quantum=quantum_index,
                scheduler=type(self).__name__,
                phase="initial_sampling" if missing else self.decision_phase,
                before=before,
                after=self._assignment.core_of,
                objectives=objectives,
                stale=tuple(stale),
                sampling_swaps=sampling_swaps,
                segments=tuple(
                    (p.fraction, p.assignment.core_of, p.is_sampling)
                    for p in plan
                ),
                modes=self._mode_keys(),
            )
        return plan

    def _initial_sampling_assignment(self) -> Assignment:
        """Next quantum of the initial sampling rotation.

        Applications still missing a big-core sample get big cores
        first; applications missing a small-core sample get small
        cores; everything else fills the remaining cores.
        """
        need_big = [
            i for i in range(self.num_apps) if (i, BIG) not in self._samples
        ]
        need_small = [
            i for i in range(self.num_apps) if (i, SMALL) not in self._samples
        ]
        blocked = self._blocked_cores()
        big_slots = [
            c for c in range(self.machine.big_cores) if c not in blocked
        ]
        small_slots = [
            c
            for c in range(self.machine.big_cores, self.machine.num_cores)
            if c not in blocked
        ]
        core_of: dict[int, int] = {}
        for app in need_big:
            if big_slots:
                core_of[app] = big_slots.pop(0)
        for app in need_small:
            if app not in core_of and small_slots:
                core_of[app] = small_slots.pop(0)
        free = big_slots + small_slots
        for app in range(self.num_apps):
            if app not in core_of:
                core_of[app] = free.pop(0)
        self._assignment = Assignment(
            tuple(core_of[i] for i in range(self.num_apps))
        )
        return self._assignment

    def _staleness_swaps(
        self, assignment: Assignment, stale: Sequence[int]
    ) -> tuple[Assignment, tuple[tuple[int, int], ...]]:
        """Sampling-segment assignment refreshing stale applications.

        Each stale application is switched with the application that
        has run for the most consecutive quanta on the other core
        type (paper Section 4.1).  Returns the sampling assignment and
        the (app, partner) swaps performed, in order.
        """
        sampling = assignment
        used: set[int] = set(self._swap_locked())
        swaps: list[tuple[int, int]] = []
        for app in sorted(stale, key=lambda i: -self._consecutive[i]):
            if app in used:
                continue
            my_type = assignment.core_type_of(app, self.machine)
            partners = [
                j
                for j in range(self.num_apps)
                if j != app
                and j not in used
                and assignment.core_type_of(j, self.machine) != my_type
            ]
            if not partners:
                continue
            partner = max(partners, key=lambda j: self._consecutive[j])
            sampling = sampling.with_swap(app, partner)
            swaps.append((app, partner))
            used.update((app, partner))
        return sampling, tuple(swaps)

    def _optimize(self, assignment: Assignment) -> Assignment:
        """Greedy pair-swap optimization (the core of Algorithm 1)."""
        type_of = {
            i: assignment.core_type_of(i, self.machine)
            for i in range(self.num_apps)
        }
        locked = self._swap_locked()
        swapped = True
        rounds = 0
        while swapped and rounds < self.num_apps:
            swapped = False
            rounds += 1
            deltas = {
                i: self.objective_value(i, _other(type_of[i]))
                - self.objective_value(i, type_of[i])
                for i in range(self.num_apps)
            }
            on_big = [
                i
                for i in range(self.num_apps)
                if type_of[i] == BIG and i not in locked
            ]
            on_small = [
                i
                for i in range(self.num_apps)
                if type_of[i] == SMALL and i not in locked
            ]
            if not on_big or not on_small:
                break
            mover = min(on_big + on_small, key=lambda i: deltas[i])
            other_side = on_small if mover in on_big else on_big
            partner = min(other_side, key=lambda i: deltas[i])
            total = sum(
                abs(self.objective_value(i, type_of[i]))
                for i in range(self.num_apps)
            )
            threshold = self.swap_threshold * total
            accepted = deltas[mover] + deltas[partner] < -threshold
            if self.recorder is not None:
                self.recorder.candidate(
                    mover=mover,
                    partner=partner,
                    delta_mover=deltas[mover],
                    delta_partner=deltas[partner],
                    delta_total=deltas[mover] + deltas[partner],
                    objective_total=total,
                    threshold=threshold,
                    accepted=accepted,
                    reason=(
                        "net objective improvement clears swap threshold"
                        if accepted
                        else "net objective change within swap hysteresis"
                    ),
                )
            reg = obs_metrics.ACTIVE
            if reg is not None:
                reg.counter(
                    "sched.swap_candidates",
                    outcome="accepted" if accepted else "rejected",
                ).inc()
            if accepted:
                assignment = assignment.with_swap(mover, partner)
                type_of[mover], type_of[partner] = (
                    type_of[partner],
                    type_of[mover],
                )
                swapped = True
        return assignment

    # -- observation -----------------------------------------------------

    def observe(
        self, plan: SegmentPlan, observations: Sequence[Observation]
    ) -> None:
        for obs in observations:
            if obs.duration_seconds <= 0 or obs.instructions <= 0:
                continue
            self._samples[(obs.app_index, obs.core_type)] = CoreTypeSample(
                instructions_per_second=obs.instructions_per_second,
                abc_per_second=obs.abc_per_second,
                l3_apki=obs.l3_apki,
                dram_apki=obs.dram_apki,
                branch_mpki=obs.branch_mpki,
                age_quanta=0,
            )
        if plan is not self._final_segment:
            return
        # End of quantum: update consecutive-on-type counters from the
        # main segment's core types.
        for obs in observations:
            i = obs.app_index
            if self._last_type.get(i) == obs.core_type:
                self._consecutive[i] += 1
            else:
                self._consecutive[i] = 1
        self._last_type = {obs.app_index: obs.core_type for obs in observations}
        # An off-type sample taken during this quantum's sampling
        # segment (age still 0) satisfies the staleness rule: reset.
        for i in range(self.num_apps):
            my_type = self._last_type.get(i)
            if my_type is None:
                continue
            other = self._samples.get((i, _other(my_type)))
            if other is not None and other.age_quanta == 0:
                self._consecutive[i] = min(self._consecutive[i], 1)
        for sample in self._samples.values():
            sample.age_quanta += 1
