"""Reliability-optimized scheduler (Algorithm 1): minimize SSER.

The per-application objective is the estimated weighted SER of running
the application on a given core type.  From Equation 2,

    wSER = ABC / T_ref * IFR,

so per unit of *work* (instructions), an application on core type ``c``
contributes

    wSER(c)  ~  (ABC-per-instruction on c) * (reference performance),

where the reference performance is the sampled big-core instruction
rate (the paper's proxy for isolated big-core execution, Section 4.1).
The IFR constant is common to every application and drops out of the
comparison.
"""

from __future__ import annotations

from repro.config.machines import BIG
from repro.sched.sampling import SamplingScheduler


class ReliabilityScheduler(SamplingScheduler):
    """Minimizes estimated SSER through greedy pair swaps."""

    def objective_value(self, app_index: int, core_type: str) -> float:
        sample = self.sample(app_index, core_type)
        reference = self.sample(app_index, BIG)
        assert sample is not None and reference is not None
        if sample.instructions_per_second <= 0:
            return 0.0
        abc_per_instruction = (
            sample.abc_per_second / sample.instructions_per_second
        )
        return abc_per_instruction * reference.instructions_per_second
