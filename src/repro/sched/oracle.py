"""Offline oracle schedules (paper Section 2.4).

The oracle knows each application's isolated performance and SER on
both core types, assumes no shared-resource interference, enumerates
every static application-to-core-type assignment, and picks

* the assignment with the **lowest SSER** (reliability oracle), and
* the assignment with the **highest STP** (performance oracle).

Figure 3 reports the SER gain and STP loss of the former relative to
the latter.  A :class:`StaticScheduler` is also provided to replay an
oracle assignment inside the full simulator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.config.machines import BIG, SMALL, MachineConfig
from repro.sched.base import Assignment, Scheduler, SegmentPlan
from repro.sim.isolated import IsolatedStats


@dataclass(frozen=True)
class SchedulePrediction:
    """Predicted metrics of one static core-type assignment.

    Attributes:
        big_apps: indices of the applications placed on big cores.
        sser: predicted system soft error rate (up to the IFR factor).
        stp: predicted system throughput.
    """

    big_apps: tuple[int, ...]
    sser: float
    stp: float

    def core_type_of(self, app_index: int) -> str:
        return BIG if app_index in self.big_apps else SMALL


def predict(
    stats: Sequence[IsolatedStats], big_apps: tuple[int, ...]
) -> SchedulePrediction:
    """Predicted SSER and STP of a static assignment (no interference).

    Per application on core type ``t``: ``wSER = ABC_t / T_big`` and
    ``NP = T_big / T_t`` from the isolated runs.
    """
    sser = 0.0
    stp = 0.0
    for i, app in enumerate(stats):
        run = app.run(BIG if i in big_apps else SMALL)
        sser += run.abc_seconds / app.reference_time_seconds
        stp += app.reference_time_seconds / run.time_seconds
    return SchedulePrediction(big_apps=tuple(sorted(big_apps)), sser=sser, stp=stp)


def enumerate_schedules(
    stats: Sequence[IsolatedStats], machine: MachineConfig
) -> list[SchedulePrediction]:
    """All ways of choosing which applications run on the big cores."""
    if len(stats) != machine.num_cores:
        raise ValueError("oracle places one application per core")
    indices = range(len(stats))
    return [
        predict(stats, combo)
        for combo in itertools.combinations(indices, machine.big_cores)
    ]


def best_sser_schedule(
    stats: Sequence[IsolatedStats], machine: MachineConfig
) -> SchedulePrediction:
    """The reliability oracle: minimum predicted SSER."""
    return min(enumerate_schedules(stats, machine), key=lambda s: s.sser)


def best_stp_schedule(
    stats: Sequence[IsolatedStats], machine: MachineConfig
) -> SchedulePrediction:
    """The performance oracle: maximum predicted STP."""
    return max(enumerate_schedules(stats, machine), key=lambda s: s.stp)


class StaticScheduler(Scheduler):
    """Pins a fixed assignment for the whole run (replays an oracle)."""

    def __init__(
        self, machine: MachineConfig, num_apps: int, big_apps: Sequence[int]
    ):
        super().__init__(machine, num_apps)
        big_apps = list(big_apps)
        if len(big_apps) > machine.big_cores:
            raise ValueError("more big-core applications than big cores")
        if num_apps - len(big_apps) > machine.small_cores:
            raise ValueError("more small-core applications than small cores")
        big_slots = iter(range(machine.big_cores))
        small_slots = iter(range(machine.big_cores, machine.num_cores))
        core_of = [0] * num_apps
        for i in range(num_apps):
            core_of[i] = next(big_slots) if i in big_apps else next(small_slots)
        self._assignment = Assignment(tuple(core_of))

    def plan_quantum(self, quantum_index: int) -> list[SegmentPlan]:
        return [SegmentPlan(1.0, self._assignment)]
