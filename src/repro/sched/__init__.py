"""Schedulers: random, reliability-/performance-optimized, oracle."""

from repro.sched.base import PARKED, Assignment, Observation, Scheduler, SegmentPlan
from repro.sched.constrained import ConstrainedReliabilityScheduler
from repro.sched.oversubscribed import OversubscribedReliabilityScheduler
from repro.sched.oracle import (
    SchedulePrediction,
    StaticScheduler,
    best_sser_schedule,
    best_stp_schedule,
    enumerate_schedules,
    predict,
)
from repro.sched.performance import PerformanceScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.reliability import ReliabilityScheduler
from repro.sched.sampling import CoreTypeSample, SamplingScheduler
from repro.sched.variants import ExhaustiveReliabilityScheduler, RawSerScheduler
from repro.sched.modes import (
    MODES,
    ModeAwareReliabilityScheduler,
    ModeOutcome,
    ModeSchedule,
    ProtectionMode,
    apply_modes,
    parse_mode,
)

__all__ = [
    "Assignment",
    "ConstrainedReliabilityScheduler",
    "CoreTypeSample",
    "ExhaustiveReliabilityScheduler",
    "MODES",
    "ModeAwareReliabilityScheduler",
    "ModeOutcome",
    "ModeSchedule",
    "Observation",
    "ProtectionMode",
    "apply_modes",
    "parse_mode",
    "OversubscribedReliabilityScheduler",
    "PARKED",
    "PerformanceScheduler",
    "RandomScheduler",
    "RawSerScheduler",
    "ReliabilityScheduler",
    "SamplingScheduler",
    "SchedulePrediction",
    "Scheduler",
    "SegmentPlan",
    "StaticScheduler",
    "best_sser_schedule",
    "best_stp_schedule",
    "enumerate_schedules",
    "predict",
]
