"""STP-constrained reliability scheduling (an extension).

The paper's reliability-optimized scheduler accepts whatever
throughput cost minimizing SSER incurs (6.3 % on average, up to
18.7 %).  A natural extension for deployments with performance SLAs
is to minimize SSER *subject to a bound on throughput loss*: pick, of
all assignments whose estimated STP is within ``max_stp_loss`` of the
best achievable STP, the one with the lowest estimated SSER.

With ``max_stp_loss = 0`` this degenerates to the performance-
optimized scheduler (ties broken toward reliability); with
``max_stp_loss = 1`` it degenerates to the (exhaustive) reliability-
optimized scheduler.  The spectrum in between is a Pareto knob
(see ``benchmarks/bench_ext_constrained.py``).
"""

from __future__ import annotations

import itertools

from repro.config.machines import BIG, SMALL, MachineConfig
from repro.sched.base import Assignment
from repro.sched.sampling import SamplingScheduler


class ConstrainedReliabilityScheduler(SamplingScheduler):
    """Minimize estimated SSER subject to a throughput-loss bound."""

    decision_phase = "exhaustive"

    def __init__(
        self,
        machine: MachineConfig,
        num_apps: int,
        max_stp_loss: float = 0.05,
        **kwargs,
    ):
        super().__init__(machine, num_apps, **kwargs)
        if not 0.0 <= max_stp_loss <= 1.0:
            raise ValueError("max_stp_loss must be in [0, 1]")
        self.max_stp_loss = max_stp_loss

    # The base class calls objective_value through its greedy loop; we
    # give it the SSER estimate so staleness sampling still works, but
    # replace the optimizer entirely.
    def objective_value(self, app_index: int, core_type: str) -> float:
        return self._wser_estimate(app_index, core_type)

    def _wser_estimate(self, app_index: int, core_type: str) -> float:
        sample = self.sample(app_index, core_type)
        reference = self.sample(app_index, BIG)
        assert sample is not None and reference is not None
        if sample.instructions_per_second <= 0:
            return 0.0
        return (
            sample.abc_per_second
            / sample.instructions_per_second
            * reference.instructions_per_second
        )

    def _np_estimate(self, app_index: int, core_type: str) -> float:
        sample = self.sample(app_index, core_type)
        reference = self.sample(app_index, BIG)
        assert sample is not None and reference is not None
        if reference.instructions_per_second <= 0:
            return 0.0
        return (
            sample.instructions_per_second
            / reference.instructions_per_second
        )

    def _optimize(self, assignment: Assignment) -> Assignment:
        apps = range(self.num_apps)
        type_for = lambda big_set: {
            i: (BIG if i in big_set else SMALL) for i in apps
        }

        def stp(big_set) -> float:
            types = type_for(big_set)
            return sum(self._np_estimate(i, types[i]) for i in apps)

        def sser(big_set) -> float:
            types = type_for(big_set)
            return sum(self._wser_estimate(i, types[i]) for i in apps)

        candidates = [
            frozenset(combo)
            for combo in itertools.combinations(apps, self.machine.big_cores)
        ]
        best_stp = max(stp(c) for c in candidates)
        admissible = [
            c for c in candidates
            if stp(c) >= (1.0 - self.max_stp_loss) * best_stp
        ]
        current_big = frozenset(
            i for i in apps
            if assignment.core_type_of(i, self.machine) == BIG
        )
        best = min(admissible, key=sser)
        current_admissible = current_big in admissible
        if current_admissible:
            # Hysteresis: keep the current assignment unless the best
            # admissible one is meaningfully better.
            accepted = not (
                sser(best) >= sser(current_big) * (1.0 - self.swap_threshold)
            )
        else:
            # The current assignment violates the STP bound: move to
            # the best admissible one regardless of the SSER delta.
            accepted = True
        if self.recorder is not None:
            current_sser = sser(current_big)
            if accepted and current_admissible:
                reason = ("best admissible SSER clears the hysteresis "
                          "threshold")
            elif accepted:
                reason = ("current assignment violates the STP bound; "
                          "move forced")
            else:
                reason = ("best admissible SSER within hysteresis of the "
                          "current assignment")
            self.recorder.candidate(
                mover=-1,
                partner=-1,
                delta_mover=0.0,
                delta_partner=0.0,
                delta_total=sser(best) - current_sser,
                objective_total=current_sser,
                threshold=self.swap_threshold * current_sser,
                accepted=accepted,
                forced=accepted and not current_admissible,
                reason=reason,
            )
        if not accepted:
            return assignment
        core_of = list(assignment.core_of)
        freed_big = [assignment.core_of[i] for i in current_big - best]
        freed_small = [
            assignment.core_of[i]
            for i in apps
            if i not in current_big and i in best
        ]
        for i in sorted(best - current_big):
            core_of[i] = freed_big.pop(0)
        for i in sorted(current_big - best):
            core_of[i] = freed_small.pop(0)
        return Assignment(tuple(core_of))
