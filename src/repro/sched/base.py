"""Scheduler interface and assignment types.

A *schedule assignment* maps each application to one core for one
segment of execution.  The multicore simulator drives a scheduler
through this protocol every scheduler quantum:

1. :meth:`Scheduler.plan_quantum` returns one or more
   :class:`SegmentPlan`\\ s -- usually a single full-quantum segment,
   or a short sampling segment followed by the regular segment
   (Section 4.1's sampling quantum).
2. the simulator executes each segment and calls
   :meth:`Scheduler.observe` with what each application's hardware
   counters measured during it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.config.machines import MachineConfig

#: Core id marking an application as parked (not running this segment).
#: Used when more applications than cores are scheduled
#: (oversubscription); a parked application makes no progress and
#: accumulates waiting time.
PARKED = -1


@dataclass(frozen=True)
class Assignment:
    """An application-to-core mapping for one segment.

    ``core_of[i]`` is the core index application ``i`` runs on, or
    :data:`PARKED` when the application is not running this segment.
    Every running application is placed on a distinct core.
    """

    core_of: tuple[int, ...]

    def __post_init__(self) -> None:
        running = [c for c in self.core_of if c != PARKED]
        if len(set(running)) != len(running):
            raise ValueError("two applications assigned to the same core")

    def validate(self, machine: MachineConfig) -> None:
        for core in self.core_of:
            if core != PARKED and not 0 <= core < machine.num_cores:
                raise ValueError(f"core {core} out of range for {machine.name}")

    def is_parked(self, app_index: int) -> bool:
        return self.core_of[app_index] == PARKED

    def core_type_of(self, app_index: int, machine: MachineConfig) -> str:
        core = self.core_of[app_index]
        if core == PARKED:
            raise ValueError(f"application {app_index} is parked")
        return machine.core_type(core)

    def with_swap(self, app_a: int, app_b: int) -> "Assignment":
        """A copy with two applications' cores exchanged."""
        cores = list(self.core_of)
        cores[app_a], cores[app_b] = cores[app_b], cores[app_a]
        return Assignment(tuple(cores))


@dataclass(frozen=True)
class SegmentPlan:
    """One segment of a scheduler quantum.

    Attributes:
        fraction: share of the scheduler quantum, in (0, 1].
        assignment: application-to-core mapping during the segment.
        is_sampling: whether this is a sampling segment (diagnostics).
    """

    fraction: float
    assignment: Assignment
    is_sampling: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("segment fraction must be in (0, 1]")


@dataclass(frozen=True)
class Observation:
    """What one application's counters reported for one segment.

    Attributes:
        app_index: which application.
        core_id: the core it ran on.
        core_type: ``"big"`` or ``"small"``.
        duration_seconds: segment wall-clock duration.
        instructions: committed instructions.
        measured_abc_seconds: ACE bit-seconds as reported by the
            configured counter architecture (FULL or ROB_ONLY).
        l3_accesses / dram_accesses: memory-hierarchy traffic during
            the segment, as ordinary performance counters would report
            it (used by counter-free ABC predictors).
    """

    app_index: int
    core_id: int
    core_type: str
    duration_seconds: float
    instructions: int
    measured_abc_seconds: float
    l3_accesses: float = 0.0
    dram_accesses: float = 0.0
    branch_mispredictions: float = 0.0

    @property
    def instructions_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.instructions / self.duration_seconds

    @property
    def abc_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.measured_abc_seconds / self.duration_seconds

    @property
    def l3_apki(self) -> float:
        """L3 *accesses* per kilo-instruction (not misses)."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.l3_accesses / self.instructions

    @property
    def dram_apki(self) -> float:
        """DRAM *accesses* per kilo-instruction (not misses)."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.dram_accesses / self.instructions

    @property
    def branch_mpki(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.branch_mispredictions / self.instructions


class Scheduler(abc.ABC):
    """Decides the application-to-core mapping each quantum.

    With as many applications as cores (the paper's setup), every
    application runs every quantum.  Schedulers supporting
    oversubscription accept more applications than cores and park the
    excess (:data:`PARKED`).
    """

    #: Whether this scheduler supports more applications than cores.
    supports_oversubscription = False

    #: Whether this scheduler insists on one application per core.
    #: Mode-aware schedulers relax this: a DMR checker occupies a
    #: small-core slot, so fewer applications than cores is legal.
    requires_full_occupancy = True

    def __init__(self, machine: MachineConfig, num_apps: int):
        if num_apps < machine.num_cores and self.requires_full_occupancy:
            raise ValueError(
                f"need at least one application per core: "
                f"{num_apps} applications vs {machine.num_cores} cores"
            )
        if num_apps > machine.num_cores and not self.supports_oversubscription:
            raise ValueError(
                f"{type(self).__name__} places one application per core: "
                f"{num_apps} applications vs {machine.num_cores} cores"
            )
        self.machine = machine
        self.num_apps = num_apps

    @abc.abstractmethod
    def plan_quantum(self, quantum_index: int) -> list[SegmentPlan]:
        """Segments for the next scheduler quantum (fractions sum to 1)."""

    def observe(
        self, plan: SegmentPlan, observations: Sequence[Observation]
    ) -> None:
        """Digest counter readings from an executed segment."""

    @staticmethod
    def identity_assignment(num_apps: int) -> Assignment:
        return Assignment(tuple(range(num_apps)))
