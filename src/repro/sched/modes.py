"""Protection modes: (placement x protection) scheduling and accounting.

The paper's scheduler only decides *where* an application runs.  This
module extends the action space with *how* the application is
protected, following the taxonomy of heterogeneous reliability modes
(Prabakaran et al.):

* ``none`` -- unprotected execution, today's behavior.
* ``dmr`` -- dual-modular redundancy: a MEEK-style checker replica
  runs on a dedicated small core, comparing retirement streams.  The
  checker consumes a small-core slot, slows the leader by a fixed
  lock-step factor, and suppresses the app's SER by the detection
  coverage; the checker's own comparison state contributes a small
  residual ACE term.
* ``checkpoint@N`` -- periodic checkpointing every ``N`` scheduler
  quanta: detected-error re-execution costs a fixed per-checkpoint
  overhead, and errors striking between a checkpoint and the output
  commit window still escape, so the residual SER shrinks with the
  interval while the slowdown grows.  Checkpoint storage holds live
  architectural state and adds its own ACE term.

Each mode has a performance (slowdown), reliability (residual +
protection-state ABC) and power model built from the same constants
the scheduler optimizes over, so post-hoc accounting can recompute
the scheduler's objective exactly -- that identity is the
``mode_model_conservation`` invariant checked by ``repro check``.

:class:`ModeAwareReliabilityScheduler` extends the greedy SSER swap
search (Algorithm 1) with a second phase per quantum: after placement
pair-swaps converge, it greedily applies the single best mode change
while the extended (uncore-aware) objective keeps improving past the
same hysteresis threshold.  The phases are sequential, so the final
extended objective is never worse than the placement-only one -- a
property the test suite checks -- and with ``allowed_modes=("none",)``
the mode phase is skipped entirely, reproducing the unprotected
scheduler byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.ace.uncore import l2_abc_rate, l3_abc_rate_estimate, uncore_abc
from repro.config.machines import BIG, MachineConfig, MemoryConfig
from repro.metrics.reliability import DEFAULT_IFR, weighted_ser
from repro.obs import metrics as obs_metrics
from repro.power.model import SMALL_EPI_J, SMALL_STATIC_W
from repro.sched.base import Assignment
from repro.sched.reliability import ReliabilityScheduler
from repro.sched.sampling import DEFAULT_SWAP_THRESHOLD

if TYPE_CHECKING:  # annotation-only; avoids a repro.sim import cycle
    from repro.sim.results import RunResult

# -- mode model constants ------------------------------------------------

#: Fraction of soft errors the DMR checker detects (sphere of
#: replication excludes the shared memory hierarchy, so coverage is
#: high but not perfect).
DMR_COVERAGE = 0.99

#: Lock-step slowdown of the DMR leader.  Deliberately a constant (not
#: a sampled big/small performance ratio) so the scheduler's objective
#: and the post-hoc accounting use the identical model.
DMR_SLOWDOWN = 1.05

#: Comparison/fingerprint state held by the checker (bits): 2 KiB.
DMR_CHECKER_STATE_BITS = 8 * 2 * 1024

#: Fraction of errors a checkpoint/restore pair recovers.
CHECKPOINT_COVERAGE = 0.95

#: Time to take one checkpoint (seconds).
CHECKPOINT_COST_SECONDS = 50e-6

#: Output-commit window: detected errors older than this have already
#: externalized and cannot be rolled back.
OUTPUT_COMMIT_WINDOW_SECONDS = 20e-3

#: Live architectural state held in checkpoint storage (bits): 64 KiB.
CHECKPOINT_STORAGE_BITS = 8 * 64 * 1024

#: Energy per checkpoint write (joules).
CHECKPOINT_WRITE_J = 1e-6

#: Checkpoint intervals offered to the scheduler, in quanta.
CHECKPOINT_INTERVALS_QUANTA = (2, 10, 50)


@dataclass(frozen=True)
class ProtectionMode:
    """One point in the protection action space.

    Attributes:
        key: stable identifier (``"none"``, ``"dmr"``,
            ``"checkpoint@N"``).
        kind: ``"none"``, ``"dmr"`` or ``"checkpoint"``.
        interval_quanta: checkpoint interval; 0 for other kinds.
    """

    key: str
    kind: str
    interval_quanta: int = 0


MODE_NONE = ProtectionMode("none", "none")
MODE_DMR = ProtectionMode("dmr", "dmr")

#: Every mode the scheduler may choose from, keyed by ``key``.
MODES: dict[str, ProtectionMode] = {
    MODE_NONE.key: MODE_NONE,
    MODE_DMR.key: MODE_DMR,
}
for _n in CHECKPOINT_INTERVALS_QUANTA:
    _m = ProtectionMode(f"checkpoint@{_n}", "checkpoint", _n)
    MODES[_m.key] = _m
del _m, _n


def parse_mode(key: str) -> ProtectionMode:
    """The :class:`ProtectionMode` named by ``key``."""
    try:
        return MODES[key]
    except KeyError:
        raise ValueError(
            f"unknown protection mode {key!r}; "
            f"expected one of {sorted(MODES)}"
        ) from None


# -- mode models ---------------------------------------------------------


def slowdown_factor(mode: ProtectionMode, quantum_seconds: float) -> float:
    """Execution-time multiplier of running under ``mode`` (>= 1)."""
    if mode.kind == "none":
        return 1.0
    if mode.kind == "dmr":
        return DMR_SLOWDOWN
    interval_seconds = mode.interval_quanta * quantum_seconds
    return 1.0 + CHECKPOINT_COST_SECONDS / interval_seconds


def residual_factor(mode: ProtectionMode, quantum_seconds: float) -> float:
    """Fraction of the app's raw SER that escapes ``mode`` (in [0, 1]).

    DMR leaves the uncovered fraction.  Checkpointing leaves the
    uncovered fraction plus the covered errors that strike within one
    checkpoint interval of the output commit window -- short intervals
    roll back almost everything, long intervals let most covered
    errors externalize before the next checkpoint.
    """
    if mode.kind == "none":
        return 1.0
    if mode.kind == "dmr":
        return 1.0 - DMR_COVERAGE
    interval_seconds = mode.interval_quanta * quantum_seconds
    escape = interval_seconds / (
        interval_seconds + OUTPUT_COMMIT_WINDOW_SECONDS
    )
    return (1.0 - CHECKPOINT_COVERAGE) + CHECKPOINT_COVERAGE * escape


def protection_abc_rate(mode: ProtectionMode) -> float:
    """ACE bits per second of protection state added by ``mode``.

    The DMR checker's comparison state only matters for the residual
    (undetected) error fraction; checkpoint storage is fully ACE --
    a flipped checkpoint silently corrupts the next restore.
    """
    if mode.kind == "none":
        return 0.0
    if mode.kind == "dmr":
        return (1.0 - DMR_COVERAGE) * DMR_CHECKER_STATE_BITS
    return float(CHECKPOINT_STORAGE_BITS)


def protection_power_watts(
    mode: ProtectionMode,
    quantum_seconds: float,
    instructions_per_second: float = 0.0,
) -> float:
    """Average power added by ``mode`` while the application runs."""
    if mode.kind == "none":
        return 0.0
    if mode.kind == "dmr":
        return SMALL_STATIC_W + SMALL_EPI_J * instructions_per_second
    interval_seconds = mode.interval_quanta * quantum_seconds
    return CHECKPOINT_WRITE_J / interval_seconds


# -- mode-aware scheduler ------------------------------------------------


class ModeAwareReliabilityScheduler(ReliabilityScheduler):
    """Greedy (placement x protection-mode) SSER minimization.

    Runs Algorithm 1's placement pair-swap search unchanged, then a
    mode phase: repeatedly apply the single best mode change while it
    improves the uncore-extended objective past the same relative
    hysteresis threshold.  DMR requires the app to sit on a big core
    and a free small core to host the checker; a DMR'd app and its
    checker core are pinned until the mode is dropped.
    """

    requires_full_occupancy = False

    def __init__(
        self,
        machine: MachineConfig,
        num_apps: int,
        swap_threshold: float = DEFAULT_SWAP_THRESHOLD,
        allowed_modes: Sequence[str] | None = None,
    ):
        super().__init__(machine, num_apps, swap_threshold)
        keys = tuple(allowed_modes) if allowed_modes is not None else tuple(MODES)
        self.allowed_modes = tuple(parse_mode(k) for k in keys)
        if MODE_NONE not in self.allowed_modes:
            raise ValueError('allowed_modes must include "none"')
        self._mode_of: list[ProtectionMode] = [MODE_NONE] * num_apps
        self._checker_core_of: dict[int, int] = {}
        self._mode_quanta: list[dict[str, int]] = [{} for _ in range(num_apps)]
        #: Per executed quantum: (per-app mode keys, active checker cores).
        self.mode_history: list[tuple[tuple[str, ...], frozenset[int]]] = []

    # -- hooks consumed by the base sampling machinery -------------------

    def _blocked_cores(self) -> frozenset[int]:
        return frozenset(self._checker_core_of.values())

    def _swap_locked(self) -> frozenset[int]:
        return frozenset(
            i for i, m in enumerate(self._mode_of) if m.kind == "dmr"
        )

    def _mode_keys(self) -> tuple[str, ...]:
        return tuple(m.key for m in self._mode_of)

    # -- extended objective ----------------------------------------------

    def mode_objective(
        self, app_index: int, core_type: str, mode: ProtectionMode
    ) -> float:
        """Estimated uncore-extended wSER of (core type, mode).

        The placement objective (:meth:`objective_value`) covers core
        ACE only; mode decisions also weigh the L2/L3 residency terms
        (identical across modes' residual scaling) and the mode's own
        slowdown, residual and protection-state ABC.
        """
        sample = self.sample(app_index, core_type)
        reference = self.sample(app_index, BIG)
        assert sample is not None and reference is not None
        ips = sample.instructions_per_second
        if ips <= 0:
            return 0.0
        memory = self.machine.memory
        uncore_rate = l2_abc_rate(memory) + l3_abc_rate_estimate(
            memory, sample.l3_apki / 1000.0 * ips
        )
        quantum = self.machine.quantum_seconds
        slow = slowdown_factor(mode, quantum)
        residual = residual_factor(mode, quantum)
        seconds_per_ref_second = (
            slow / ips * reference.instructions_per_second
        )
        protected = residual * (sample.abc_per_second + uncore_rate)
        protection = protection_abc_rate(mode)
        return (protected + protection) * seconds_per_ref_second

    # -- optimization ----------------------------------------------------

    def _optimize(self, assignment: Assignment) -> Assignment:
        assignment = super()._optimize(assignment)
        if len(self.allowed_modes) > 1:
            self._optimize_modes(assignment)
        return assignment

    def _free_small_cores(self, assignment: Assignment) -> list[int]:
        occupied = set(c for c in assignment.core_of if c >= 0)
        occupied.update(self._checker_core_of.values())
        return [
            c
            for c in range(self.machine.big_cores, self.machine.num_cores)
            if c not in occupied
        ]

    def _legal_modes(
        self, app_index: int, assignment: Assignment
    ) -> list[ProtectionMode]:
        current = self._mode_of[app_index]
        legal = []
        for mode in self.allowed_modes:
            if mode == current:
                continue
            if mode.kind == "dmr":
                on_big = (
                    assignment.core_type_of(app_index, self.machine) == BIG
                )
                if not on_big or not self._free_small_cores(assignment):
                    continue
            legal.append(mode)
        return legal

    def _optimize_modes(self, assignment: Assignment) -> None:
        """Greedy single-best mode changes until none clears hysteresis."""
        max_rounds = self.num_apps * len(self.allowed_modes)
        for _ in range(max_rounds):
            type_of = {
                i: assignment.core_type_of(i, self.machine)
                for i in range(self.num_apps)
            }
            current = {
                i: self.mode_objective(i, type_of[i], self._mode_of[i])
                for i in range(self.num_apps)
            }
            total = sum(abs(v) for v in current.values())
            threshold = self.swap_threshold * total
            best: tuple[int, ProtectionMode] | None = None
            best_delta = 0.0
            for i in range(self.num_apps):
                for mode in self._legal_modes(i, assignment):
                    delta = (
                        self.mode_objective(i, type_of[i], mode) - current[i]
                    )
                    if best is None or delta < best_delta:
                        best = (i, mode)
                        best_delta = delta
            if best is None:
                return
            app, mode = best
            accepted = best_delta < -threshold
            if self.recorder is not None:
                self.recorder.candidate(
                    mover=app,
                    partner=-1,
                    delta_mover=best_delta,
                    delta_partner=0.0,
                    delta_total=best_delta,
                    objective_total=total,
                    threshold=threshold,
                    accepted=accepted,
                    kind="mode",
                    mode=mode.key,
                    reason=(
                        "mode change clears swap threshold"
                        if accepted
                        else "mode change within swap hysteresis"
                    ),
                )
            reg = obs_metrics.ACTIVE
            if reg is not None:
                reg.counter(
                    "sched.mode_candidates",
                    outcome="accepted" if accepted else "rejected",
                ).inc()
            if not accepted:
                return
            self._set_mode(app, mode, assignment)

    def _set_mode(
        self, app_index: int, mode: ProtectionMode, assignment: Assignment
    ) -> None:
        if self._mode_of[app_index].kind == "dmr":
            self._checker_core_of.pop(app_index, None)
        if mode.kind == "dmr":
            free = self._free_small_cores(assignment)
            assert free, "DMR legality checked before acceptance"
            self._checker_core_of[app_index] = free[0]
        self._mode_of[app_index] = mode

    # -- bookkeeping -----------------------------------------------------

    def plan_quantum(self, quantum_index: int):
        plan = super().plan_quantum(quantum_index)
        for i, mode in enumerate(self._mode_of):
            counts = self._mode_quanta[i]
            counts[mode.key] = counts.get(mode.key, 0) + 1
        self.mode_history.append(
            (self._mode_keys(), frozenset(self._checker_core_of.values()))
        )
        return plan

    def mode_schedule(self) -> "ModeSchedule":
        """The per-app mode dwell counts accumulated so far."""
        return ModeSchedule(
            quanta_by_app=tuple(dict(c) for c in self._mode_quanta),
            quantum_seconds=self.machine.quantum_seconds,
        )


# -- post-hoc accounting -------------------------------------------------


@dataclass(frozen=True)
class ModeSchedule:
    """How many quanta each application spent in each protection mode."""

    quanta_by_app: tuple[Mapping[str, int], ...]
    quantum_seconds: float

    def weights(self, app_index: int) -> dict[str, float]:
        """Mode dwell-time weights for one app (sum to 1)."""
        counts = self.quanta_by_app[app_index]
        total = sum(counts.values())
        if total <= 0:
            return {MODE_NONE.key: 1.0}
        return {key: n / total for key, n in counts.items() if n > 0}


@dataclass(frozen=True)
class ModedApp:
    """Protection-mode accounting overlay for one application.

    Attributes:
        name: application name.
        weights: mode-key -> fraction of quanta spent in that mode.
        protected_abc_seconds: residual (escaping) ACE bit-seconds of
            the app's own core + uncore state under the mode mix.
        protection_abc_seconds: ACE bit-seconds added by protection
            state (checker fingerprints, checkpoint storage).
        moded_time_seconds: execution time including mode slowdowns.
        moded_wser: weighted SER (Equation 2) of the protected app.
        protection_power_watts: average added power while running.
    """

    name: str
    weights: Mapping[str, float]
    protected_abc_seconds: float
    protection_abc_seconds: float
    moded_time_seconds: float
    moded_wser: float
    protection_power_watts: float


@dataclass(frozen=True)
class ModeOutcome:
    """Mode-overlay accounting of a full run."""

    apps: tuple[ModedApp, ...]

    @property
    def moded_sser(self) -> float:
        return sum(app.moded_wser for app in self.apps)

    @property
    def protection_power_watts(self) -> float:
        return sum(app.protection_power_watts for app in self.apps)


def apply_modes(
    result: RunResult,
    schedule: ModeSchedule,
    memory: "MemoryConfig",
    ifr: float = DEFAULT_IFR,
) -> ModeOutcome:
    """Overlay a mode schedule onto a completed run's accounting.

    Uses exactly the constants the scheduler optimized over: per mode
    ``m`` with dwell weight ``w_m``, the app's raw core + uncore ABC
    is scaled by ``w_m * residual(m) * slowdown(m)`` (slower execution
    holds state longer), protection state accrues at
    ``protection_abc_rate(m)`` over the slowed on-core time, and
    execution time stretches by the weighted slowdown.  The
    ``mode_model_conservation`` invariant recomputes this identity.
    """
    uncore = uncore_abc(result, memory)
    quantum = schedule.quantum_seconds
    moded = []
    for index, app in enumerate(result.apps):
        weights = schedule.weights(index)
        raw_abc = (
            app.abc_seconds
            + uncore[index].l2_abc_seconds
            + uncore[index].l3_abc_seconds
        )
        on_core = app.time_big_seconds + app.time_small_seconds
        ips = app.instructions / app.time_seconds if app.time_seconds > 0 else 0.0
        protected = 0.0
        protection = 0.0
        slow_mix = 0.0
        power = 0.0
        for key, w in weights.items():
            mode = parse_mode(key)
            slow = slowdown_factor(mode, quantum)
            protected += w * residual_factor(mode, quantum) * slow * raw_abc
            protection += w * protection_abc_rate(mode) * slow * on_core
            slow_mix += w * slow
            power += w * protection_power_watts(mode, quantum, ips)
        moded.append(
            ModedApp(
                name=app.name,
                weights=weights,
                protected_abc_seconds=protected,
                protection_abc_seconds=protection,
                moded_time_seconds=app.time_seconds * slow_mix,
                moded_wser=weighted_ser(
                    protected + protection, app.reference_time_seconds, ifr
                ),
                protection_power_watts=power,
            )
        )
    return ModeOutcome(apps=tuple(moded))


def format_mode_usage(schedule: ModeSchedule, names: Sequence[str]) -> str:
    """Human-readable per-app mode dwell table."""
    lines = ["app              mode mix"]
    for index, name in enumerate(names):
        weights = schedule.weights(index)
        mix = ", ".join(
            f"{key}={weights[key]:.0%}" for key in sorted(weights)
        )
        lines.append(f"{name:<16} {mix}")
    return "\n".join(lines)


__all__ = [
    "CHECKPOINT_COST_SECONDS",
    "CHECKPOINT_COVERAGE",
    "CHECKPOINT_INTERVALS_QUANTA",
    "CHECKPOINT_STORAGE_BITS",
    "CHECKPOINT_WRITE_J",
    "DMR_CHECKER_STATE_BITS",
    "DMR_COVERAGE",
    "DMR_SLOWDOWN",
    "MODES",
    "MODE_DMR",
    "MODE_NONE",
    "ModeAwareReliabilityScheduler",
    "ModeOutcome",
    "ModeSchedule",
    "ModedApp",
    "OUTPUT_COMMIT_WINDOW_SECONDS",
    "ProtectionMode",
    "apply_modes",
    "format_mode_usage",
    "parse_mode",
    "protection_abc_rate",
    "protection_power_watts",
    "residual_factor",
    "slowdown_factor",
]
