"""Scheduler variants used for ablation studies.

These isolate individual design choices of the paper's scheduler:

* :class:`ExhaustiveReliabilityScheduler` -- replaces Algorithm 1's
  greedy pair-swap loop with exhaustive enumeration of all
  application-to-core-type assignments per quantum (the upper bound on
  what the greedy optimizer could achieve with the same samples).
* :class:`RawSerScheduler` -- minimizes the *unweighted* sum of
  per-application SER (ACE bits per second) instead of SSER,
  demonstrating why the slowdown weighting of Section 3 matters.
"""

from __future__ import annotations

import itertools

from repro.config.machines import BIG, SMALL
from repro.sched.base import Assignment
from repro.sched.reliability import ReliabilityScheduler
from repro.sched.sampling import SamplingScheduler


class ExhaustiveReliabilityScheduler(ReliabilityScheduler):
    """SSER-optimizing scheduler with exhaustive assignment search."""

    decision_phase = "exhaustive"

    def _optimize(self, assignment: Assignment) -> Assignment:
        apps = range(self.num_apps)
        current_big = frozenset(
            i for i in apps
            if assignment.core_type_of(i, self.machine) == BIG
        )

        def cost(big_set) -> float:
            return sum(
                self.objective_value(i, BIG if i in big_set else SMALL)
                for i in apps
            )

        current_cost = cost(current_big)
        best_set, best_cost = current_big, current_cost
        for combo in itertools.combinations(apps, self.machine.big_cores):
            combo_set = frozenset(combo)
            combo_cost = cost(combo_set)
            if combo_cost < best_cost * (1.0 - self.swap_threshold):
                best_set, best_cost = combo_set, combo_cost
        if self.recorder is not None:
            accepted = best_set != current_big
            self.recorder.candidate(
                mover=-1,
                partner=-1,
                delta_mover=0.0,
                delta_partner=0.0,
                delta_total=best_cost - current_cost,
                objective_total=current_cost,
                threshold=self.swap_threshold * current_cost,
                accepted=accepted,
                reason=(
                    "exhaustive search found a better assignment"
                    if accepted
                    else "no assignment clears the hysteresis threshold"
                ),
            )
        if best_set == current_big:
            return assignment
        # Keep unmoved applications on their cores; movers take the
        # freed cores of the opposite type.
        freed_big = [
            assignment.core_of[i] for i in current_big - best_set
        ]
        freed_small = [
            assignment.core_of[i]
            for i in apps
            if i not in current_big and i in best_set
        ]
        core_of = list(assignment.core_of)
        for i in sorted(best_set - current_big):
            core_of[i] = freed_big.pop(0)
        for i in sorted(current_big - best_set):
            core_of[i] = freed_small.pop(0)
        return Assignment(tuple(core_of))


class RawSerScheduler(SamplingScheduler):
    """Ablation: minimize raw summed SER without slowdown weighting.

    The objective is each application's ACE bits per second on the
    candidate core type.  Without the reference-performance weighting
    this over-values protecting slow applications and under-values
    fast ones (Section 3's motivation for SSER).
    """

    def objective_value(self, app_index: int, core_type: str) -> float:
        sample = self.sample(app_index, core_type)
        assert sample is not None
        return sample.abc_per_second
