"""Random scheduler: the paper's baseline.

Each scheduler quantum, the applications that run on the big core(s)
are selected at random (Section 6): the whole application-to-core
mapping is drawn as a fresh random permutation every quantum.
"""

from __future__ import annotations

import numpy as np

from repro.config.machines import MachineConfig
from repro.sched.base import PARKED, Assignment, Scheduler, SegmentPlan


class RandomScheduler(Scheduler):
    """Uniformly random application-to-core mapping per quantum.

    With more applications than cores (oversubscription), a random
    subset of applications runs each quantum and the rest are parked.
    """

    supports_oversubscription = True

    def __init__(self, machine: MachineConfig, num_apps: int, seed: int = 0):
        super().__init__(machine, num_apps)
        self._rng = np.random.default_rng(seed)

    def plan_quantum(self, quantum_index: int) -> list[SegmentPlan]:
        cores = self._rng.permutation(self.machine.num_cores)
        apps = self._rng.permutation(self.num_apps)
        core_of = [PARKED] * self.num_apps
        for slot, app in enumerate(apps[: self.machine.num_cores]):
            core_of[int(app)] = int(cores[slot])
        return [SegmentPlan(1.0, Assignment(tuple(core_of)))]
