"""Performance-optimized scheduler: maximize system throughput (STP).

The same sampling algorithm as the reliability-optimized scheduler
(Section 6: "using the same sampling-based scheduling algorithm
optimizing for STP rather than SSER").  An application's STP
contribution on core type ``c`` is its normalized progress

    NP(c) = (instruction rate on c) / (big-core instruction rate),

and the greedy optimizer minimizes the negated sum.
"""

from __future__ import annotations

from repro.config.machines import BIG
from repro.sched.sampling import SamplingScheduler


class PerformanceScheduler(SamplingScheduler):
    """Maximizes estimated STP through greedy pair swaps."""

    def objective_value(self, app_index: int, core_type: str) -> float:
        sample = self.sample(app_index, core_type)
        reference = self.sample(app_index, BIG)
        assert sample is not None and reference is not None
        if reference.instructions_per_second <= 0:
            return 0.0
        normalized_progress = (
            sample.instructions_per_second / reference.instructions_per_second
        )
        return -normalized_progress
