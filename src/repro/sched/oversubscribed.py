"""Oversubscription: scheduling more applications than cores.

The paper always runs one application per core.  A deployment with a
multiprogramming level above one additionally decides *which*
applications run each quantum.  This extension combines:

* **fair time-sharing** — each quantum, the applications with the
  least accumulated execution time run (a deficit round-robin, so no
  application starves), and
* **reliability-aware placement** — among the selected applications,
  those with the largest estimated wSER savings take the small cores
  and the rest the big cores, using the same counter samples as
  Algorithm 1.

Samples refresh naturally: the rotation moves every application
across both core types over time, so no dedicated sampling phases are
needed (a parked application's samples simply age).
"""

from __future__ import annotations

from repro.config.machines import BIG, SMALL, MachineConfig
from repro.sched.base import PARKED, Assignment, Scheduler, SegmentPlan


class OversubscribedReliabilityScheduler(Scheduler):
    """Fair-share scheduler minimizing SSER under oversubscription."""

    supports_oversubscription = True

    def __init__(self, machine: MachineConfig, num_apps: int):
        super().__init__(machine, num_apps)
        if machine.big_cores == 0 or machine.small_cores == 0:
            raise ValueError("reliability placement needs both core types")
        self._executed_seconds = [0.0] * num_apps
        # Most recent (ips, abc_rate) per (app, core type).
        self._samples: dict[tuple[int, str], tuple[float, float]] = {}

    # -- estimates ---------------------------------------------------

    def _wser_estimate(self, app_index: int, core_type: str) -> float | None:
        sample = self._samples.get((app_index, core_type))
        reference = self._samples.get((app_index, BIG))
        if sample is None or reference is None or sample[0] <= 0:
            return None
        ips, abc_rate = sample
        return abc_rate / ips * reference[0]

    def _placement_delta(self, app_index: int) -> float:
        """Estimated wSER saving of a small-core placement.

        Applications missing a sample on one core type are steered
        toward it (big first: the big-core rate is also the wSER
        reference), so placement exploration collects the samples the
        rotation alone would not guarantee.
        """
        if (app_index, BIG) not in self._samples:
            return float("-inf")  # visit the big core first
        if (app_index, SMALL) not in self._samples:
            return float("inf")  # then sample the small core
        big = self._wser_estimate(app_index, BIG)
        small = self._wser_estimate(app_index, SMALL)
        if big is None or small is None:
            return 0.0
        return big - small

    # -- planning ----------------------------------------------------

    def plan_quantum(self, quantum_index: int) -> list[SegmentPlan]:
        # Fair selection: least accumulated execution time first
        # (stable tie-break by index keeps the rotation deterministic).
        order = sorted(
            range(self.num_apps), key=lambda i: (self._executed_seconds[i], i)
        )
        selected = order[: self.machine.num_cores]
        # Reliability placement among the selected: the largest
        # wSER-saving applications take the small cores.
        by_saving = sorted(
            selected, key=lambda i: self._placement_delta(i), reverse=True
        )
        small_apps = set(by_saving[: self.machine.small_cores])
        big_slots = iter(range(self.machine.big_cores))
        small_slots = iter(
            range(self.machine.big_cores, self.machine.num_cores)
        )
        core_of = [PARKED] * self.num_apps
        for i in selected:
            core_of[i] = (
                next(small_slots) if i in small_apps else next(big_slots)
            )
        return [SegmentPlan(1.0, Assignment(tuple(core_of)))]

    def observe(self, plan: SegmentPlan, observations) -> None:
        for obs in observations:
            if obs.duration_seconds <= 0 or obs.instructions <= 0:
                continue
            self._executed_seconds[obs.app_index] += obs.duration_seconds
            self._samples[(obs.app_index, obs.core_type)] = (
                obs.instructions_per_second,
                obs.abc_per_second,
            )
