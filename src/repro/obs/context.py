"""Trace-context propagation across the fleet.

A :class:`TraceContext` identifies *where an event came from* in a
sharded campaign: the campaign id (a stable digest of the planned
``RunSpec`` keys, so resumes of the same campaign share it), the shard
index, the content key of the run being executed, and the innermost
active span when the event was emitted.

The context travels three ways:

* **ambient** -- a module-level :data:`ACTIVE` installed with
  :func:`activate`, read with :func:`current`.  Like the metrics
  registry, the disabled cost is one global load and comparison.
* **on the wire** -- `ShardPlan.to_message` carries the coordinator's
  context so workers stamp events with the fleet's campaign id, not a
  locally re-derived one.
* **on events** -- the runtime engine stamps every emitted event with
  ``trace`` (see :mod:`repro.runtime.events`); merged fleet logs are
  then filterable by campaign, shard, or run key.

Contexts are plain frozen dataclasses serialising to flat string/int
dicts, so they cross the sorted-key JSON framing unchanged.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "ACTIVE",
    "TraceContext",
    "activate",
    "campaign_id",
    "current",
]


def campaign_id(keys: Sequence[str]) -> str:
    """Stable campaign identity: a digest of the planned run keys.

    Depends only on spec content (the same sha256 keys the
    ``ResultStore`` uses), so a resumed or re-sharded campaign keeps
    the id of its first execution.
    """
    digest = hashlib.sha256()
    for key in keys:
        digest.update(key.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class TraceContext:
    """Correlation coordinates for one emitted event or message."""

    campaign: str
    shard: int | None = None
    run_key: str | None = None
    parent: str | None = None

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"campaign": self.campaign}
        if self.shard is not None:
            data["shard"] = self.shard
        if self.run_key is not None:
            data["run_key"] = self.run_key
        if self.parent is not None:
            data["parent"] = self.parent
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceContext":
        return cls(
            campaign=str(data["campaign"]),
            shard=(
                int(data["shard"]) if data.get("shard") is not None else None
            ),
            run_key=(
                str(data["run_key"])
                if data.get("run_key") is not None
                else None
            ),
            parent=(
                str(data["parent"])
                if data.get("parent") is not None
                else None
            ),
        )

    def with_run(self, run_key: str | None) -> "TraceContext":
        return replace(self, run_key=run_key)

    def with_parent(self, parent: str | None) -> "TraceContext":
        return replace(self, parent=parent)


ACTIVE: TraceContext | None = None


def current() -> TraceContext | None:
    """The ambient trace context, or ``None`` when tracing is off."""
    return ACTIVE


@contextmanager
def activate(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``context`` as the ambient trace context for a scope."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = context
    try:
        yield context
    finally:
        ACTIVE = previous
