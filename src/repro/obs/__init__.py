"""Unified telemetry for the reproduction: metrics, spans, decisions.

Three independent, individually-activatable layers:

* :mod:`repro.obs.metrics` -- process-local labeled metrics registry
  (counters, gauges, histograms, timers) with mergeable snapshots so
  per-worker metrics flow back through the runtime engine.
* :mod:`repro.obs.tracing` -- aggregating span tracer producing nested
  wall-time trees (``with span("simulate_window", core="big"): ...``).
* :mod:`repro.obs.decisions` -- structured per-quantum scheduler
  decision traces that can be replayed and explained
  (``repro explain``).

All layers are off by default and cost one global load + comparison
per instrumentation site when disabled (gated <3% on the OoO kernel
path by ``repro bench``).  See docs/observability.md.
"""

from repro.obs import metrics, tracing
from repro.obs.decisions import (
    DECISION_TRACE_SCHEMA,
    DecisionTraceRecorder,
    QuantumRecord,
    ReplayError,
    SwapCandidate,
    decompose_swaps,
    format_trace,
    read_trace,
    replay_trace,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistrySnapshot,
    Timer,
)
from repro.obs.tracing import SpanNode, SpanTracer, span

__all__ = [
    "DECISION_TRACE_SCHEMA",
    "Counter",
    "DecisionTraceRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantumRecord",
    "RegistrySnapshot",
    "ReplayError",
    "SpanNode",
    "SpanTracer",
    "SwapCandidate",
    "Timer",
    "decompose_swaps",
    "format_trace",
    "metrics",
    "read_trace",
    "replay_trace",
    "span",
    "tracing",
    "write_trace",
]
