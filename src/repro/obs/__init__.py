"""Unified telemetry for the reproduction: metrics, spans, decisions,
trace contexts, flight recording, and OpenMetrics export.

Independent, individually-activatable layers:

* :mod:`repro.obs.metrics` -- process-local labeled metrics registry
  (counters, gauges, histograms, timers) with mergeable snapshots so
  per-worker metrics flow back through the runtime engine.
* :mod:`repro.obs.tracing` -- aggregating span tracer producing nested
  wall-time trees (``with span("simulate_window", core="big"): ...``).
* :mod:`repro.obs.decisions` -- structured per-quantum scheduler
  decision traces that can be replayed and explained
  (``repro explain``).
* :mod:`repro.obs.context` -- ambient :class:`TraceContext`
  (campaign / shard / run key / parent span) propagated across the
  shard protocol and stamped onto every runtime event.
* :mod:`repro.obs.flight` -- crash flight recorder: a bounded ring of
  recent activity dumped as a postmortem bundle when a job dies
  (``repro postmortem``).
* :mod:`repro.obs.openmetrics` -- deterministic OpenMetrics text
  exposition of metric snapshots and fleet status
  (``repro stats --openmetrics``, ``repro top``).

All layers are off by default and cost one global load + comparison
per instrumentation site when disabled (gated <3% on the OoO and
in-order kernel paths by ``repro bench``).  See docs/observability.md.
"""

from repro.obs import context, flight, metrics, openmetrics, tracing
from repro.obs.context import TraceContext
from repro.obs.flight import FlightRecorder
from repro.obs.decisions import (
    DECISION_TRACE_SCHEMA,
    DecisionTraceRecorder,
    QuantumRecord,
    ReplayError,
    SwapCandidate,
    decompose_swaps,
    format_trace,
    read_trace,
    replay_trace,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistrySnapshot,
    Timer,
)
from repro.obs.tracing import SpanNode, SpanTracer, span

__all__ = [
    "DECISION_TRACE_SCHEMA",
    "Counter",
    "DecisionTraceRecorder",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantumRecord",
    "RegistrySnapshot",
    "ReplayError",
    "SpanNode",
    "SpanTracer",
    "SwapCandidate",
    "Timer",
    "TraceContext",
    "context",
    "decompose_swaps",
    "flight",
    "format_trace",
    "metrics",
    "openmetrics",
    "read_trace",
    "replay_trace",
    "span",
    "tracing",
    "write_trace",
]
