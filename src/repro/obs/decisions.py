"""Scheduler decision traces: record, replay, and explain Algorithm 1.

Every quantum, a sampling scheduler with a :class:`DecisionTraceRecorder`
attached (``scheduler.recorder = DecisionTraceRecorder()``) emits one
:class:`QuantumRecord` capturing *why* the assignment changed:

* the assignment before and after optimization,
* every swap candidate the optimizer considered, with the per-pair
  objective (SSER/STP) deltas, the hysteresis threshold in force, and
  whether the swap was accepted or rejected (and why),
* the per-application objective estimates the decision was based on,
* staleness-rule activity (which applications were stale, which
  sampling swaps the short sampling segment performed),
* the executed segment plan.

The trace is *replayable*: ``before`` plus the recorded ``moves`` (a
transposition decomposition of the permutation) reproduces ``after``
exactly, and consecutive records chain (``records[k].before ==
records[k-1].after``), so :func:`replay_trace` can reconstruct the final
:class:`~repro.sched.base.Assignment` of a whole run from the trace
alone.  ``repro.check`` enforces this plus the threshold semantics via
the ``decision_trace_consistency`` invariant.

Phases:

* ``initial_sampling`` -- the rotation that runs every application on
  every core type before the optimizer has data (no candidates).
* ``greedy`` -- Algorithm 1's greedy pair-swap loop; one candidate per
  round, ``mover``/``partner`` are application indices.
* ``exhaustive`` -- whole-assignment search
  (:class:`ConstrainedReliabilityScheduler`,
  :class:`ExhaustiveReliabilityScheduler`); one summary candidate with
  ``mover == partner == -1`` comparing the chosen assignment against
  the current one.  ``forced`` marks moves made because the *current*
  assignment violates the STP constraint -- those may accept a
  non-improving SSER delta.
* ``admit`` / ``shed`` / ``depart`` -- open-system boundary records
  (:mod:`repro.service`): population changes between quanta.  They
  carry ``before == after`` (the slot -> core binding is untouched by
  admission control), so the trace keeps chaining across mid-stream
  arrivals and departures.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "DECISION_TRACE_SCHEMA",
    "DecisionTraceRecorder",
    "QuantumRecord",
    "ReplayError",
    "SwapCandidate",
    "apply_moves",
    "decompose_swaps",
    "format_trace",
    "read_trace",
    "replay_trace",
    "write_trace",
]


class ReplayError(ValueError):
    """A decision trace is internally inconsistent."""


@dataclass(frozen=True)
class SwapCandidate:
    """One optimizer decision point.

    For the greedy phase, ``mover``/``partner`` are the application pair
    considered and ``delta_mover``/``delta_partner`` their individual
    objective changes if swapped.  For the exhaustive phase the record
    summarises the whole-assignment comparison (``mover == partner ==
    -1``, individual deltas zero).  ``delta_total`` is the net objective
    change of accepting (negative = improvement); an accepted,
    non-forced candidate always satisfies ``delta_total < -threshold``.
    """

    mover: int
    partner: int
    delta_mover: float
    delta_partner: float
    delta_total: float
    objective_total: float
    threshold: float
    accepted: bool
    forced: bool = False
    reason: str = ""
    #: ``"swap"`` for placement pair-swaps (and whole-assignment
    #: comparisons); ``"mode"`` for protection-mode changes, where
    #: ``mover`` is the application, ``partner`` is -1 and ``mode`` is
    #: the candidate mode key.  Replay treats the kinds separately:
    #: mode candidates never move cores.
    kind: str = "swap"
    mode: str = ""

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SwapCandidate":
        return cls(
            mover=int(data["mover"]),
            partner=int(data["partner"]),
            delta_mover=float(data["delta_mover"]),
            delta_partner=float(data["delta_partner"]),
            delta_total=float(data["delta_total"]),
            objective_total=float(data["objective_total"]),
            threshold=float(data["threshold"]),
            accepted=bool(data["accepted"]),
            forced=bool(data.get("forced", False)),
            reason=str(data.get("reason", "")),
            kind=str(data.get("kind", "swap")),
            mode=str(data.get("mode", "")),
        )


@dataclass(frozen=True)
class SegmentRecord:
    """One executed segment of the quantum's plan."""

    fraction: float
    core_of: tuple[int, ...]
    is_sampling: bool

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SegmentRecord":
        return cls(
            fraction=float(data["fraction"]),
            core_of=tuple(int(c) for c in data["core_of"]),
            is_sampling=bool(data["is_sampling"]),
        )


@dataclass(frozen=True)
class QuantumRecord:
    """Everything the scheduler decided during one quantum."""

    quantum: int
    scheduler: str
    phase: str  # "initial_sampling" | "greedy" | "exhaustive"
    #          | "admit" | "shed" | "depart" (open-system boundaries)
    before: tuple[int, ...]
    after: tuple[int, ...]
    candidates: tuple[SwapCandidate, ...] = ()
    #: Move decomposition of before -> after: (app_a, app_b) swaps,
    #: plus (-(app + 1), core) rebinds on spare-core machines (see
    #: :func:`decompose_swaps`); applying them to ``before`` in order
    #: yields ``after`` exactly.
    moves: tuple[tuple[int, int], ...] = ()
    #: (app, objective_on_big, objective_on_small) estimates the
    #: decision was based on (empty during initial sampling).
    objectives: tuple[tuple[int, float, float], ...] = ()
    stale: tuple[int, ...] = ()
    sampling_swaps: tuple[tuple[int, int], ...] = ()
    segments: tuple[SegmentRecord, ...] = ()
    #: Per-application protection-mode keys in force during this
    #: quantum (empty for mode-unaware schedulers).
    modes: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "quantum": self.quantum,
            "scheduler": self.scheduler,
            "phase": self.phase,
            "before": list(self.before),
            "after": list(self.after),
            "candidates": [c.to_dict() for c in self.candidates],
            "moves": [list(m) for m in self.moves],
            "objectives": [list(o) for o in self.objectives],
            "stale": list(self.stale),
            "sampling_swaps": [list(s) for s in self.sampling_swaps],
            "segments": [s.to_dict() for s in self.segments],
            "modes": list(self.modes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuantumRecord":
        return cls(
            quantum=int(data["quantum"]),
            scheduler=str(data["scheduler"]),
            phase=str(data["phase"]),
            before=tuple(int(c) for c in data["before"]),
            after=tuple(int(c) for c in data["after"]),
            candidates=tuple(
                SwapCandidate.from_dict(c) for c in data.get("candidates", ())
            ),
            moves=tuple(
                (int(a), int(b)) for a, b in data.get("moves", ())
            ),
            objectives=tuple(
                (int(i), float(b), float(s))
                for i, b, s in data.get("objectives", ())
            ),
            stale=tuple(int(i) for i in data.get("stale", ())),
            sampling_swaps=tuple(
                (int(a), int(b)) for a, b in data.get("sampling_swaps", ())
            ),
            segments=tuple(
                SegmentRecord.from_dict(s) for s in data.get("segments", ())
            ),
            modes=tuple(str(m) for m in data.get("modes", ())),
        )


#: Machine-readable schema of the trace record types, derived from the
#: dataclass definitions so it cannot drift from the implementation.
#: CI diffs this against ``tests/fixtures/decision_trace_schema.json``
#: so schema changes are an explicit, reviewed act.
DECISION_TRACE_SCHEMA: dict[str, Any] = {
    "version": 2,
    "quantum_record": {
        f.name: str(f.type) for f in dataclasses.fields(QuantumRecord)
    },
    "swap_candidate": {
        f.name: str(f.type) for f in dataclasses.fields(SwapCandidate)
    },
    "segment": {
        f.name: str(f.type) for f in dataclasses.fields(SegmentRecord)
    },
    "phases": [
        "initial_sampling",
        "greedy",
        "exhaustive",
        "admit",
        "shed",
        "depart",
    ],
}


def decompose_swaps(
    before: Sequence[int], after: Sequence[int]
) -> tuple[tuple[int, int], ...]:
    """Moves turning ``before`` into ``after``.

    When both assignments use the same core multiset (the
    fully-occupied case), the result is a pure transposition
    decomposition: ``(app_a, app_b)`` pairs exchanging cores.  With
    spare cores (mode-aware scheduling), an application may move to a
    core nobody held; such moves are encoded as ``(-(app + 1), core)``
    rebinds, which :func:`apply_moves` understands and which never
    appear in fully-occupied traces.
    """
    current = list(before)
    target = list(after)
    if len(current) != len(target):
        raise ReplayError(
            f"assignments differ in length: "
            f"{tuple(before)} -> {tuple(after)}"
        )
    moves: list[tuple[int, int]] = []
    for i in range(len(current)):
        if current[i] == target[i]:
            continue
        j = next(
            (
                k
                for k in range(i + 1, len(current))
                if current[k] == target[i]
            ),
            None,
        )
        if j is None:
            current[i] = target[i]
            moves.append((-(i + 1), target[i]))
        else:
            current[i], current[j] = current[j], current[i]
            moves.append((i, j))
    return tuple(moves)


def apply_moves(
    core_of: Sequence[int], moves: Iterable[tuple[int, int]]
) -> tuple[int, ...]:
    cores = list(core_of)
    for a, b in moves:
        if a < 0:
            cores[-a - 1] = b
        else:
            cores[a], cores[b] = cores[b], cores[a]
    return tuple(cores)


class DecisionTraceRecorder:
    """Collects swap candidates and per-quantum records.

    Attach to any :class:`~repro.sched.sampling.SamplingScheduler`
    subclass via ``scheduler.recorder = DecisionTraceRecorder()``; the
    scheduler's optimizer reports each candidate through
    :meth:`candidate` and ``plan_quantum`` finalises the quantum with
    :meth:`quantum`.
    """

    def __init__(self) -> None:
        self.records: list[QuantumRecord] = []
        self._pending: list[SwapCandidate] = []

    def candidate(
        self,
        *,
        mover: int,
        partner: int,
        delta_mover: float,
        delta_partner: float,
        delta_total: float,
        objective_total: float,
        threshold: float,
        accepted: bool,
        forced: bool = False,
        reason: str = "",
        kind: str = "swap",
        mode: str = "",
    ) -> None:
        self._pending.append(
            SwapCandidate(
                mover=mover,
                partner=partner,
                delta_mover=delta_mover,
                delta_partner=delta_partner,
                delta_total=delta_total,
                objective_total=objective_total,
                threshold=threshold,
                accepted=accepted,
                forced=forced,
                reason=reason,
                kind=kind,
                mode=mode,
            )
        )

    def quantum(
        self,
        *,
        quantum: int,
        scheduler: str,
        phase: str,
        before: Sequence[int],
        after: Sequence[int],
        objectives: Iterable[tuple[int, float, float]] = (),
        stale: Iterable[int] = (),
        sampling_swaps: Iterable[tuple[int, int]] = (),
        segments: Iterable[tuple[float, Sequence[int], bool]] = (),
        modes: Iterable[str] = (),
    ) -> QuantumRecord:
        record = QuantumRecord(
            quantum=quantum,
            scheduler=scheduler,
            phase=phase,
            before=tuple(before),
            after=tuple(after),
            candidates=tuple(self._pending),
            moves=decompose_swaps(before, after),
            objectives=tuple(objectives),
            stale=tuple(stale),
            sampling_swaps=tuple(sampling_swaps),
            segments=tuple(
                SegmentRecord(
                    fraction=float(fraction),
                    core_of=tuple(core_of),
                    is_sampling=bool(is_sampling),
                )
                for fraction, core_of, is_sampling in segments
            ),
            modes=tuple(modes),
        )
        self._pending = []
        self.records.append(record)
        return record


def replay_trace(records: Sequence[QuantumRecord]) -> tuple[int, ...]:
    """Replay a trace move-by-move; returns the final assignment.

    Raises :class:`ReplayError` if consecutive records do not chain or
    any record's moves fail to reproduce its ``after`` assignment.
    """
    if not records:
        raise ReplayError("empty decision trace")
    current = records[0].before
    for record in records:
        if record.before != current:
            raise ReplayError(
                f"quantum {record.quantum}: before={record.before} does "
                f"not chain from previous after={current}"
            )
        current = apply_moves(current, record.moves)
        if current != record.after:
            raise ReplayError(
                f"quantum {record.quantum}: replaying moves "
                f"{record.moves} gives {current}, record says "
                f"{record.after}"
            )
    return current


def write_trace(records: Iterable[QuantumRecord], path: str) -> None:
    """Append-free JSONL export: one record per line."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True))
            handle.write("\n")


def read_trace(path: str) -> list[QuantumRecord]:
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(QuantumRecord.from_dict(json.loads(line)))
    return records


def format_trace(
    records: Sequence[QuantumRecord], *, max_quanta: int | None = None
) -> str:
    """Human-readable rendering of a decision trace."""
    lines: list[str] = []
    shown = records if max_quanta is None else records[:max_quanta]
    for record in shown:
        arrow = "->" if record.before != record.after else "=="
        lines.append(
            f"quantum {record.quantum:>4d}  [{record.phase}]  "
            f"{record.before} {arrow} {record.after}"
        )
        for app, big, small in record.objectives:
            lines.append(
                f"    app {app}: objective big={big:.6g} small={small:.6g}"
            )
        for cand in record.candidates:
            verdict = "ACCEPTED" if cand.accepted else "rejected"
            if cand.forced:
                verdict += " (forced)"
            if cand.kind == "mode":
                pair = f"mode app {cand.mover} -> {cand.mode}"
                detail = f"delta={cand.delta_total:+.6g}"
            elif cand.mover >= 0:
                pair = f"swap app {cand.mover} <-> app {cand.partner}"
                detail = (
                    f"delta={cand.delta_total:+.6g} "
                    f"(mover {cand.delta_mover:+.6g}, "
                    f"partner {cand.delta_partner:+.6g})"
                )
            else:
                pair = "reassign (whole-assignment search)"
                detail = f"delta={cand.delta_total:+.6g}"
            lines.append(
                f"    {pair}: {detail} threshold={cand.threshold:.6g} "
                f"-> {verdict}"
                + (f" [{cand.reason}]" if cand.reason else "")
            )
        if record.stale:
            lines.append(
                f"    stale={record.stale} "
                f"sampling_swaps={record.sampling_swaps}"
            )
        if record.modes and any(m != "none" for m in record.modes):
            lines.append(f"    modes={record.modes}")
        for seg in record.segments:
            tag = "sampling" if seg.is_sampling else "main"
            lines.append(
                f"    segment {tag}: fraction={seg.fraction:.4f} "
                f"assignment={seg.core_of}"
            )
    if max_quanta is not None and len(records) > max_quanta:
        lines.append(f"... {len(records) - max_quanta} more quanta "
                     f"(raise --max-quanta)")
    return "\n".join(lines)
