"""Aggregating span tracer: nested timing trees with bounded memory.

A span is opened with the module-level :func:`span` context manager::

    with span("simulate_window", core="big"):
        ...

When no tracer is installed (:data:`ACTIVE` is ``None``) ``span``
returns a shared no-op context manager -- the disabled cost is one
global load, one comparison, and an empty ``with`` block, which is what
the ``span_overhead`` section of ``repro bench`` measures and CI gates
below 3% on the OoO kernel path.

Unlike event tracers that record one entry per span occurrence, this
tracer *aggregates*: spans with the same name and attributes under the
same parent share a single :class:`SpanNode` accumulating ``count`` and
``total_seconds``.  A million-window simulation therefore produces a
tree with a handful of nodes, not a million records, and the tree
serialises to JSON for `repro trace --spans`.

``self_seconds`` (total minus the children's totals) is the number that
answers "where does wall-time actually go" -- see :func:`top_self_time`.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "ACTIVE",
    "SpanNode",
    "SpanTracer",
    "active",
    "collecting",
    "disable",
    "enable",
    "format_tree",
    "load_tree",
    "merge_trees",
    "span",
    "top_self_time",
]

AttrItems = tuple[tuple[str, str], ...]


def _attr_items(attrs: Mapping[str, Any]) -> AttrItems:
    return tuple(sorted((str(k), str(v)) for k, v in attrs.items()))


@dataclass
class SpanNode:
    """One aggregated span: all occurrences of (name, attrs) under the
    same parent path."""

    name: str
    attrs: AttrItems = ()
    count: int = 0
    total_seconds: float = 0.0
    children: dict[tuple[str, AttrItems], "SpanNode"] = field(
        default_factory=dict
    )

    @property
    def self_seconds(self) -> float:
        return self.total_seconds - sum(
            child.total_seconds for child in self.children.values()
        )

    @property
    def label(self) -> str:
        if not self.attrs:
            return self.name
        return self.name + "{" + ",".join(
            f"{k}={v}" for k, v in self.attrs
        ) + "}"

    def child(self, name: str, attrs: AttrItems) -> "SpanNode":
        key = (name, attrs)
        node = self.children.get(key)
        if node is None:
            node = SpanNode(name=name, attrs=attrs)
            self.children[key] = node
        return node

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "count": self.count,
            "total_seconds": self.total_seconds,
            "children": [
                child.to_dict()
                for _, child in sorted(self.children.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanNode":
        node = cls(
            name=str(data["name"]),
            attrs=_attr_items(data.get("attrs", {})),
            count=int(data.get("count", 0)),
            total_seconds=float(data.get("total_seconds", 0.0)),
        )
        for child_data in data.get("children", ()):
            child = cls.from_dict(child_data)
            node.children[(child.name, child.attrs)] = child
        return node


class SpanTracer:
    """Maintains the active span stack and the aggregated tree."""

    def __init__(self) -> None:
        self.root = SpanNode(name="root")
        self._stack: list[SpanNode] = [self.root]
        self._starts: list[float] = []

    def start(self, name: str, attrs: AttrItems) -> None:
        node = self._stack[-1].child(name, attrs)
        self._stack.append(node)
        self._starts.append(perf_counter())

    def end(self) -> None:
        elapsed = perf_counter() - self._starts.pop()
        node = self._stack.pop()
        node.count += 1
        node.total_seconds += elapsed

    def to_dict(self) -> dict[str, Any]:
        return self.root.to_dict()


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_attrs")

    def __init__(self, tracer: SpanTracer, name: str, attrs: AttrItems):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> None:
        self._tracer.start(self._name, self._attrs)

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.end()


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()

ACTIVE: SpanTracer | None = None


def span(name: str, **attrs: Any) -> Any:
    """Context manager timing a named span; no-op when tracing is off."""
    tracer = ACTIVE
    if tracer is None:
        return _NOOP
    return _SpanContext(tracer, name, _attr_items(attrs))


def active() -> SpanTracer | None:
    return ACTIVE


def enable(tracer: SpanTracer | None = None) -> SpanTracer:
    global ACTIVE
    ACTIVE = tracer if tracer is not None else SpanTracer()
    return ACTIVE


def disable() -> SpanTracer | None:
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    return previous


@contextmanager
def collecting(tracer: SpanTracer | None = None) -> Iterator[SpanTracer]:
    """Temporarily install a (fresh by default) tracer."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer if tracer is not None else SpanTracer()
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous


# ---------------------------------------------------------------------------
# Rendering and persistence
# ---------------------------------------------------------------------------


def format_tree(root: SpanNode, *, indent: int = 2) -> str:
    """ASCII rendering of a span tree, children sorted by total time."""
    lines: list[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        pad = " " * (indent * depth)
        lines.append(
            f"{pad}{node.label:<{max(44 - indent * depth, 8)}} "
            f"count={node.count:<8d} total={node.total_seconds * 1e3:10.3f}ms "
            f"self={node.self_seconds * 1e3:10.3f}ms"
        )
        for child in sorted(node.children.values(),
                            key=lambda c: -c.total_seconds):
            visit(child, depth + 1)

    top_level = sorted(root.children.values(),
                       key=lambda c: -c.total_seconds)
    for node in top_level:
        visit(node, 0)
    if not lines:
        lines.append("(empty span tree)")
    return "\n".join(lines)


def top_self_time(
    root: SpanNode, limit: int = 10
) -> list[tuple[str, int, float, float]]:
    """Top-N (label, count, total_seconds, self_seconds) across the whole
    tree, merging nodes with the same label regardless of position."""
    merged: dict[str, list[float]] = {}

    def visit(node: SpanNode) -> None:
        entry = merged.setdefault(node.label, [0, 0.0, 0.0])
        entry[0] += node.count
        entry[1] += node.total_seconds
        entry[2] += node.self_seconds
        for child in node.children.values():
            visit(child)

    for child in root.children.values():
        visit(child)
    ranked = sorted(merged.items(), key=lambda item: -item[1][2])
    return [
        (label, int(count), total, self_s)
        for label, (count, total, self_s) in ranked[:limit]
    ]


def merge_trees(roots: "Iterable[SpanNode | None]") -> SpanNode:
    """Fold span trees into one fleet-wide forest.

    Nodes with the same ``(name, attrs)`` under the same parent path
    merge: counts and totals add, children merge recursively.  The
    fold is commutative and associative (like metric snapshots), so a
    fleet's forest is independent of shard completion order.  ``None``
    entries are skipped so per-shard values pass straight through.
    """
    merged = SpanNode(name="root")

    def fold(into: SpanNode, node: SpanNode) -> None:
        into.count += node.count
        into.total_seconds += node.total_seconds
        for (name, attrs), child in node.children.items():
            fold(into.child(name, attrs), child)

    for root in roots:
        if root is None:
            continue
        for (name, attrs), child in root.children.items():
            fold(merged.child(name, attrs), child)
    return merged


def save_tree(root: SpanNode, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(root.to_dict(), handle, indent=2)
        handle.write("\n")


def load_tree(path: str) -> SpanNode:
    with open(path) as handle:
        return SpanNode.from_dict(json.load(handle))
