"""Crash flight recorder: a bounded ring of recent worker activity.

A :class:`FlightRecorder` keeps the last-N things a worker did -- the
campaign events it emitted, window-level notes from the kernel hot
paths, counter deltas since the recorder armed, and (at dump time) the
active span stack -- so that when a job fails, times out, or is
reconciled as an abandoned orphan, the runtime engine can write a
*postmortem bundle* under the ``ResultStore`` answering "what was this
job doing when it died".

Activation follows the :mod:`repro.obs.metrics` pattern: sites read the
module-level :data:`ACTIVE` and bail out on ``None``, so the dormant
cost is one global load and one comparison per site (gated by the
``span_overhead`` section of ``repro bench`` on both kernel paths).

Bundles live in ``<store>/postmortems/<key>.json`` -- a subdirectory,
so :meth:`ResultStore.digest` (which globs ``*.json`` non-recursively)
is untouched and store byte-identity contracts survive.  They are
rendered by ``repro postmortem``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing

__all__ = [
    "ACTIVE",
    "BUNDLE_SCHEMA_VERSION",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "POSTMORTEM_DIR",
    "disable",
    "dump_bundle",
    "enable",
    "find_bundles",
    "format_bundle",
    "load_bundle",
    "recording",
]

#: Ring capacity when the engine arms a recorder without an override.
DEFAULT_CAPACITY = 64

#: Subdirectory of the ResultStore holding postmortem bundles.
POSTMORTEM_DIR = "postmortems"

BUNDLE_SCHEMA_VERSION = 1


class FlightRecorder:
    """Bounded ring buffer of recent events and hot-path notes."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        fingerprint: Mapping[str, Any] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.fingerprint = dict(fingerprint or {})
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._dropped = 0
        self._baseline: dict[str, float] = {}

    # -- feeding ---------------------------------------------------------

    def record(self, entry: Mapping[str, Any]) -> None:
        """Append one entry (an event dict, or a note) to the ring."""
        if len(self._ring) == self.capacity:
            self._dropped += 1
        self._ring.append(dict(entry))

    def note(self, what: str, **attrs: Any) -> None:
        """Record a lightweight hot-path note (e.g. one kernel window)."""
        entry: dict[str, Any] = {"note": what, "timestamp": time.time()}
        entry.update(attrs)
        self.record(entry)

    # -- metric deltas ---------------------------------------------------

    def mark_metrics_baseline(self) -> None:
        """Remember current counter values; deltas are relative to this."""
        self._baseline = _counter_values(obs_metrics.ACTIVE)

    def metric_deltas(self) -> dict[str, float]:
        """Counter increments since the baseline (all counters if none)."""
        current = _counter_values(obs_metrics.ACTIVE)
        deltas = {}
        for key, value in current.items():
            delta = value - self._baseline.get(key, 0.0)
            if delta:
                deltas[key] = delta
        return deltas

    # -- dumping ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        tracer = obs_tracing.ACTIVE
        span_stack = (
            [node.label for node in tracer._stack[1:]]
            if tracer is not None
            else []
        )
        return {
            "capacity": self.capacity,
            "dropped": self._dropped,
            "events": list(self._ring),
            "metric_deltas": self.metric_deltas(),
            "span_stack": span_stack,
            "fingerprint": dict(self.fingerprint),
        }


def _counter_values(
    registry: "obs_metrics.MetricsRegistry | None",
) -> dict[str, float]:
    if registry is None:
        return {}
    values: dict[str, float] = {}
    for (name, labels), (kind, data) in registry.snapshot().series.items():
        if kind != "counter":
            continue
        shown = name
        if labels:
            shown += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
        values[shown] = float(data["value"])
    return values


# ---------------------------------------------------------------------------
# Module-level activation.  ``ACTIVE is None`` means the recorder is off
# and every instrumentation site short-circuits.
# ---------------------------------------------------------------------------

ACTIVE: FlightRecorder | None = None


def enable(recorder: FlightRecorder | None = None) -> FlightRecorder:
    global ACTIVE
    ACTIVE = recorder if recorder is not None else FlightRecorder()
    return ACTIVE


def disable() -> FlightRecorder | None:
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    return previous


@contextmanager
def recording(
    recorder: FlightRecorder | None = None,
) -> Iterator[FlightRecorder]:
    """Temporarily install a (fresh by default) recorder."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = recorder if recorder is not None else FlightRecorder()
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous


# ---------------------------------------------------------------------------
# Postmortem bundles
# ---------------------------------------------------------------------------


def dump_bundle(
    store_directory: str | Path,
    key: str,
    *,
    label: str = "",
    reason: str = "failed",
    error: str = "",
    trace: "obs_context.TraceContext | None" = None,
    recorder: FlightRecorder | None = None,
) -> Path:
    """Write one postmortem bundle; returns its path.

    ``recorder`` defaults to the ambient :data:`ACTIVE`; with neither,
    the bundle still records the failure facts with an empty ring.
    """
    if recorder is None:
        recorder = ACTIVE
    if trace is None:
        trace = obs_context.current()
    flight = (
        recorder.snapshot()
        if recorder is not None
        else FlightRecorder(1).snapshot()
    )
    bundle: dict[str, Any] = {
        "schema": BUNDLE_SCHEMA_VERSION,
        "key": key,
        "label": label,
        "reason": reason,
        "error": error,
        "trace": trace.to_dict() if trace is not None else None,
        "written_at": time.time(),
        "flight": flight,
    }
    directory = Path(store_directory) / POSTMORTEM_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{key}.json"
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w") as handle:
        json.dump(bundle, handle, indent=2, sort_keys=True)
        handle.write("\n")
    tmp.replace(path)
    return path


def load_bundle(path: str | Path) -> dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def find_bundles(store_directory: str | Path) -> list[Path]:
    """All bundle paths under a store, sorted by key."""
    directory = Path(store_directory) / POSTMORTEM_DIR
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def format_bundle(bundle: Mapping[str, Any]) -> str:
    """Human-readable rendering for ``repro postmortem``."""
    lines = [
        f"postmortem {bundle.get('key', '?')}",
        f"  label:  {bundle.get('label') or '-'}",
        f"  reason: {bundle.get('reason', '?')}",
    ]
    error = bundle.get("error")
    if error:
        lines.append(f"  error:  {error}")
    trace = bundle.get("trace")
    if trace:
        parts = [f"campaign={trace.get('campaign', '?')}"]
        if trace.get("shard") is not None:
            parts.append(f"shard={trace['shard']}")
        if trace.get("run_key"):
            parts.append(f"run_key={trace['run_key'][:12]}")
        if trace.get("parent"):
            parts.append(f"parent={trace['parent']}")
        lines.append("  trace:  " + " ".join(parts))
    flight = bundle.get("flight", {})
    fingerprint = flight.get("fingerprint") or {}
    if fingerprint:
        shown = ", ".join(f"{k}={v}" for k, v in sorted(fingerprint.items()))
        lines.append(f"  config: {shown}")
    stack = flight.get("span_stack") or []
    lines.append(
        "  active spans: " + (" > ".join(stack) if stack else "(none)")
    )
    deltas = flight.get("metric_deltas") or {}
    if deltas:
        lines.append("  metric deltas:")
        for name in sorted(deltas):
            lines.append(f"    {name:<40s} +{deltas[name]:g}")
    events = flight.get("events") or []
    dropped = int(flight.get("dropped", 0))
    header = f"  last {len(events)} entries"
    if dropped:
        header += f" ({dropped} older dropped)"
    lines.append(header + ":")
    for entry in events:
        lines.append("    " + _format_entry(entry))
    return "\n".join(lines)


#: Attribute values longer than this are elided in the text rendering;
#: the JSON bundle itself keeps full fidelity.
_ATTR_LIMIT = 60


def _clip(value: Any) -> str:
    text = str(value)
    if len(text) <= _ATTR_LIMIT:
        return text
    return text[: _ATTR_LIMIT - 12] + f"...<{len(text)} chars>"


def _format_entry(entry: Mapping[str, Any]) -> str:
    stamp = entry.get("timestamp")
    prefix = f"[{stamp:.3f}] " if isinstance(stamp, (int, float)) else ""
    if "note" in entry:
        attrs = ", ".join(
            f"{k}={_clip(v)}"
            for k, v in sorted(entry.items())
            if k not in ("note", "timestamp")
        )
        return f"{prefix}note {entry['note']}" + (
            f" ({attrs})" if attrs else ""
        )
    kind = entry.get("event", "?")
    attrs = ", ".join(
        f"{k}={_clip(v)}"
        for k, v in sorted(entry.items())
        if k not in ("event", "timestamp", "trace")
    )
    return f"{prefix}{kind}" + (f" ({attrs})" if attrs else "")
