"""OpenMetrics text exposition of metrics and fleet status.

Renders a :class:`~repro.obs.metrics.RegistrySnapshot` (plus an
optional fleet-status dict from
:meth:`~repro.runtime.shard.FleetStatus.snapshot`) into the
OpenMetrics text format, so standard scrapers can consume the same
totals the repo's own tooling prints:

* counters  -> ``<name>_total``
* gauges    -> ``<name>``
* histograms/timers -> cumulative ``<name>_bucket{le="..."}`` plus
  ``<name>_sum`` / ``<name>_count``

Rendering is **deterministic**: series sort by sanitized name then
labels, floats format with ``repr``-stable ``%g``-style formatting, and
the exposition ends with ``# EOF``.  That determinism is what lets CI
compare `repro stats --openmetrics` output byte-for-byte between a
merged fleet log and its per-shard logs.

A minimal scrape parser (:func:`parse_exposition`) ships alongside the
renderer for the round-trip tests and `repro top`; it handles exactly
the subset the renderer emits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.obs.metrics import BUCKET_BOUNDARIES, RegistrySnapshot

__all__ = [
    "Exposition",
    "counter_totals",
    "parse_exposition",
    "render_fleet",
    "render_snapshot",
    "sanitize_name",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_name(name: str) -> str:
    """Map a dotted metric name onto the OpenMetrics charset."""
    out = _BAD_CHARS.sub("_", name)
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels: Mapping[str, Any] | None, **extra: str) -> str:
    items = [(str(k), str(v)) for k, v in (labels or {}).items()]
    items += [(k, v) for k, v in extra.items()]
    if not items:
        return ""
    items.sort()
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def render_snapshot(
    snapshot: RegistrySnapshot | Mapping[str, Any] | None,
    *,
    fleet: Mapping[str, Any] | None = None,
    prefix: str = "repro_",
    eof: bool = True,
) -> str:
    """Render a snapshot (and optional fleet status) as OpenMetrics."""
    if snapshot is not None and not isinstance(snapshot, RegistrySnapshot):
        snapshot = RegistrySnapshot.from_dict(snapshot)
    lines: list[str] = []
    families: dict[str, list[tuple[tuple, str, dict]]] = {}
    if snapshot is not None:
        for (name, labels), (kind, data) in snapshot.series.items():
            family = prefix + sanitize_name(name)
            families.setdefault(family, []).append((labels, kind, data))
    for family in sorted(families):
        series = sorted(families[family], key=lambda item: item[0])
        kind = series[0][1]
        om_type = {
            "counter": "counter",
            "gauge": "gauge",
            "histogram": "histogram",
            "timer": "histogram",
        }.get(kind, "unknown")
        lines.append(f"# TYPE {family} {om_type}")
        for labels, kind, data in series:
            label_map = dict(labels)
            if kind == "counter":
                lines.append(
                    f"{family}_total{_labels_text(label_map)} "
                    f"{_format_value(float(data['value']))}"
                )
            elif kind == "gauge":
                lines.append(
                    f"{family}{_labels_text(label_map)} "
                    f"{_format_value(float(data['value']))}"
                )
            else:
                cumulative = 0
                buckets = list(data.get("buckets", ()))
                for i, count in enumerate(buckets):
                    cumulative += int(count)
                    le = (
                        _format_value(BUCKET_BOUNDARIES[i])
                        if i < len(BUCKET_BOUNDARIES)
                        else "+Inf"
                    )
                    lines.append(
                        f"{family}_bucket"
                        f"{_labels_text(label_map, le=le)} {cumulative}"
                    )
                lines.append(
                    f"{family}_sum{_labels_text(label_map)} "
                    f"{_format_value(float(data['total']))}"
                )
                lines.append(
                    f"{family}_count{_labels_text(label_map)} "
                    f"{int(data['count'])}"
                )
    if fleet is not None:
        lines.extend(render_fleet(fleet, prefix=prefix).splitlines())
    if eof:
        lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_fleet(fleet: Mapping[str, Any], *, prefix: str = "repro_") -> str:
    """Gauges for one `FleetStatus.snapshot()` dict (no ``# EOF``)."""
    lines: list[str] = []
    scalar_names = (
        "total",
        "done",
        "failed",
        "cached",
        "queued",
        "elapsed_seconds",
        "runs_per_s",
        "eta_seconds",
    )
    for name in scalar_names:
        value = fleet.get(name)
        if value is None:
            continue
        family = f"{prefix}fleet_{name}"
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(float(value))}")
    shards = fleet.get("shards") or ()
    shard_fields = ("total", "done", "failed", "cached", "finished")
    present = [
        name
        for name in shard_fields
        if any(name in shard for shard in shards)
    ]
    for name in present:
        family = f"{prefix}fleet_shard_{name}"
        lines.append(f"# TYPE {family} gauge")
        for index, shard in enumerate(shards):
            if name not in shard:
                continue
            value = shard[name]
            labels = _labels_text(None, shard=str(shard.get("shard", index)))
            lines.append(f"{family}{labels} {_format_value(float(value))}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Minimal scrape parser (round-trip tests, `repro top`)
# ---------------------------------------------------------------------------

LabelItems = tuple[tuple[str, str], ...]


@dataclass
class Exposition:
    """Parsed form of one OpenMetrics text exposition."""

    families: dict[str, str] = field(default_factory=dict)
    samples: dict[tuple[str, LabelItems], float] = field(
        default_factory=dict
    )
    saw_eof: bool = False

    def value(self, name: str, **labels: Any) -> float | None:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.samples.get(key)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_exposition(text: str) -> Exposition:
    """Parse the subset of OpenMetrics that :func:`render_snapshot`
    emits; raises ``ValueError`` on lines it cannot understand."""
    out = Exposition()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "# EOF":
            out.saw_eof = True
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            out.families[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT and other comments
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable OpenMetrics line: {raw!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(
            sorted(
                (key, value.replace('\\"', '"')
                 .replace("\\n", "\n").replace("\\\\", "\\"))
                for key, value in _LABEL.findall(labels_text)
            )
        )
        key = (match.group("name"), labels)
        out.samples[key] = _parse_value(match.group("value"))
    return out


def counter_totals(
    exposition: Exposition, *, prefix: str = "repro_"
) -> dict[tuple[str, LabelItems], float]:
    """All ``_total`` samples of counter families, prefix stripped."""
    totals: dict[tuple[str, LabelItems], float] = {}
    counter_families = {
        name for name, kind in exposition.families.items()
        if kind == "counter"
    }
    for (name, labels), value in exposition.samples.items():
        if not name.endswith("_total"):
            continue
        family = name[: -len("_total")]
        if family not in counter_families:
            continue
        if family.startswith(prefix):
            family = family[len(prefix):]
        totals[(family, labels)] = value
    return totals
