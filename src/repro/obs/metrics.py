"""Process-local metrics registry: counters, gauges, histograms, timers.

Design goals, in priority order:

1. **Near-zero overhead when disabled.**  Instrumentation sites read the
   module-level :data:`ACTIVE` registry and bail out on ``None``; that is
   one global load and one comparison per site.  Nothing is allocated
   and no string formatting happens unless a registry is installed.
2. **Mergeable snapshots.**  A registry serialises to a plain-JSON
   snapshot, and snapshots merge commutatively (counters add, histogram
   buckets add element-wise, gauges take the max), so per-worker metrics
   collected inside ``ProcessPoolExecutor`` jobs can be shipped back to
   the parent and folded into one campaign-wide view in any completion
   order.  Serial and parallel campaigns therefore merge to *identical*
   totals (pinned by ``tests/test_obs_merge.py``).
3. **Labeled series.**  A series is identified by its name plus a small
   set of key/value labels (``counter("sched.swaps", outcome="accepted")``).
   Labels are expected to be low-cardinality (core type, scheduler name,
   cache level) -- every distinct label set is a distinct series.

The registry is *process-local and single-threaded* by design: the
simulator is CPU-bound pure Python/numpy and parallelism happens at the
process level, so no locks are needed.
"""

from __future__ import annotations

import csv
import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "ACTIVE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistrySnapshot",
    "Timer",
    "active",
    "collecting",
    "disable",
    "enable",
    "write_csv",
]

# Exponential bucket boundaries shared by every histogram/timer: powers
# of four from 4^-10 (~1 microsecond when observing seconds) to 4^10
# (~1e6).  21 boundaries -> 22 buckets; bucket i counts observations in
# (boundary[i-1], boundary[i]].
BUCKET_BOUNDARIES: tuple[float, ...] = tuple(4.0 ** i for i in range(-10, 11))

LabelItems = tuple[tuple[str, str], ...]
SeriesKey = tuple[str, LabelItems]


def _label_items(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing sum."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_data(self) -> dict[str, Any]:
        return {"value": self.value}

    def merge_data(self, data: Mapping[str, Any]) -> None:
        self.value += float(data["value"])


class Gauge:
    """Last-set value.  Merges by taking the maximum so the result is
    independent of worker completion order."""

    kind = "gauge"
    __slots__ = ("value", "set_count")

    def __init__(self) -> None:
        self.value = 0.0
        self.set_count = 0

    def set(self, value: float) -> None:
        self.value = value
        self.set_count += 1

    def to_data(self) -> dict[str, Any]:
        return {"value": self.value, "set_count": self.set_count}

    def merge_data(self, data: Mapping[str, Any]) -> None:
        other = float(data["value"])
        count = int(data.get("set_count", 1))
        if count > 0:
            self.value = other if self.set_count == 0 else max(self.value, other)
            self.set_count += count


class Histogram:
    """Count/sum/min/max plus fixed exponential buckets."""

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * (len(BUCKET_BOUNDARIES) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        lo, hi = 0, len(BUCKET_BOUNDARIES)
        while lo < hi:  # first boundary >= value
            mid = (lo + hi) // 2
            if BUCKET_BOUNDARIES[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.buckets[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_data(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": list(self.buckets),
        }

    def merge_data(self, data: Mapping[str, Any]) -> None:
        count = int(data["count"])
        if count == 0:
            return
        self.count += count
        self.total += float(data["total"])
        self.min = min(self.min, float(data["min"]))
        self.max = max(self.max, float(data["max"]))
        for i, n in enumerate(data["buckets"]):
            self.buckets[i] += int(n)


class Timer(Histogram):
    """A histogram of seconds usable as a context manager::

        with registry.timer("runtime.job_seconds"):
            run_workload(...)
    """

    kind = "timer"
    __slots__ = ("_start",)

    def __enter__(self) -> "Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.observe(perf_counter() - self._start)


_SERIES_TYPES = {cls.kind: cls for cls in (Counter, Gauge, Histogram, Timer)}


@dataclass
class RegistrySnapshot:
    """JSON-able, mergeable view of a registry at one point in time.

    ``series`` maps ``(name, label_items)`` to ``(kind, data)`` where
    ``data`` is the plain-dict payload of the series type.
    """

    series: dict[SeriesKey, tuple[str, dict[str, Any]]] = field(
        default_factory=dict
    )

    def to_dict(self) -> dict[str, Any]:
        return {
            "series": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "kind": kind,
                    "data": data,
                }
                for (name, labels), (kind, data) in sorted(self.series.items())
            ]
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegistrySnapshot":
        series: dict[SeriesKey, tuple[str, dict[str, Any]]] = {}
        for entry in data.get("series", ()):
            key = (str(entry["name"]), _label_items(entry.get("labels", {})))
            series[key] = (str(entry["kind"]), dict(entry["data"]))
        return cls(series=series)

    def rows(self) -> list[tuple[str, str, str, str, str]]:
        """(series, kind, count, total, mean-or-value) display rows."""
        out = []
        for (name, labels), (kind, data) in sorted(self.series.items()):
            shown = name
            if labels:
                shown += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            if kind in ("histogram", "timer"):
                count = int(data["count"])
                total = float(data["total"])
                mean = total / count if count else 0.0
                out.append((shown, kind, str(count), f"{total:.6g}",
                            f"{mean:.6g}"))
            elif kind == "gauge":
                out.append((shown, kind, str(int(data.get("set_count", 1))),
                            f"{float(data['value']):.6g}",
                            f"{float(data['value']):.6g}"))
            else:
                out.append((shown, kind, "", f"{float(data['value']):.6g}",
                            ""))
        return out


class MetricsRegistry:
    """Holds labeled series; hands out live series objects on demand."""

    def __init__(self) -> None:
        self._series: dict[SeriesKey, Any] = {}

    def _get(self, cls: type, name: str, labels: Mapping[str, Any]) -> Any:
        key = (name, _label_items(labels))
        series = self._series.get(key)
        if series is None:
            series = cls()
            self._series[key] = series
        elif not isinstance(series, cls) and not (
            cls is Histogram and isinstance(series, Timer)
        ):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(series).kind}, not {cls.kind}"
            )
        return series

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def timer(self, name: str, **labels: Any) -> Timer:
        return self._get(Timer, name, labels)

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self) -> RegistrySnapshot:
        return RegistrySnapshot(
            series={
                key: (series.kind, series.to_data())
                for key, series in self._series.items()
            }
        )

    def merge(self, snapshot: RegistrySnapshot | Mapping[str, Any]) -> None:
        """Fold a snapshot (or its ``to_dict`` form) into this registry."""
        if not isinstance(snapshot, RegistrySnapshot):
            snapshot = RegistrySnapshot.from_dict(snapshot)
        for (name, labels), (kind, data) in snapshot.series.items():
            cls = _SERIES_TYPES.get(kind)
            if cls is None:  # forward compat: skip unknown series kinds
                continue
            series = self._get(cls, name, dict(labels))
            series.merge_data(data)


def merge_snapshots(
    snapshots: "Iterable[RegistrySnapshot | Mapping[str, Any] | None]",
) -> RegistrySnapshot:
    """Fold snapshots (or their ``to_dict`` forms) into one.

    The merge is commutative and associative -- counters add,
    histograms add bucket-wise, gauges keep their extrema -- so fleet
    totals folded from per-shard snapshots are independent of shard
    count and completion order.  ``None`` entries are skipped, letting
    callers pass per-shard values straight through.
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        if snapshot is not None:
            registry.merge(snapshot)
    return registry.snapshot()


# ---------------------------------------------------------------------------
# Module-level activation.  ``ACTIVE is None`` means metrics are off and
# every instrumentation site short-circuits.
# ---------------------------------------------------------------------------

ACTIVE: MetricsRegistry | None = None


def active() -> MetricsRegistry | None:
    return ACTIVE


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) the process-wide registry."""
    global ACTIVE
    ACTIVE = registry if registry is not None else MetricsRegistry()
    return ACTIVE


def disable() -> MetricsRegistry | None:
    """Remove the process-wide registry; returns the one removed."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    return previous


@contextmanager
def collecting(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Temporarily install a (fresh by default) registry::

        with metrics.collecting() as reg:
            run_workload(...)
        snapshot = reg.snapshot()
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = registry if registry is not None else MetricsRegistry()
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous


def write_csv(snapshot: RegistrySnapshot, path: str) -> None:
    """Flat CSV export: one row per series field.

    Histogram/timer buckets get one row per non-empty bucket
    (``bucket_le_<boundary>`` with the bucket's count, ``bucket_le_inf``
    for the overflow bucket) so spreadsheet tools can plot
    distributions directly instead of parsing a joined blob.
    """
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["name", "labels", "kind", "field", "value"])
        for (name, labels), (kind, data) in sorted(snapshot.series.items()):
            label_text = ";".join(f"{k}={v}" for k, v in labels)
            for field_name, value in data.items():
                if field_name == "buckets":
                    continue
                writer.writerow([name, label_text, kind, field_name, value])
            for i, count in enumerate(data.get("buckets", ())):
                if not count:
                    continue
                upper = (
                    f"bucket_le_{BUCKET_BOUNDARIES[i]:g}"
                    if i < len(BUCKET_BOUNDARIES)
                    else "bucket_le_inf"
                )
                writer.writerow([name, label_text, kind, upper, count])
