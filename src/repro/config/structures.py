"""Hardware structure geometry used for ACE-bit accounting.

The sizes and bits-per-entry values reproduce Table 2 of the paper
(which in turn takes the bit counts from Nair et al., ISCA 2012).  A
structure is anything in the core that can hold architecturally
relevant (ACE) state: the reorder buffer, issue queue, load queue,
store queue, physical register file, functional units, and -- for the
in-order core -- the pipeline-stage latches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class StructureKind(enum.Enum):
    """The classes of ACE-relevant hardware structures we track."""

    ROB = "rob"
    ISSUE_QUEUE = "issue_queue"
    LOAD_QUEUE = "load_queue"
    STORE_QUEUE = "store_queue"
    REGISTER_FILE = "register_file"
    FUNCTIONAL_UNITS = "functional_units"
    PIPELINE_LATCHES = "pipeline_latches"


@dataclass(frozen=True)
class StructureConfig:
    """Geometry of a single ACE-relevant structure.

    Attributes:
        kind: which structure this is.
        entries: number of entries (ROB slots, queue slots, registers,
            functional units, or pipeline-latch slots).
        bits_per_entry: bits of state per entry counted as potentially
            ACE when the entry holds a correct-path, non-NOP
            instruction.
    """

    kind: StructureKind
    entries: int
    bits_per_entry: int

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError(f"{self.kind}: entries must be positive")
        if self.bits_per_entry <= 0:
            raise ValueError(f"{self.kind}: bits_per_entry must be positive")

    @property
    def total_bits(self) -> int:
        """Total state bits in the structure (the AVF denominator share)."""
        return self.entries * self.bits_per_entry


@dataclass(frozen=True)
class RegisterFileConfig:
    """Physical register file geometry (split integer / floating point).

    The paper counts every architectural register as ACE all of the
    time and physical destination registers as ACE from instruction
    finish until commit.
    """

    int_registers: int
    int_bits: int
    fp_registers: int
    fp_bits: int
    arch_int_registers: int = 16
    arch_fp_registers: int = 16

    def __post_init__(self) -> None:
        if self.int_registers < self.arch_int_registers:
            raise ValueError("fewer physical than architectural int registers")
        if self.fp_registers < self.arch_fp_registers:
            raise ValueError("fewer physical than architectural fp registers")

    @property
    def total_bits(self) -> int:
        return self.int_registers * self.int_bits + self.fp_registers * self.fp_bits

    @property
    def arch_bits(self) -> int:
        """Bits of always-ACE architectural register state."""
        return (
            self.arch_int_registers * self.int_bits
            + self.arch_fp_registers * self.fp_bits
        )
