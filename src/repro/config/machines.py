"""Heterogeneous multicore machine configurations.

A :class:`MachineConfig` bundles the core mix (how many big and small
cores), the shared memory hierarchy parameters, and the scheduler
timing parameters (scheduler quantum, sampling quantum, migration
overhead) from Sections 4 and 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config.cores import CoreConfig, big_core_config, small_core_config

#: Core-type labels, used throughout the scheduler code.
BIG = "big"
SMALL = "small"


@dataclass(frozen=True)
class CacheLevelConfig:
    """Size/associativity/latency of one cache level (Table 2)."""

    size_bytes: int
    associativity: int
    latency_cycles: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError("cache size must be a whole number of sets")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class MemoryConfig:
    """Shared LLC and DRAM parameters (Table 2)."""

    l1i: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(32 * 1024, 4, 2)
    )
    l1d: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(32 * 1024, 8, 4)
    )
    l2: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(256 * 1024, 8, 8)
    )
    l3: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(8 * 1024 * 1024, 16, 30)
    )
    dram_latency_ns: float = 45.0
    dram_bandwidth_gbps: float = 25.6

    def dram_latency_cycles(self, frequency_ghz: float) -> float:
        """DRAM access latency expressed in core cycles."""
        return self.dram_latency_ns * frequency_ghz


@dataclass(frozen=True)
class MachineConfig:
    """A heterogeneous multicore plus its scheduling parameters.

    Attributes:
        big_cores / small_cores: core counts of each type.
        big / small: per-type core configurations.
        memory: shared cache and DRAM parameters.
        quantum_seconds: scheduler quantum (1 ms default).
        sampling_quantum_seconds: sampling quantum (0.1 ms default).
        sampling_period_quanta: sampling staleness threshold -- a
            sampling phase is triggered once an application has run on
            the same core type for this many consecutive quanta.
        migration_overhead_seconds: architectural-state migration cost
            per application migration (20 us, after big.LITTLE).
    """

    big_cores: int
    small_cores: int
    big: CoreConfig = field(default_factory=big_core_config)
    small: CoreConfig = field(default_factory=small_core_config)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    quantum_seconds: float = 1e-3
    sampling_quantum_seconds: float = 1e-4
    sampling_period_quanta: int = 10
    migration_overhead_seconds: float = 20e-6

    def __post_init__(self) -> None:
        if self.big_cores < 0 or self.small_cores < 0:
            raise ValueError("core counts cannot be negative")
        if self.big_cores + self.small_cores == 0:
            raise ValueError("machine needs at least one core")
        if not 0 < self.sampling_quantum_seconds <= self.quantum_seconds:
            raise ValueError("sampling quantum must be in (0, quantum]")
        if self.sampling_period_quanta < 1:
            raise ValueError("sampling period must be at least one quantum")

    @property
    def num_cores(self) -> int:
        return self.big_cores + self.small_cores

    @property
    def name(self) -> str:
        """Topology name in the paper's notation, e.g. ``2B2S``."""
        return f"{self.big_cores}B{self.small_cores}S"

    def core_type(self, core_id: int) -> str:
        """Core type (``"big"`` or ``"small"``) for a core index.

        Cores ``0 .. big_cores-1`` are big; the rest are small.
        """
        if not 0 <= core_id < self.num_cores:
            raise IndexError(f"core id {core_id} out of range")
        return BIG if core_id < self.big_cores else SMALL

    def core_config(self, core_id: int) -> CoreConfig:
        return self.big if self.core_type(core_id) == BIG else self.small

    def core_config_for_type(self, core_type: str) -> CoreConfig:
        if core_type == BIG:
            return self.big
        if core_type == SMALL:
            return self.small
        raise ValueError(f"unknown core type {core_type!r}")

    def quantum_cycles(self, core_type: str) -> int:
        """Scheduler-quantum length in cycles of the given core type."""
        config = self.core_config_for_type(core_type)
        return int(round(self.quantum_seconds * config.frequency_hz))

    def sampling_quantum_cycles(self, core_type: str) -> int:
        config = self.core_config_for_type(core_type)
        return int(round(self.sampling_quantum_seconds * config.frequency_hz))

    def with_small_frequency(self, frequency_ghz: float) -> "MachineConfig":
        """A copy with the small cores clocked at a different frequency."""
        return replace(self, small=self.small.with_frequency(frequency_ghz))

    def with_sampling(
        self, period_quanta: int, sampling_quantum_seconds: float
    ) -> "MachineConfig":
        """A copy with different sampling parameters (Figure 11 sweep)."""
        return replace(
            self,
            sampling_period_quanta=period_quanta,
            sampling_quantum_seconds=sampling_quantum_seconds,
        )


def machine_1b1s() -> MachineConfig:
    return MachineConfig(big_cores=1, small_cores=1)


def machine_2b2s() -> MachineConfig:
    return MachineConfig(big_cores=2, small_cores=2)


def machine_1b3s() -> MachineConfig:
    return MachineConfig(big_cores=1, small_cores=3)


def machine_3b1s() -> MachineConfig:
    return MachineConfig(big_cores=3, small_cores=1)


def machine_4b4s() -> MachineConfig:
    return MachineConfig(big_cores=4, small_cores=4)


#: All machine topologies evaluated in the paper, by name.
STANDARD_MACHINES = {
    "1B1S": machine_1b1s,
    "2B2S": machine_2b2s,
    "1B3S": machine_1b3s,
    "3B1S": machine_3b1s,
    "4B4S": machine_4b4s,
}
