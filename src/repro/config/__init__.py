"""Machine configuration: structures, core types, and HCMP topologies."""

from repro.config.cores import (
    CoreConfig,
    FunctionalUnitPool,
    big_core_config,
    small_core_config,
)
from repro.config.machines import (
    BIG,
    SMALL,
    STANDARD_MACHINES,
    CacheLevelConfig,
    MachineConfig,
    MemoryConfig,
    machine_1b1s,
    machine_1b3s,
    machine_2b2s,
    machine_3b1s,
    machine_4b4s,
)
from repro.config.structures import (
    RegisterFileConfig,
    StructureConfig,
    StructureKind,
)

__all__ = [
    "BIG",
    "SMALL",
    "STANDARD_MACHINES",
    "CacheLevelConfig",
    "CoreConfig",
    "FunctionalUnitPool",
    "MachineConfig",
    "MemoryConfig",
    "RegisterFileConfig",
    "StructureConfig",
    "StructureKind",
    "big_core_config",
    "machine_1b1s",
    "machine_1b3s",
    "machine_2b2s",
    "machine_3b1s",
    "machine_4b4s",
    "small_core_config",
]
