"""Core-type configurations (Table 2 of the paper).

Two core types make up the heterogeneous multicore: a big 4-wide
out-of-order core and a small 2-wide in-order core.  Both run at
2.66 GHz by default; the small core can be clocked down (Section 6.4
evaluates 1.33 GHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config.structures import (
    RegisterFileConfig,
    StructureConfig,
    StructureKind,
)
from repro.isa.instruction import InstructionClass


@dataclass(frozen=True)
class FunctionalUnitPool:
    """A pool of identical functional units.

    Attributes:
        instruction_class: the class served by this pool.
        count: number of units.
        latency: execution latency in cycles.
        bits: operand bits held while executing (ACE accounting).
        pipelined: whether a unit accepts a new operation every cycle
            (adders and multipliers) or blocks for its full latency
            (dividers).
    """

    instruction_class: InstructionClass
    count: int
    latency: int
    bits: int
    pipelined: bool = True

    @property
    def throughput(self) -> float:
        """Operations the pool can start per cycle."""
        return self.count if self.pipelined else self.count / self.latency

    @property
    def max_in_flight(self) -> int:
        """Most operations simultaneously holding state in the pool."""
        return self.count * self.latency if self.pipelined else self.count


def _big_core_fus() -> tuple[FunctionalUnitPool, ...]:
    return (
        FunctionalUnitPool(InstructionClass.INT_ALU, 3, 1, 64),
        FunctionalUnitPool(InstructionClass.INT_MUL, 1, 3, 64),
        FunctionalUnitPool(InstructionClass.INT_DIV, 1, 18, 64, pipelined=False),
        FunctionalUnitPool(InstructionClass.FP_ADD, 1, 3, 128),
        FunctionalUnitPool(InstructionClass.FP_MUL, 1, 5, 128),
        FunctionalUnitPool(InstructionClass.FP_DIV, 1, 6, 128, pipelined=False),
    )


def _small_core_fus() -> tuple[FunctionalUnitPool, ...]:
    return (
        FunctionalUnitPool(InstructionClass.INT_ALU, 2, 1, 64),
        FunctionalUnitPool(InstructionClass.INT_MUL, 1, 3, 64),
        FunctionalUnitPool(InstructionClass.INT_DIV, 1, 18, 64, pipelined=False),
        FunctionalUnitPool(InstructionClass.FP_ADD, 1, 3, 128),
        FunctionalUnitPool(InstructionClass.FP_MUL, 1, 5, 128),
        FunctionalUnitPool(InstructionClass.FP_DIV, 1, 6, 128, pipelined=False),
    )


@dataclass(frozen=True)
class CoreConfig:
    """Configuration of one core type.

    The fields mirror Table 2.  ``rob``, ``load_queue`` and the
    register file are ``None`` for the in-order core, which instead
    carries ``pipeline_latches`` (5 stages x 2 instructions x 76 bits).
    """

    name: str
    out_of_order: bool
    frequency_ghz: float
    width: int
    frontend_depth: int
    rob: StructureConfig | None
    issue_queue: StructureConfig
    load_queue: StructureConfig | None
    store_queue: StructureConfig
    register_file: RegisterFileConfig
    pipeline_latches: StructureConfig | None
    functional_units: tuple[FunctionalUnitPool, ...]

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.width <= 0:
            raise ValueError("pipeline width must be positive")
        if self.out_of_order and self.rob is None:
            raise ValueError("out-of-order core requires a ROB")
        if not self.out_of_order and self.pipeline_latches is None:
            raise ValueError("in-order core requires pipeline latches")

    @property
    def frequency_hz(self) -> float:
        return self.frequency_ghz * 1e9

    @property
    def fu_total_bits(self) -> int:
        return sum(pool.count * pool.bits for pool in self.functional_units)

    def fu_pool(self, cls: InstructionClass) -> FunctionalUnitPool:
        """The functional-unit pool serving an instruction class.

        Loads, stores, branches and NOPs execute on the integer ALUs.
        """
        for pool in self.functional_units:
            if pool.instruction_class == cls:
                return pool
        return self.fu_pool(InstructionClass.INT_ALU)

    def tracked_structures(self) -> dict[StructureKind, StructureConfig]:
        """All occupancy-tracked structures present in this core type."""
        structures: dict[StructureKind, StructureConfig] = {}
        for struct in (
            self.rob,
            self.issue_queue,
            self.load_queue,
            self.store_queue,
            self.pipeline_latches,
        ):
            if struct is not None:
                structures[struct.kind] = struct
        return structures

    @property
    def total_ace_capacity_bits(self) -> int:
        """Total bits across every ACE-relevant structure.

        This is the denominator of the core-level AVF.
        """
        bits = sum(s.total_bits for s in self.tracked_structures().values())
        bits += self.register_file.total_bits
        bits += self.fu_total_bits
        return bits

    def with_frequency(self, frequency_ghz: float) -> "CoreConfig":
        """A copy of this configuration at a different clock frequency."""
        return replace(self, frequency_ghz=frequency_ghz)


def big_core_config(frequency_ghz: float = 2.66) -> CoreConfig:
    """The big out-of-order core of Table 2."""
    return CoreConfig(
        name="big",
        out_of_order=True,
        frequency_ghz=frequency_ghz,
        width=4,
        frontend_depth=8,
        rob=StructureConfig(StructureKind.ROB, 128, 76),
        issue_queue=StructureConfig(StructureKind.ISSUE_QUEUE, 64, 32),
        load_queue=StructureConfig(StructureKind.LOAD_QUEUE, 64, 80),
        store_queue=StructureConfig(StructureKind.STORE_QUEUE, 64, 144),
        register_file=RegisterFileConfig(
            int_registers=120, int_bits=64, fp_registers=96, fp_bits=128
        ),
        pipeline_latches=None,
        functional_units=_big_core_fus(),
    )


def small_core_config(frequency_ghz: float = 2.66) -> CoreConfig:
    """The small in-order core of Table 2."""
    return CoreConfig(
        name="small",
        out_of_order=False,
        frequency_ghz=frequency_ghz,
        width=2,
        frontend_depth=5,
        rob=None,
        issue_queue=StructureConfig(StructureKind.ISSUE_QUEUE, 4, 32),
        load_queue=None,
        store_queue=StructureConfig(StructureKind.STORE_QUEUE, 10, 144),
        register_file=RegisterFileConfig(
            int_registers=16,
            int_bits=64,
            fp_registers=16,
            fp_bits=128,
            arch_int_registers=16,
            arch_fp_registers=16,
        ),
        pipeline_latches=StructureConfig(StructureKind.PIPELINE_LATCHES, 10, 76),
        functional_units=_small_core_fus(),
    )
