"""Trace-driven in-order core model.

An O(instructions) scoreboard model of the small core of Table 2: a
2-wide, 5-stage stall-on-use pipeline with a tiny issue queue, a
store queue, per-class functional units, and real cache-hierarchy
latencies.  Misses are not overlapped (MLP ~ 1): a consumer of a
missing load stalls the whole pipeline.

ACE accounting follows the paper's in-order counter (Section 4.2):
each instruction's fetch-to-writeback residency times the
pipeline-latch width, plus functional-unit occupancy, plus issue/store
queue residency; NOPs are non-ACE.
"""

from __future__ import annotations

from repro.cores.base import (
    ARCH_REG_LIVE_FRACTION,
    MemoryEnvironment,
    QuantumResult,
)
from repro.cores.tracebase import TraceApplication, TraceDrivenModel

#: 10-bit fetch-time counters clip residency here (Section 4.2).
TIMESTAMP_CLIP = 1023

#: Live architectural-register fraction (shared model constant).
_ARCH_REG_LIVE_FRACTION = ARCH_REG_LIVE_FRACTION


class InOrderCoreModel(TraceDrivenModel):
    """Trace-driven model of the small in-order core."""

    def run_cycles(
        self,
        app: TraceApplication,
        start_instruction: int,
        cycles: float,
        env: MemoryEnvironment,
    ) -> QuantumResult:
        """Execute one cycle budget of the in-order pipeline.

        Delegates to the vectorized kernel
        (:func:`repro.kernels.window.inorder_run_cycles`); the
        pre-kernel straight-line implementation is preserved as
        :func:`repro.kernels.reference.reference_inorder_run` and the
        two are cross-checked by the differential fuzzer.  The
        kernel's vectorized ACE accounting reassociates the residency
        sums, so accounting totals can differ from the reference at
        floating-point rounding level (~1e-15 relative).
        """
        from repro.kernels.window import inorder_run_cycles
        from repro.obs import flight as obs_flight
        from repro.obs.tracing import span

        recorder = obs_flight.ACTIVE
        if recorder is not None:
            recorder.note(
                "inorder.run_cycles",
                app=app.name,
                start=start_instruction,
                cycles=cycles,
            )
        with span("inorder.run_cycles"):
            return inorder_run_cycles(
                self, app, start_instruction, cycles, env
            )
