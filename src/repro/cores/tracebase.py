"""Shared infrastructure for the trace-driven pipeline models.

A :class:`TraceApplication` bundles a concrete instruction trace with
the identity the simulator expects (name, instruction count, position
wrap-around).  Each trace-driven core model owns one cache hierarchy
per application, modelling per-core private caches; cache state is
retained across scheduling quanta of the same core type (a
simplification relative to flushing on migration, documented in
DESIGN.md).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.config.cores import CoreConfig
from repro.config.machines import MemoryConfig
from repro.cores.base import CoreModel, MemoryEnvironment
from repro.isa.trace import Trace
from repro.memory.cache import SetAssociativeCache
from repro.memory.hierarchy import CacheHierarchy


@dataclass(eq=False)  # identity semantics: used as a weak dict key
class TraceApplication:
    """An application backed by a concrete instruction trace.

    Mirrors the :class:`BenchmarkProfile` surface the simulator uses
    (``name`` and ``instructions``); positions beyond the trace length
    wrap around (restarted applications).
    """

    trace: Trace
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.trace) == 0:
            raise ValueError("trace application needs a non-empty trace")
        if not self.name:
            self.name = self.trace.name

    @property
    def instructions(self) -> int:
        return len(self.trace)

    def window(self, start: int, length: int) -> Trace:
        """A trace window starting at ``start`` (mod length)."""
        begin = start % len(self.trace)
        end = min(begin + length, len(self.trace))
        return self.trace.slice(begin, end)


class TraceDrivenModel(CoreModel):
    """Base class: per-application cache hierarchies and DRAM scaling."""

    def __init__(
        self,
        core: CoreConfig,
        memory: MemoryConfig | None = None,
        shared_l3: SetAssociativeCache | None = None,
    ):
        super().__init__(core)
        self.memory = memory if memory is not None else MemoryConfig()
        self._shared_l3 = shared_l3
        # Weak keys: a hierarchy dies with its application (and ids of
        # dead applications can never alias a live entry).
        self._hierarchies: weakref.WeakKeyDictionary[
            TraceApplication, CacheHierarchy
        ] = weakref.WeakKeyDictionary()

    def hierarchy_for(self, app: TraceApplication) -> CacheHierarchy:
        """The private cache hierarchy of an application on this core."""
        if app not in self._hierarchies:
            self._hierarchies[app] = CacheHierarchy(
                self.memory, self.core.frequency_ghz, shared_l3=self._shared_l3
            )
        return self._hierarchies[app]

    def dram_latency_cycles(self, env: MemoryEnvironment) -> float:
        """Contention-scaled DRAM latency for this quantum."""
        base = self.memory.dram_latency_cycles(self.core.frequency_ghz)
        return base * env.dram_latency_multiplier
