"""First-order mechanistic core model (interval CPI + occupancy).

This model follows the mechanistic-modelling lineage the paper itself
builds on (interval analysis for CPI, Carlson et al. [4]; first-order
AVF modelling, Nair et al. [18]): per execution phase it analytically
derives

* a CPI stack (base, resource/dependency stalls, branch misprediction,
  I-cache, LLC, main-memory components -- Figure 2), and
* per-structure occupancy and ACE-bit rates (Figures 1 and 5),

for either core type, in O(1) per phase.  The multicore simulator uses
it to run paper-scale experiments (1 B-instruction applications, 1 ms
quanta) directly.

The ACE accounting mirrors the paper's counter architecture exactly:

* big core: ROB, issue queue, load queue, store queue, register file
  (architectural registers ACE all the time; physical destination
  registers ACE from finish to commit) and functional units;
* small core: pipeline-stage latches (fetch to writeback), issue
  queue, store queue, and functional units.

NOPs are non-ACE everywhere.  Wrong-path instructions are non-ACE;
their main reliability effect -- filling the ROB with un-ACE state
underneath long-latency load misses when a mispredicted branch depends
on the missing load (the mcf/libquantum effect) -- is modelled through
``branch_depends_on_load_prob``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config.cores import CoreConfig
from repro.config.machines import MemoryConfig
from repro.config.structures import StructureKind
from repro.cores.base import (
    ARCH_REG_LIVE_FRACTION,
    CoreModel,
    MemoryEnvironment,
    QuantumResult,
)
from repro.isa.instruction import (
    FP_WRITERS,
    INT_WRITERS,
    InstructionClass,
)

if TYPE_CHECKING:  # avoid a circular import with repro.workloads
    from repro.workloads.characteristics import (
        BenchmarkProfile,
        PhaseCharacteristics,
    )

# -- Model constants (calibrated against the trace-driven pipeline models) --

#: L1-D hit latency added to a load's producer-to-consumer latency.
_L1D_HIT_EXTRA = 3.0
#: Fraction of an L2 hit's latency the out-of-order window fails to hide.
_L2_EXPOSED_BIG = 0.25
#: Fraction of an L3 hit's latency the out-of-order window fails to hide.
_L3_EXPOSED_BIG = 0.55
#: Extra cycles of an I-cache miss beyond the L2 access itself.
_ICACHE_EXTRA = 2.0
#: Correct-path ROB entries surviving a misprediction flush.
_REFILL_OCCUPANCY = 8.0
#: Average ROB occupancy during a front-end stall, relative to base.
_FE_OCCUPANCY_FACTOR = 0.25
#: ROB fill level reached while a DRAM access blocks commit.
_MEM_OCCUPANCY_FACTOR = 0.95
#: Fraction of the ROB holding wrong-path state under a load miss when
#: the mispredicted branch depends on that load.
_WRONG_PATH_WINDOW_FRACTION = 0.85
#: Correct-path window cap: with a misprediction every N instructions,
#: at most about this fraction of N correct-path instructions can be
#: in flight at once (everything fetched past the branch is wrong
#: path, hence un-ACE).
_CORRECT_PATH_RUN_FACTOR = 0.5
#: Issue-queue occupancy as a fraction of ROB occupancy, per regime.
_IQ_FRACTION = {"base": 0.20, "fe": 0.10, "llc": 0.30, "mem": 0.30}
#: Fraction of ROB entries whose destination register is ACE
#: (finished but not committed), per regime.
_REG_LIVE_FRACTION = {"base": 0.35, "fe": 0.20, "llc": 0.50, "mem": 0.70}
#: Store-queue residency multiplier (stores linger past commit).
_STORE_RESIDENCY = 1.2
#: Pipeline slack added to backend residence time (big core, cycles).
_BACKEND_SLACK = 2.0
#: In-order issue efficiency: fraction of the dataflow ILP an in-order
#: pipeline can exploit (no reordering around stalled instructions).
_INORDER_ILP_EFFICIENCY = 0.55
#: Small-core store-queue drain time in cycles.
_SMALL_STORE_DRAIN = 3.0
#: Memory-level parallelism achievable by the small in-order core.
_SMALL_MLP = 1.0
#: Live architectural-register fraction (shared model constant).
_ARCH_REG_LIVE_FRACTION = ARCH_REG_LIVE_FRACTION


@dataclass(frozen=True)
class PhaseAnalysis:
    """Steady-state behaviour of one phase on one core type.

    Attributes:
        ipc: committed instructions per cycle.
        cpi_components: CPI stack, keyed by component name
            (``base``, ``resource``, ``bpred``, ``icache``, ``l2``,
            ``llc``, ``mem``).
        ace_bits_per_cycle: average resident ACE bits per structure.
        occupancy_bits_per_cycle: average resident bits (ACE or not).
        dram_accesses_per_instruction: DRAM accesses per instruction.
        l3_accesses_per_instruction: L3 accesses per instruction.
    """

    ipc: float
    cpi_components: dict[str, float]
    ace_bits_per_cycle: dict[StructureKind, float]
    occupancy_bits_per_cycle: dict[StructureKind, float]
    dram_accesses_per_instruction: float
    l3_accesses_per_instruction: float

    @property
    def cpi(self) -> float:
        return sum(self.cpi_components.values())

    @property
    def total_ace_bits_per_cycle(self) -> float:
        return sum(self.ace_bits_per_cycle.values())

    def avf(self, core: CoreConfig) -> float:
        return self.total_ace_bits_per_cycle / core.total_ace_capacity_bits


def _miss_rates(
    chars: "PhaseCharacteristics", env: MemoryEnvironment
) -> tuple[float, float, float]:
    """(L1D, L2, L3) misses per instruction under the environment."""
    m1 = chars.l1d_mpki / 1000.0
    m2 = chars.l2_mpki / 1000.0
    m3 = chars.l3_mpki_at_share(env.l3_share_fraction) / 1000.0
    return m1, m2, min(m3, m2)


def _dram_latency(
    core: CoreConfig, memory: MemoryConfig, env: MemoryEnvironment
) -> float:
    """Full L3-miss-to-data latency in core cycles."""
    dram = memory.dram_latency_cycles(core.frequency_ghz)
    return memory.l3.latency_cycles + dram * env.dram_latency_multiplier


def _producer_latency(chars: "PhaseCharacteristics") -> float:
    """Mean producer-to-consumer latency along dependency chains."""
    return chars.mix.average_execution_latency() + chars.mix.load * _L1D_HIT_EXTRA


def _fu_throughput_limit(core: CoreConfig, chars: "PhaseCharacteristics") -> float:
    """IPC ceiling imposed by functional-unit pool throughput."""
    limit = math.inf
    for pool in core.functional_units:
        frac = chars.mix.as_dict().get(pool.instruction_class, 0.0)
        if frac > 0:
            limit = min(limit, pool.throughput / frac)
    return limit


def _fu_bits(
    core: CoreConfig, chars: "PhaseCharacteristics", ipc: float
) -> tuple[float, float]:
    """(ACE, occupied) functional-unit bits per cycle at a given IPC."""
    mix = chars.mix.as_dict()
    occupied = 0.0
    for pool in core.functional_units:
        frac = mix.get(pool.instruction_class, 0.0)
        busy_units = min(ipc * frac * pool.latency, float(pool.max_in_flight))
        occupied += busy_units * pool.bits
    # Loads/stores/branches execute on the integer ALUs for one cycle.
    alu = core.fu_pool(InstructionClass.INT_ALU)
    extra_frac = chars.mix.load + chars.mix.store + chars.mix.branch
    occupied += min(ipc * extra_frac, float(alu.count)) * alu.bits
    # NOPs never occupy a functional unit, so occupied == ACE here.
    return occupied, occupied


def _register_bits_per_writer(chars: "PhaseCharacteristics") -> float:
    """Mean destination-register width over register-writing instructions."""
    mix = chars.mix.as_dict()
    int_frac = sum(mix[c] for c in INT_WRITERS)
    fp_frac = sum(mix[c] for c in FP_WRITERS)
    total = int_frac + fp_frac
    if total == 0:
        return 0.0
    return (int_frac * 64.0 + fp_frac * 128.0) / total


def _writer_fraction(chars: "PhaseCharacteristics") -> float:
    mix = chars.mix.as_dict()
    return sum(mix[c] for c in INT_WRITERS | FP_WRITERS)


def analyze_big_phase(
    chars: "PhaseCharacteristics",
    core: CoreConfig,
    memory: MemoryConfig,
    env: MemoryEnvironment,
) -> PhaseAnalysis:
    """Analyze one phase on the big out-of-order core."""
    if not core.out_of_order:
        raise ValueError("analyze_big_phase requires an out-of-order core")
    assert core.rob is not None and core.load_queue is not None

    width = float(core.width)
    rob_size = float(core.rob.entries)
    m1, m2, m3 = _miss_rates(chars, env)
    br = chars.branch_mpki / 1000.0
    ic = chars.icache_mpki / 1000.0
    dram_lat = _dram_latency(core, memory, env)
    l2_lat = float(memory.l2.latency_cycles)
    l3_lat = float(memory.l3.latency_cycles)

    producer_lat = _producer_latency(chars)
    ipc_dataflow = chars.dep_distance_mean / producer_lat
    ipc_limit = min(width, ipc_dataflow, _fu_throughput_limit(core, chars))

    p_bl = chars.branch_depends_on_load_prob
    drain = producer_lat + _BACKEND_SLACK
    components = {
        "base": 1.0 / width,
        "resource": 1.0 / ipc_limit - 1.0 / width,
        "bpred": br * (core.frontend_depth + drain * (1.0 - p_bl)),
        "icache": ic * (l2_lat + _ICACHE_EXTRA),
        "l2": (m1 - m2) * l2_lat * _L2_EXPOSED_BIG,
        "llc": (m2 - m3) * l3_lat * _L3_EXPOSED_BIG,
        "mem": m3 * dram_lat / chars.mlp,
    }
    cpi = sum(components.values())
    ipc = 1.0 / cpi

    # -- Regime decomposition (cycles per instruction in each regime) --
    t_mem = components["mem"]
    t_fe = components["bpred"] + components["icache"]
    t_llc = components["llc"]
    t_base = cpi - t_mem - t_fe - t_llc

    # ROB occupancy per regime.  During dependence-bound execution the
    # front end outruns commit, so the ROB ramps toward full between
    # front-end disruptions.
    refill_occ = min(rob_size, _REFILL_OCCUPANCY)
    fill_rate = max(0.0, width - ipc_limit)
    fe_events = br + ic
    if fill_rate <= 1e-12:
        # Fetch-bound steady state: Little's law at full width.
        occ_base = min(rob_size, width * (producer_lat + _BACKEND_SLACK * 2))
    elif fe_events <= 1e-12:
        occ_base = rob_size
    else:
        base_interval = t_base / fe_events  # cycles of base regime per event
        time_to_fill = (rob_size - refill_occ) / fill_rate
        if base_interval <= time_to_fill:
            occ_base = refill_occ + fill_rate * base_interval / 2.0
        else:
            ramp_avg = (refill_occ + rob_size) / 2.0
            occ_base = (
                ramp_avg * time_to_fill + rob_size * (base_interval - time_to_fill)
            ) / base_interval
    occ_mem = rob_size * _MEM_OCCUPANCY_FACTOR
    occ_llc = (occ_base + rob_size) / 2.0
    occ_fe = occ_base * _FE_OCCUPANCY_FACTOR

    regimes = {"base": (t_base, occ_base), "fe": (t_fe, occ_fe),
               "llc": (t_llc, occ_llc), "mem": (t_mem, occ_mem)}

    non_nop = 1.0 - chars.mix.nop
    wrong_path = {"base": 0.0, "fe": 0.0, "llc": 0.0,
                  "mem": p_bl * _WRONG_PATH_WINDOW_FRACTION}
    # With a misprediction every 1/br instructions, only about half a
    # run of correct-path instructions can be in flight at once; the
    # rest of the window holds un-ACE wrong-path state.
    run_cap = (
        _CORRECT_PATH_RUN_FACTOR / br if br > 0 else math.inf
    )

    rob_bits = float(core.rob.bits_per_entry)
    iq_size, iq_bits = float(core.issue_queue.entries), float(
        core.issue_queue.bits_per_entry
    )
    lq_size, lq_bits = float(core.load_queue.entries), float(
        core.load_queue.bits_per_entry
    )
    sq_size, sq_bits = float(core.store_queue.entries), float(
        core.store_queue.bits_per_entry
    )

    ace = {kind: 0.0 for kind in (
        StructureKind.ROB, StructureKind.ISSUE_QUEUE, StructureKind.LOAD_QUEUE,
        StructureKind.STORE_QUEUE, StructureKind.REGISTER_FILE,
        StructureKind.FUNCTIONAL_UNITS,
    )}
    occupancy = dict(ace)
    reg_bits_per_writer = _register_bits_per_writer(chars)
    writer_frac = _writer_fraction(chars)

    for regime, (t_ci, occ) in regimes.items():
        if t_ci <= 0.0:
            continue
        weight = t_ci / cpi  # fraction of cycles spent in this regime
        correct_path = 1.0 - wrong_path[regime]
        if occ > 0 and math.isfinite(run_cap):
            correct_path = min(correct_path, run_cap / occ)
        ace_frac = non_nop * correct_path
        occ_iq = min(iq_size, occ * _IQ_FRACTION[regime])
        occ_lq = min(lq_size, occ * chars.mix.load)
        occ_sq = min(sq_size, occ * chars.mix.store * _STORE_RESIDENCY)
        live_regs = occ * writer_frac * _REG_LIVE_FRACTION[regime]

        occupancy[StructureKind.ROB] += weight * occ * rob_bits
        occupancy[StructureKind.ISSUE_QUEUE] += weight * occ_iq * iq_bits
        occupancy[StructureKind.LOAD_QUEUE] += weight * occ_lq * lq_bits
        occupancy[StructureKind.STORE_QUEUE] += weight * occ_sq * sq_bits
        occupancy[StructureKind.REGISTER_FILE] += weight * (
            live_regs * reg_bits_per_writer
        )

        ace[StructureKind.ROB] += weight * occ * rob_bits * ace_frac
        ace[StructureKind.ISSUE_QUEUE] += weight * occ_iq * iq_bits * ace_frac
        ace[StructureKind.LOAD_QUEUE] += weight * occ_lq * lq_bits * ace_frac
        ace[StructureKind.STORE_QUEUE] += weight * occ_sq * sq_bits * ace_frac
        ace[StructureKind.REGISTER_FILE] += weight * (
            live_regs * reg_bits_per_writer * ace_frac
        )

    # Live architectural registers are ACE independent of occupancy.
    arch_bits = float(core.register_file.arch_bits) * _ARCH_REG_LIVE_FRACTION
    ace[StructureKind.REGISTER_FILE] += arch_bits
    occupancy[StructureKind.REGISTER_FILE] += arch_bits

    fu_ace, fu_occ = _fu_bits(core, chars, ipc)
    ace[StructureKind.FUNCTIONAL_UNITS] = fu_ace
    occupancy[StructureKind.FUNCTIONAL_UNITS] = fu_occ

    return PhaseAnalysis(
        ipc=ipc,
        cpi_components=components,
        ace_bits_per_cycle=ace,
        occupancy_bits_per_cycle=occupancy,
        dram_accesses_per_instruction=m3,
        l3_accesses_per_instruction=m2,
    )


def analyze_small_phase(
    chars: "PhaseCharacteristics",
    core: CoreConfig,
    memory: MemoryConfig,
    env: MemoryEnvironment,
) -> PhaseAnalysis:
    """Analyze one phase on the small in-order core."""
    if core.out_of_order:
        raise ValueError("analyze_small_phase requires an in-order core")
    assert core.pipeline_latches is not None

    width = float(core.width)
    m1, m2, m3 = _miss_rates(chars, env)
    br = chars.branch_mpki / 1000.0
    ic = chars.icache_mpki / 1000.0
    dram_lat = _dram_latency(core, memory, env)
    l2_lat = float(memory.l2.latency_cycles)
    l3_lat = float(memory.l3.latency_cycles)

    producer_lat = _producer_latency(chars)
    ipc_dataflow = (
        _INORDER_ILP_EFFICIENCY * chars.dep_distance_mean / producer_lat
    )
    ipc_limit = min(width, ipc_dataflow, _fu_throughput_limit(core, chars))

    components = {
        "base": 1.0 / width,
        "resource": 1.0 / ipc_limit - 1.0 / width,
        "bpred": br * core.frontend_depth,
        "icache": ic * (l2_lat + _ICACHE_EXTRA),
        "l2": (m1 - m2) * l2_lat,  # stall-on-use: fully exposed
        "llc": (m2 - m3) * l3_lat,
        "mem": m3 * dram_lat / _SMALL_MLP,
    }
    cpi = sum(components.values())
    ipc = 1.0 / cpi

    # Regimes: stall cycles keep the pipeline latches fully occupied;
    # flowing cycles hold roughly IPC * depth instructions.
    latches = core.pipeline_latches
    latch_slots = float(latches.entries)
    latch_bits = float(latches.bits_per_entry)
    t_stall = components["l2"] + components["llc"] + components["mem"]
    t_fe = components["bpred"] + components["icache"]
    t_flow = cpi - t_stall - t_fe

    occ_flow = min(latch_slots, ipc_limit * core.frontend_depth)
    occ_stall = latch_slots
    occ_fe = occ_flow * _FE_OCCUPANCY_FACTOR

    iq_size = float(core.issue_queue.entries)
    iq_bits = float(core.issue_queue.bits_per_entry)
    sq_size = float(core.store_queue.entries)
    sq_bits = float(core.store_queue.bits_per_entry)

    non_nop = 1.0 - chars.mix.nop
    regimes = {"flow": (t_flow, occ_flow), "fe": (t_fe, occ_fe),
               "stall": (t_stall, occ_stall)}
    iq_occ = {"flow": min(iq_size, ipc_limit), "fe": 0.5,
              "stall": iq_size}
    sq_base = min(sq_size, ipc * chars.mix.store * _SMALL_STORE_DRAIN)
    sq_occ = {"flow": sq_base, "fe": sq_base * 0.5,
              "stall": min(sq_size, sq_base + 2.0 * chars.mix.store * 10.0)}

    ace = {kind: 0.0 for kind in (
        StructureKind.PIPELINE_LATCHES, StructureKind.ISSUE_QUEUE,
        StructureKind.STORE_QUEUE, StructureKind.REGISTER_FILE,
        StructureKind.FUNCTIONAL_UNITS,
    )}
    occupancy = dict(ace)
    # Live architectural registers are ACE on either core type
    # (ground truth).  The small core's cheap counter hardware does
    # not measure them (see repro.ace.counters.measured_abc).
    arch_bits = float(core.register_file.arch_bits) * _ARCH_REG_LIVE_FRACTION
    ace[StructureKind.REGISTER_FILE] = arch_bits
    occupancy[StructureKind.REGISTER_FILE] = arch_bits
    for regime, (t_ci, occ) in regimes.items():
        if t_ci <= 0.0:
            continue
        weight = t_ci / cpi
        occupancy[StructureKind.PIPELINE_LATCHES] += weight * occ * latch_bits
        occupancy[StructureKind.ISSUE_QUEUE] += weight * iq_occ[regime] * iq_bits
        occupancy[StructureKind.STORE_QUEUE] += weight * sq_occ[regime] * sq_bits
        ace[StructureKind.PIPELINE_LATCHES] += (
            weight * occ * latch_bits * non_nop
        )
        ace[StructureKind.ISSUE_QUEUE] += (
            weight * iq_occ[regime] * iq_bits * non_nop
        )
        ace[StructureKind.STORE_QUEUE] += (
            weight * sq_occ[regime] * sq_bits * non_nop
        )

    fu_ace, fu_occ = _fu_bits(core, chars, ipc)
    ace[StructureKind.FUNCTIONAL_UNITS] = fu_ace
    occupancy[StructureKind.FUNCTIONAL_UNITS] = fu_occ

    return PhaseAnalysis(
        ipc=ipc,
        cpi_components=components,
        ace_bits_per_cycle=ace,
        occupancy_bits_per_cycle=occupancy,
        dram_accesses_per_instruction=m3,
        l3_accesses_per_instruction=m2,
    )


def analyze_phase(
    chars: "PhaseCharacteristics",
    core: CoreConfig,
    memory: MemoryConfig,
    env: MemoryEnvironment,
) -> PhaseAnalysis:
    """Analyze a phase on whichever core type is given."""
    if core.out_of_order:
        return analyze_big_phase(chars, core, memory, env)
    return analyze_small_phase(chars, core, memory, env)


class MechanisticCoreModel(CoreModel):
    """O(1)-per-quantum core model driven by benchmark profiles."""

    def __init__(self, core: CoreConfig, memory: MemoryConfig | None = None):
        super().__init__(core)
        self.memory = memory if memory is not None else MemoryConfig()

    def analyze(
        self, chars: "PhaseCharacteristics", env: MemoryEnvironment
    ) -> PhaseAnalysis:
        return analyze_phase(chars, self.core, self.memory, env)

    def run_cycles(
        self,
        app: "BenchmarkProfile",
        start_instruction: int,
        cycles: float,
        env: MemoryEnvironment,
    ) -> QuantumResult:
        """Advance a profile through a cycle budget, phase by phase."""
        if cycles <= 0:
            return QuantumResult.zero()
        result = QuantumResult.zero()
        position = start_instruction
        remaining = float(cycles)
        # Iterate phase chunks; each chunk is homogeneous, so the phase
        # analysis applies uniformly across it.
        while remaining > 1e-9:
            chars = app.phase_at(position)
            analysis = self.analyze(chars, env)
            to_phase_end = app.instructions_until_phase_change(position)
            chunk_cycles = min(remaining, to_phase_end * analysis.cpi)
            instructions = int(round(chunk_cycles / analysis.cpi))
            if instructions <= 0:
                # Budget too small to commit a single instruction in
                # this phase; consume the remaining cycles idle.
                chunk = QuantumResult(instructions=0, cycles=remaining)
                result = result.merged_with(chunk)
                break
            chunk_cycles = instructions * analysis.cpi
            chunk = QuantumResult(
                instructions=instructions,
                cycles=chunk_cycles,
                ace_bit_cycles={
                    k: v * chunk_cycles
                    for k, v in analysis.ace_bits_per_cycle.items()
                },
                occupancy_bit_cycles={
                    k: v * chunk_cycles
                    for k, v in analysis.occupancy_bits_per_cycle.items()
                },
                memory_accesses=analysis.dram_accesses_per_instruction
                * instructions,
                l3_accesses=analysis.l3_accesses_per_instruction * instructions,
                branch_mispredictions=chars.branch_mpki / 1000.0
                * instructions,
            )
            result = result.merged_with(chunk)
            position += instructions
            remaining -= chunk_cycles
        return result
