"""Trace-driven out-of-order core model.

An O(instructions) event model of the big core of Table 2: 4-wide
dispatch/commit, a 128-entry ROB, 64-entry issue queue, 64-entry
load/store queues, per-class functional units (unpipelined dividers),
front-end redirects on branch mispredictions, I-cache miss stalls, and
real cache-hierarchy latencies for loads.

The model first computes per-instruction pipeline timings
(:class:`WindowTiming`: dispatch, issue, finish and commit cycles),
then derives the exact residency intervals the paper's counter
architecture measures (Section 4.2): time in the ROB (commit -
dispatch), issue queue (issue - dispatch), load/store queue (commit -
dispatch), destination register (commit - finish) and functional unit
(execution latency) -- each clipped to the 12-bit timestamp range --
and accumulates ACE bit-cycles for correct-path, non-NOP state.

Wrong-path instructions after a mispredicted branch are never
dispatched (the correct path refetches after resolution), so during a
load miss that feeds a mispredicted branch the window naturally holds
no ACE state beyond the branch -- the low-AVF mechanism of
mcf/libquantum emerges from the timing.

The exposed timings also drive the Monte-Carlo fault-injection
validation in `repro.ace.faultinject`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.structures import StructureKind
from repro.cores.base import (
    ARCH_REG_LIVE_FRACTION,
    MemoryEnvironment,
    QuantumResult,
)
from repro.cores.tracebase import TraceApplication, TraceDrivenModel
from repro.isa.instruction import (
    FP_WRITERS,
    INT_WRITERS,
    InstructionClass,
    fu_bits_table,
)

#: 12-bit per-ROB-entry timestamp counters clip residency here.
TIMESTAMP_CLIP = 4095

#: Live architectural-register fraction (shared model constant).
_ARCH_REG_LIVE_FRACTION = ARCH_REG_LIVE_FRACTION


@dataclass
class WindowTiming:
    """Per-instruction pipeline timings for one executed window.

    All arrays cover the *committed* prefix of the window (length
    ``committed``).  Cycle values are relative to the window start.
    """

    classes: np.ndarray
    dispatch: np.ndarray
    issue: np.ndarray
    finish: np.ndarray
    commit: np.ndarray
    latency: np.ndarray
    mispredicted: np.ndarray
    committed: int
    elapsed_cycles: float

    def __post_init__(self) -> None:
        for name in ("dispatch", "issue", "finish", "commit", "latency",
                     "mispredicted"):
            if len(getattr(self, name)) != self.committed:
                raise ValueError(f"{name} must cover the committed prefix")


class OutOfOrderCoreModel(TraceDrivenModel):
    """Trace-driven model of the big out-of-order core."""

    def simulate_window(
        self,
        app: TraceApplication,
        start_instruction: int,
        cycles: float,
        env: MemoryEnvironment,
    ) -> WindowTiming:
        """Compute pipeline timings for a cycle budget of execution.

        Delegates to the vectorized kernel
        (:func:`repro.kernels.window.ooo_simulate_window`); the
        pre-kernel straight-line implementation is preserved as
        :func:`repro.kernels.reference.reference_ooo_window` and the
        two are cross-checked by the differential fuzzer.
        """
        from repro.kernels.window import ooo_simulate_window
        from repro.obs import flight as obs_flight
        from repro.obs.tracing import span

        recorder = obs_flight.ACTIVE
        if recorder is not None:
            recorder.note(
                "ooo.simulate_window",
                app=app.name,
                start=start_instruction,
                cycles=cycles,
            )
        with span("ooo.simulate_window"):
            return ooo_simulate_window(
                self, app, start_instruction, cycles, env
            )

    def run_cycles(
        self,
        app: TraceApplication,
        start_instruction: int,
        cycles: float,
        env: MemoryEnvironment,
    ) -> QuantumResult:
        if cycles <= 0:
            return QuantumResult.zero()
        hierarchy = self.hierarchy_for(app)
        l3_start = hierarchy.l3_accesses
        dram_start = hierarchy.dram_accesses
        timing = self.simulate_window(app, start_instruction, cycles, env)
        ace, occupancy = self._account(timing)
        return QuantumResult(
            instructions=timing.committed,
            cycles=timing.elapsed_cycles,
            ace_bit_cycles=ace,
            occupancy_bit_cycles=occupancy,
            memory_accesses=float(hierarchy.dram_accesses - dram_start),
            l3_accesses=float(hierarchy.l3_accesses - l3_start),
            branch_mispredictions=float(timing.mispredicted.sum()),
        )

    def _account(
        self, timing: WindowTiming
    ) -> tuple[dict[StructureKind, float], dict[StructureKind, float]]:
        """Vectorized ACE/occupancy accounting from window timings."""
        core = self.core
        assert core.rob is not None and core.load_queue is not None
        fu_bits = fu_bits_table()
        classes = timing.classes
        non_nop = classes != InstructionClass.NOP
        is_load = classes == InstructionClass.LOAD
        is_store = classes == InstructionClass.STORE
        writers = np.isin(
            classes, np.array(sorted(INT_WRITERS | FP_WRITERS), dtype=np.int8)
        )
        fp_writers = np.isin(
            classes, np.array(sorted(FP_WRITERS), dtype=np.int8)
        )

        rob_res = np.minimum(timing.commit - timing.dispatch, TIMESTAMP_CLIP)
        iq_res = np.minimum(timing.issue - timing.dispatch, TIMESTAMP_CLIP)
        reg_res = np.minimum(timing.commit - timing.finish, TIMESTAMP_CLIP)
        fu_res = np.minimum(timing.latency, TIMESTAMP_CLIP)
        reg_bits = np.where(fp_writers, 128.0, 64.0)
        fu_res_bits = fu_res * fu_bits[classes]

        occupancy = {
            StructureKind.ROB: float(rob_res.sum()) * core.rob.bits_per_entry,
            StructureKind.ISSUE_QUEUE: float(iq_res.sum())
            * core.issue_queue.bits_per_entry,
            StructureKind.LOAD_QUEUE: float(rob_res[is_load].sum())
            * core.load_queue.bits_per_entry,
            StructureKind.STORE_QUEUE: float(rob_res[is_store].sum())
            * core.store_queue.bits_per_entry,
            StructureKind.REGISTER_FILE: float(
                (reg_res * reg_bits)[writers].sum()
            ),
            StructureKind.FUNCTIONAL_UNITS: float(fu_res_bits[non_nop].sum()),
        }
        ace = {
            StructureKind.ROB: float(rob_res[non_nop].sum())
            * core.rob.bits_per_entry,
            StructureKind.ISSUE_QUEUE: float(iq_res[non_nop].sum())
            * core.issue_queue.bits_per_entry,
            StructureKind.LOAD_QUEUE: occupancy[StructureKind.LOAD_QUEUE],
            StructureKind.STORE_QUEUE: occupancy[StructureKind.STORE_QUEUE],
            StructureKind.REGISTER_FILE: occupancy[
                StructureKind.REGISTER_FILE
            ],
            StructureKind.FUNCTIONAL_UNITS: occupancy[
                StructureKind.FUNCTIONAL_UNITS
            ],
        }
        arch = (
            core.register_file.arch_bits
            * _ARCH_REG_LIVE_FRACTION
            * timing.elapsed_cycles
        )
        ace[StructureKind.REGISTER_FILE] += arch
        occupancy[StructureKind.REGISTER_FILE] += arch
        return ace, occupancy
