"""Core performance models: mechanistic and trace-driven pipelines."""

from repro.cores.base import (
    ACE_STRUCTURES,
    ISOLATED,
    CoreModel,
    MemoryEnvironment,
    QuantumResult,
)
from repro.cores.mechanistic import (
    MechanisticCoreModel,
    PhaseAnalysis,
    analyze_big_phase,
    analyze_phase,
    analyze_small_phase,
)

__all__ = [
    "ACE_STRUCTURES",
    "ISOLATED",
    "CoreModel",
    "MechanisticCoreModel",
    "MemoryEnvironment",
    "PhaseAnalysis",
    "QuantumResult",
    "analyze_big_phase",
    "analyze_phase",
    "analyze_small_phase",
]
