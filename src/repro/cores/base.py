"""Core model interface.

Everything above the core models (the multicore simulator and the
schedulers) consumes only this interface: *run this application's next
instructions on this core type and report cycles plus per-structure
ACE-bit counts*.  Two implementations exist:

* :class:`repro.cores.mechanistic.MechanisticCoreModel` -- a
  first-order analytical model (interval CPI model plus Little's-law
  occupancy analysis), O(1) per quantum, used for paper-scale runs.
* the trace-driven pipeline models in `repro.cores.ooo` and
  `repro.cores.inorder`, O(instructions), used for validation and
  small-scale studies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.config.cores import CoreConfig
from repro.config.structures import StructureKind

#: Fraction of architectural registers holding live (ACE) values at
#: any time; a register is ACE from write to last read, and live-range
#: studies put the live fraction around a fifth to a third.  Shared by
#: every core model (mechanistic, trace-driven) and the fault injector.
ARCH_REG_LIVE_FRACTION = 0.20

#: Structure keys used in ACE-bit breakdowns, in display order.
ACE_STRUCTURES = (
    StructureKind.ROB,
    StructureKind.ISSUE_QUEUE,
    StructureKind.LOAD_QUEUE,
    StructureKind.STORE_QUEUE,
    StructureKind.REGISTER_FILE,
    StructureKind.FUNCTIONAL_UNITS,
    StructureKind.PIPELINE_LATCHES,
)


@dataclass(frozen=True)
class MemoryEnvironment:
    """Shared-resource conditions a core sees during one quantum.

    Attributes:
        l3_share_fraction: fraction of the shared LLC capacity
            effectively available to this application (1.0 when running
            alone).
        dram_latency_multiplier: DRAM latency inflation due to
            bandwidth contention (1.0 when running alone).
    """

    l3_share_fraction: float = 1.0
    dram_latency_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.l3_share_fraction <= 1.0:
            raise ValueError("l3_share_fraction must be in (0, 1]")
        if self.dram_latency_multiplier < 1.0:
            raise ValueError("dram_latency_multiplier must be >= 1")


ISOLATED = MemoryEnvironment()


@dataclass
class QuantumResult:
    """What a core reports after executing part of an application.

    Attributes:
        instructions: committed (correct-path) instructions, including
            NOPs.
        cycles: elapsed core cycles.
        ace_bit_cycles: per-structure ACE bit-cycles: the integral of
            ACE bits resident in each structure over the cycles.  This
            is what the paper's hardware ACE-bit counters accumulate.
        occupancy_bit_cycles: per-structure *total* occupied bit-cycles
            (ACE or not); used for occupancy diagnostics.
        memory_accesses: DRAM accesses issued (for bandwidth/power
            accounting).
        l3_accesses: L3 accesses issued (L2 misses).
        branch_mispredictions: mispredicted branches committed (an
            ordinary performance-counter quantity, used by
            counter-free ABC predictors).
    """

    instructions: int
    cycles: float
    ace_bit_cycles: dict[StructureKind, float] = field(default_factory=dict)
    occupancy_bit_cycles: dict[StructureKind, float] = field(default_factory=dict)
    memory_accesses: float = 0.0
    l3_accesses: float = 0.0
    branch_mispredictions: float = 0.0

    @property
    def total_ace_bit_cycles(self) -> float:
        return sum(self.ace_bit_cycles.values())

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def ace_bits_per_cycle(self) -> float:
        """Average ACE bits resident per cycle (the SER ~ ABC/T rate)."""
        return self.total_ace_bit_cycles / self.cycles if self.cycles else 0.0

    def avf(self, core: CoreConfig) -> float:
        """Core-level architectural vulnerability factor."""
        capacity = core.total_ace_capacity_bits
        return self.ace_bits_per_cycle() / capacity if capacity else 0.0

    def merged_with(self, other: "QuantumResult") -> "QuantumResult":
        """Accumulate another result into a combined one."""
        ace = dict(self.ace_bit_cycles)
        for kind, value in other.ace_bit_cycles.items():
            ace[kind] = ace.get(kind, 0.0) + value
        occ = dict(self.occupancy_bit_cycles)
        for kind, value in other.occupancy_bit_cycles.items():
            occ[kind] = occ.get(kind, 0.0) + value
        return QuantumResult(
            instructions=self.instructions + other.instructions,
            cycles=self.cycles + other.cycles,
            ace_bit_cycles=ace,
            occupancy_bit_cycles=occ,
            memory_accesses=self.memory_accesses + other.memory_accesses,
            l3_accesses=self.l3_accesses + other.l3_accesses,
            branch_mispredictions=self.branch_mispredictions
            + other.branch_mispredictions,
        )

    @staticmethod
    def zero() -> "QuantumResult":
        return QuantumResult(instructions=0, cycles=0.0)


class CoreModel(abc.ABC):
    """Executes slices of an application on a configured core."""

    def __init__(self, core: CoreConfig):
        self.core = core

    @abc.abstractmethod
    def run_cycles(
        self, app, start_instruction: int, cycles: float, env: MemoryEnvironment
    ) -> QuantumResult:
        """Run an application for (about) a number of cycles.

        Args:
            app: the application handle (model-specific: a
                :class:`~repro.workloads.characteristics.BenchmarkProfile`
                for the mechanistic model, a trace-backed application
                for the pipeline models).
            start_instruction: position in the application's dynamic
                instruction stream (wraps modulo the application length
                for restarted applications).
            cycles: cycle budget for the slice.
            env: shared-resource conditions.

        Returns:
            the committed instructions, actual cycles (close to the
            budget), and ACE-bit accounting for the slice.
        """
