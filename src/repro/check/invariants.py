"""Registry of paper invariants over simulation results and schedules.

Every invariant encodes one piece of the paper's math that the
simulator must preserve regardless of how the hot paths are
refactored:

* ``wSER = ABC / T_ref x IFR`` and ``SER = ABC / T x IFR``
  (Equations 1-2), recomputed *through* :mod:`repro.metrics.reliability`
  so a regression in the metrics module disagrees with the simulator's
  bookkeeping and is caught.
* ``SSER = sum_i wSER_i`` (Equation 3): the run-level SSER must equal
  the per-application decomposition.
* ABC conservation across per-structure stacks: structure entries are
  non-negative, sum to the core total, never exceed the structure's
  occupied bit-cycles, and the FULL counter reads the exact total.
* Schedule legality: every quantum's segments cover exactly the
  quantum, each application sits on at most one in-range core per
  segment, and no core runs two applications.
* Oracle dominance: the exhaustive Section 2.4 enumeration can never
  lose to a greedy static pick on identical inputs.

Checks produce a :class:`CheckReport` whose :class:`Violation` entries
name the violated invariant, the checked subject, and the offending
values.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.config.machines import MachineConfig
from repro.metrics.reliability import (
    DEFAULT_IFR,
    soft_error_rate,
    system_ser,
    weighted_ser,
)
from repro.sched.base import PARKED, SegmentPlan
from repro.sim.isolated import IsolatedStats
from repro.sim.results import AppRunRecord, RunResult

#: Default relative tolerance for floating-point identities.
REL_TOL = 1e-9

#: Looser tolerance for identities crossing an accumulation order
#: (per-quantum sums vs closed-form recomputation).
SUM_TOL = 1e-6


class Severity(enum.Enum):
    """How bad a violated invariant is.

    ``ERROR`` breaks the paper's math; ``WARNING`` flags a quantity
    outside its expected envelope (legitimate for unusual model
    configurations, suspicious otherwise).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    """One violated invariant on one subject.

    Attributes:
        invariant: registry name of the violated invariant.
        severity: the invariant's severity tag.
        subject: label of the checked run/schedule/stack.
        message: what went wrong, in one sentence.
        values: the offending values, as deterministic (name, value)
            pairs.
    """

    invariant: str
    severity: Severity
    subject: str
    message: str
    values: tuple[tuple[str, float], ...] = ()

    def format(self) -> str:
        rendered = ", ".join(f"{name}={value!r}" for name, value in self.values)
        suffix = f" [{rendered}]" if rendered else ""
        return (
            f"{self.severity.value.upper()} {self.invariant} @ "
            f"{self.subject}: {self.message}{suffix}"
        )


@dataclass(frozen=True)
class CheckReport:
    """Outcome of running a set of invariants on one subject.

    Attributes:
        subject: label of what was checked.
        checked: names of every invariant that ran.
        violations: every violation found, in registry order.
    """

    subject: str
    checked: tuple[str, ...]
    violations: tuple[Violation, ...] = ()

    @property
    def errors(self) -> tuple[Violation, ...]:
        return tuple(
            v for v in self.violations if v.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> tuple[Violation, ...]:
        return tuple(
            v for v in self.violations if v.severity is Severity.WARNING
        )

    @property
    def ok(self) -> bool:
        """True when no *error*-severity invariant was violated."""
        return not self.errors

    def invariant_names(self) -> tuple[str, ...]:
        """Violated invariant names, deduplicated, in first-hit order."""
        seen: dict[str, None] = {}
        for violation in self.violations:
            seen.setdefault(violation.invariant, None)
        return tuple(seen)

    def format(self) -> str:
        if not self.violations:
            return (
                f"{self.subject}: OK ({len(self.checked)} invariant(s) held)"
            )
        lines = [
            f"{self.subject}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        lines.extend("  " + violation.format() for violation in self.violations)
        return "\n".join(lines)


def merge_reports(
    reports: Iterable[CheckReport], subject: str = "all"
) -> CheckReport:
    """Combine several reports into one (violations concatenated)."""
    checked: dict[str, None] = {}
    violations: list[Violation] = []
    for report in reports:
        for name in report.checked:
            checked.setdefault(name, None)
        violations.extend(report.violations)
    return CheckReport(
        subject=subject, checked=tuple(checked), violations=tuple(violations)
    )


# -- registry ---------------------------------------------------------

#: Findings yielded by an invariant body: (message, offending values).
Finding = tuple[str, Mapping[str, float]]


@dataclass(frozen=True)
class Invariant:
    """A named, severity-tagged predicate over one subject kind.

    Attributes:
        name: registry key, referenced by violation reports.
        severity: what a violation means (see :class:`Severity`).
        subject_kind: ``"run"``, ``"stack"``, ``"schedule"`` or
            ``"oracle"``; selects which ``check_*`` runner applies it.
        description: one-line statement of the property.
        fn: generator yielding :data:`Finding` tuples for violations.
    """

    name: str
    severity: Severity
    subject_kind: str
    description: str
    fn: Callable[..., Iterator[Finding]] = field(compare=False)


_REGISTRY: dict[str, Invariant] = {}


def registered_invariants(
    subject_kind: str | None = None,
) -> tuple[Invariant, ...]:
    """Every registered invariant, optionally filtered by subject."""
    return tuple(
        inv
        for inv in _REGISTRY.values()
        if subject_kind is None or inv.subject_kind == subject_kind
    )


def invariant(
    name: str, *, severity: Severity = Severity.ERROR, subject: str = "run"
):
    """Register an invariant body under ``name``."""

    def register(fn: Callable[..., Iterator[Finding]]):
        if name in _REGISTRY:
            raise ValueError(f"duplicate invariant name {name!r}")
        description = (fn.__doc__ or "").strip().splitlines()[0]
        _REGISTRY[name] = Invariant(name, severity, subject, description, fn)
        return fn

    return register


def _apply(
    subject_kind: str, subject_label: str, *args
) -> CheckReport:
    invariants = registered_invariants(subject_kind)
    violations: list[Violation] = []
    for inv in invariants:
        for message, values in inv.fn(*args):
            violations.append(
                Violation(
                    invariant=inv.name,
                    severity=inv.severity,
                    subject=subject_label,
                    message=message,
                    values=tuple(sorted(values.items())),
                )
            )
    return CheckReport(
        subject=subject_label,
        checked=tuple(inv.name for inv in invariants),
        violations=tuple(violations),
    )


def _close(a: float, b: float, tol: float = REL_TOL) -> bool:
    # Relative only: reliability quantities scale with IFR = 1e-25,
    # so any absolute tolerance would swamp them and mask real drift.
    return math.isclose(a, b, rel_tol=tol, abs_tol=0.0)


# -- run-level invariants ---------------------------------------------

#: Non-negative numeric fields of an application record.
_NON_NEGATIVE_APP_FIELDS = (
    "instructions",
    "time_seconds",
    "abc_seconds",
    "occupancy_bit_seconds",
    "reference_time_seconds",
    "time_big_seconds",
    "time_small_seconds",
    "instructions_big",
    "instructions_small",
    "dram_accesses",
    "l3_accesses",
    "migrations",
    "completed_runs",
)


@invariant("non_negative_quantities")
def _non_negative_quantities(result: RunResult) -> Iterator[Finding]:
    """Every timing/ACE/traffic quantity in a run is non-negative."""
    if result.duration_seconds < 0:
        yield (
            "run duration is negative",
            {"duration_seconds": result.duration_seconds},
        )
    if result.quanta < 0:
        yield "quantum count is negative", {"quanta": result.quanta}
    for app in result.apps:
        for name in _NON_NEGATIVE_APP_FIELDS:
            value = getattr(app, name)
            if value < 0:
                yield (
                    f"{app.name}.{name} is negative",
                    {name: value},
                )
    for point in result.timeline:
        if point.abc_per_second < 0 or point.time_seconds < 0:
            yield (
                f"timeline point for {point.app_name} has negative values",
                {
                    "abc_per_second": point.abc_per_second,
                    "time_seconds": point.time_seconds,
                },
            )


@invariant("positive_times")
def _positive_times(result: RunResult) -> Iterator[Finding]:
    """Execution and reference times are strictly positive."""
    for app in result.apps:
        if app.time_seconds <= 0:
            yield (
                f"{app.name} has non-positive execution time",
                {"time_seconds": app.time_seconds},
            )
        if app.reference_time_seconds <= 0:
            yield (
                f"{app.name} has non-positive reference time",
                {"reference_time_seconds": app.reference_time_seconds},
            )


def _reliable_apps(result: RunResult) -> list[AppRunRecord]:
    """Applications whose reliability quantities are well-defined."""
    return [
        app
        for app in result.apps
        if app.time_seconds > 0 and app.reference_time_seconds > 0
    ]


@invariant("wser_definition")
def _wser_definition(result: RunResult) -> Iterator[Finding]:
    """Per-application wSER and SER match Equations 1-2.

    The run's bookkeeping is recomputed through
    :mod:`repro.metrics.reliability`; any drift between the simulator's
    inline math and the metrics module is a violation.
    """
    for app in _reliable_apps(result):
        expected_wser = weighted_ser(
            app.abc_seconds, app.reference_time_seconds, DEFAULT_IFR
        )
        if not _close(app.wser, expected_wser):
            yield (
                f"{app.name}.wser disagrees with Equation 2 "
                f"(ABC / T_ref x IFR)",
                {
                    "abc_seconds": app.abc_seconds,
                    "expected_wser": expected_wser,
                    "reference_time_seconds": app.reference_time_seconds,
                    "wser": app.wser,
                },
            )
        expected_ser = soft_error_rate(
            app.abc_seconds, app.time_seconds, DEFAULT_IFR
        )
        if not _close(app.ser, expected_ser):
            yield (
                f"{app.name}.ser disagrees with Equation 1 (ABC / T x IFR)",
                {
                    "abc_seconds": app.abc_seconds,
                    "expected_ser": expected_ser,
                    "ser": app.ser,
                    "time_seconds": app.time_seconds,
                },
            )


@invariant("sser_decomposition")
def _sser_decomposition(result: RunResult) -> Iterator[Finding]:
    """Run SSER equals the sum of per-application wSERs (Equation 3)."""
    apps = _reliable_apps(result)
    if len(apps) != len(result.apps):
        return  # positive_times already reported the real problem
    from_parts = sum(app.wser for app in apps)
    if not _close(result.sser, from_parts, SUM_TOL):
        yield (
            "SSER does not equal the sum of per-application wSERs",
            {"sser": result.sser, "sum_of_wser": from_parts},
        )
    recomputed = system_ser(
        [app.abc_seconds for app in apps],
        [app.reference_time_seconds for app in apps],
        DEFAULT_IFR,
    )
    if not _close(result.sser, recomputed, SUM_TOL):
        yield (
            "SSER disagrees with metrics.system_ser on the same inputs",
            {"recomputed": recomputed, "sser": result.sser},
        )


@invariant("time_decomposition")
def _time_decomposition(result: RunResult) -> Iterator[Finding]:
    """Per-core-type time and instructions decompose the totals.

    Big- plus small-core instruction counts must equal the total
    exactly; per-core-type execution time cannot exceed the run
    duration (parked segments legitimately leave a gap).
    """
    for app in result.apps:
        split = app.instructions_big + app.instructions_small
        if split != app.instructions:
            yield (
                f"{app.name} instruction split does not sum to the total",
                {
                    "instructions": app.instructions,
                    "instructions_big": app.instructions_big,
                    "instructions_small": app.instructions_small,
                },
            )
        on_core = app.time_big_seconds + app.time_small_seconds
        budget = result.duration_seconds * (1 + SUM_TOL) + SUM_TOL
        if on_core > budget:
            yield (
                f"{app.name} on-core time exceeds the run duration",
                {
                    "duration_seconds": result.duration_seconds,
                    "time_big_seconds": app.time_big_seconds,
                    "time_small_seconds": app.time_small_seconds,
                },
            )


@invariant("abc_within_occupancy")
def _abc_within_occupancy(result: RunResult) -> Iterator[Finding]:
    """ACE bit-seconds never exceed occupied bit-seconds.

    ACE bits are a subset of occupied bits, so the ground-truth ABC
    accumulation can never exceed the occupancy accumulation.
    """
    for app in result.apps:
        budget = app.occupancy_bit_seconds * (1 + SUM_TOL) + SUM_TOL
        if app.abc_seconds > budget:
            yield (
                f"{app.name} accumulated more ACE than occupied bit-seconds",
                {
                    "abc_seconds": app.abc_seconds,
                    "occupancy_bit_seconds": app.occupancy_bit_seconds,
                },
            )


@invariant("slowdown_at_least_one", severity=Severity.WARNING)
def _slowdown_at_least_one(result: RunResult) -> Iterator[Finding]:
    """Sharing a machine cannot beat the isolated big-core reference.

    Interference and migration only slow applications down, so the
    per-application slowdown ``T / T_ref`` should stay >= 1.  A value
    below 1 means the mix ran *faster* than the isolated reference --
    legitimate only for exotic model overrides.
    """
    for app in _reliable_apps(result):
        if app.slowdown < 1.0 - SUM_TOL:
            yield (
                f"{app.name} ran faster in the mix than its isolated "
                f"big-core reference",
                {
                    "reference_time_seconds": app.reference_time_seconds,
                    "slowdown": app.slowdown,
                    "time_seconds": app.time_seconds,
                },
            )


def check_run(result: RunResult, *, label: str | None = None) -> CheckReport:
    """Run every run-level invariant on one simulation result."""
    if label is None:
        mix = "+".join(app.name for app in result.apps)
        label = f"{result.machine_name}/{result.scheduler_name}/{mix}"
    return _apply("run", label, result)


def default_run_checks(result: RunResult) -> CheckReport:
    """The standard per-job check hook for the execution engine."""
    return check_run(result)


# -- ABC stack invariants ---------------------------------------------


@invariant("stack_conservation", subject="stack")
def _stack_conservation(quantum_result) -> Iterator[Finding]:
    """Per-structure ACE entries are non-negative and sum to the total.

    The Figure 5 ABC stacks decompose the core total; a negative entry
    or a total that drifts from the per-structure sum means the stack
    no longer conserves ABC.
    """
    total = 0.0
    for kind, value in quantum_result.ace_bit_cycles.items():
        if value < 0:
            yield (
                f"structure {kind.value} has negative ACE bit-cycles",
                {kind.value: value},
            )
        total += value
    reported = quantum_result.total_ace_bit_cycles
    if not _close(reported, total, SUM_TOL):
        yield (
            "total ACE bit-cycles drifted from the per-structure sum",
            {"per_structure_sum": total, "total": reported},
        )


@invariant("stack_within_occupancy", subject="stack")
def _stack_within_occupancy(quantum_result) -> Iterator[Finding]:
    """Each structure's ACE bit-cycles fit inside its occupancy."""
    for kind, ace in quantum_result.ace_bit_cycles.items():
        occupancy = quantum_result.occupancy_bit_cycles.get(kind)
        if occupancy is None:
            continue
        if ace > occupancy * (1 + SUM_TOL) + SUM_TOL:
            yield (
                f"structure {kind.value} holds more ACE than occupied "
                f"bit-cycles",
                {"ace_bit_cycles": ace, "occupancy_bit_cycles": occupancy},
            )


@invariant("full_counter_exact", subject="stack")
def _full_counter_exact(quantum_result) -> Iterator[Finding]:
    """The FULL counter architecture reads the exact core total."""
    from repro.ace.counters import AceCounterMode, measured_abc

    measured = measured_abc(quantum_result, AceCounterMode.FULL, True)
    if not _close(measured, quantum_result.total_ace_bit_cycles, SUM_TOL):
        yield (
            "FULL counters disagree with the ground-truth ACE total",
            {
                "measured": measured,
                "total": quantum_result.total_ace_bit_cycles,
            },
        )


def check_stack(quantum_result, *, label: str = "stack") -> CheckReport:
    """Run the ABC-stack invariants on one quantum result."""
    return _apply("stack", label, quantum_result)


# -- schedule invariants ----------------------------------------------


@invariant("quantum_coverage", subject="schedule")
def _quantum_coverage(
    plans_by_quantum: Sequence[Sequence[SegmentPlan]],
    machine: MachineConfig,
    num_apps: int,
) -> Iterator[Finding]:
    """Every quantum's segment fractions cover exactly the quantum."""
    for index, plans in enumerate(plans_by_quantum):
        total = sum(plan.fraction for plan in plans)
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            yield (
                f"quantum {index} segments cover {total}, expected 1.0",
                {"quantum": index, "total_fraction": total},
            )
        for plan in plans:
            if not 0.0 < plan.fraction <= 1.0:
                yield (
                    f"quantum {index} has a segment fraction outside (0, 1]",
                    {"fraction": plan.fraction, "quantum": index},
                )


@invariant("one_core_per_app", subject="schedule")
def _one_core_per_app(
    plans_by_quantum: Sequence[Sequence[SegmentPlan]],
    machine: MachineConfig,
    num_apps: int,
) -> Iterator[Finding]:
    """Each application sits on at most one in-range core per segment.

    The assignment maps every application to exactly one core id (or
    parks it); ids must exist on the machine, and no core may run two
    applications in the same segment.
    """
    for index, plans in enumerate(plans_by_quantum):
        for segment, plan in enumerate(plans):
            cores = plan.assignment.core_of
            if len(cores) != num_apps:
                yield (
                    f"quantum {index} segment {segment} assigns "
                    f"{len(cores)} applications, expected {num_apps}",
                    {"assigned": len(cores), "quantum": index},
                )
                continue
            running = [c for c in cores if c != PARKED]
            for app_index, core in enumerate(cores):
                if core != PARKED and not 0 <= core < machine.num_cores:
                    yield (
                        f"quantum {index} places application {app_index} "
                        f"on core {core}, outside {machine.name}",
                        {"app": app_index, "core": core, "quantum": index},
                    )
            if len(set(running)) != len(running):
                yield (
                    f"quantum {index} segment {segment} places two "
                    f"applications on one core",
                    {"quantum": index, "running": len(running)},
                )


@invariant("core_capacity", subject="schedule")
def _core_capacity(
    plans_by_quantum: Sequence[Sequence[SegmentPlan]],
    machine: MachineConfig,
    num_apps: int,
) -> Iterator[Finding]:
    """No segment runs more applications than the machine has cores."""
    for index, plans in enumerate(plans_by_quantum):
        for plan in plans:
            running = sum(1 for c in plan.assignment.core_of if c != PARKED)
            if running > machine.num_cores:
                yield (
                    f"quantum {index} runs {running} applications on "
                    f"{machine.num_cores} cores",
                    {
                        "num_cores": machine.num_cores,
                        "quantum": index,
                        "running": running,
                    },
                )


def check_schedule(
    plans_by_quantum: Sequence[Sequence[SegmentPlan]],
    machine: MachineConfig,
    num_apps: int,
    *,
    label: str = "schedule",
) -> CheckReport:
    """Run the schedule-legality invariants on recorded quantum plans."""
    return _apply("schedule", label, plans_by_quantum, machine, num_apps)


# -- decision-trace invariants ----------------------------------------

#: Tolerance for threshold comparisons recorded by optimizers whose
#: acceptance test algebraically rearranges the recorded quantities
#: (e.g. ``sser(best) < sser(current) * (1 - thr)`` vs the recorded
#: ``delta_total`` / ``threshold``); covers one reassociation ULP.
_DECISION_TOL = 1e-9


def _clears_threshold(delta_total: float, threshold: float) -> bool:
    # Acceptance is strict (``delta < -threshold`` with threshold >= 0),
    # so a non-negative delta never clears -- in particular the
    # delta=0/threshold=0 candidates produced by all-empty service
    # slots, which the absolute fudge below would otherwise misjudge.
    if delta_total >= 0.0:
        return False
    return delta_total < -threshold * (1 - _DECISION_TOL) + 1e-15


@invariant("decision_trace_consistency", subject="decision_trace")
def _decision_trace_consistency(records) -> Iterator[Finding]:
    """A scheduler decision trace replays and justifies every move.

    Consecutive records chain (``before`` continues the previous
    ``after``), the recorded moves reproduce each record's ``after``
    assignment, greedy-phase accepted candidates applied in order equal
    the recorded moves' effect, every accepted non-forced candidate's
    objective delta clears the hysteresis threshold (and every rejected
    one does not), segment fractions cover the quantum, the final
    segment runs the optimized assignment, and the sampling segment is
    exactly the recorded staleness swaps applied to it.
    """
    from repro.obs.decisions import apply_moves

    previous_after = None
    previous_modes: tuple[str, ...] | None = None
    for record in records:
        q = record.quantum
        if previous_after is not None and record.before != previous_after:
            yield (
                f"quantum {q} does not chain from the previous record",
                {"quantum": q},
            )
        if apply_moves(record.before, record.moves) != record.after:
            yield (
                f"quantum {q} moves do not reproduce the after assignment",
                {"quantum": q},
            )
        previous_after = record.after
        if record.phase == "greedy":
            # Mode candidates (kind == "mode") change protection state,
            # not cores; only placement swaps replay the permutation.
            accepted = [
                c
                for c in record.candidates
                if c.accepted and c.kind != "mode"
            ]
            replayed = record.before
            for cand in accepted:
                replayed = apply_moves(
                    replayed, [(cand.mover, cand.partner)]
                )
            if replayed != record.after:
                yield (
                    f"quantum {q} accepted swaps do not reproduce the "
                    f"after assignment",
                    {"accepted_swaps": float(len(accepted)), "quantum": q},
                )
        if record.modes:
            expected_modes = list(
                previous_modes
                if previous_modes
                else ("none",) * len(record.modes)
            )
            for cand in record.candidates:
                if (
                    cand.kind == "mode"
                    and cand.accepted
                    and 0 <= cand.mover < len(expected_modes)
                ):
                    expected_modes[cand.mover] = cand.mode
            if tuple(expected_modes) != record.modes:
                yield (
                    f"quantum {q} accepted mode changes do not reproduce "
                    f"the recorded mode keys",
                    {"quantum": q},
                )
            previous_modes = record.modes
        for index, cand in enumerate(record.candidates):
            if cand.accepted and not cand.forced:
                if not _clears_threshold(cand.delta_total, cand.threshold):
                    yield (
                        f"quantum {q} candidate {index} was accepted "
                        f"without clearing the swap threshold",
                        {
                            "delta_total": cand.delta_total,
                            "quantum": q,
                            "threshold": cand.threshold,
                        },
                    )
            elif not cand.accepted:
                if _clears_threshold(
                    cand.delta_total, cand.threshold * (1 + 2 * _DECISION_TOL)
                ):
                    yield (
                        f"quantum {q} candidate {index} was rejected "
                        f"despite clearing the swap threshold",
                        {
                            "delta_total": cand.delta_total,
                            "quantum": q,
                            "threshold": cand.threshold,
                        },
                    )
        if record.segments:
            total = sum(seg.fraction for seg in record.segments)
            if not math.isclose(total, 1.0, abs_tol=1e-9):
                yield (
                    f"quantum {q} segments cover {total}, expected 1.0",
                    {"quantum": q, "total_fraction": total},
                )
            if record.segments[-1].core_of != record.after:
                yield (
                    f"quantum {q} final segment does not run the "
                    f"optimized assignment",
                    {"quantum": q},
                )
            if record.phase != "initial_sampling":
                for seg in record.segments[:-1]:
                    if not seg.is_sampling:
                        continue
                    expected = apply_moves(
                        record.after, record.sampling_swaps
                    )
                    if seg.core_of != expected:
                        yield (
                            f"quantum {q} sampling segment disagrees "
                            f"with the recorded staleness swaps",
                            {"quantum": q},
                        )


def check_decision_trace(records, *, label: str = "decision_trace") -> CheckReport:
    """Run the decision-trace invariants on recorded quantum records."""
    return _apply("decision_trace", label, records)


# -- protection-mode invariants ----------------------------------------


@invariant("mode_model_conservation", subject="mode")
def _mode_model_conservation(outcome, result, schedule, memory) -> Iterator[Finding]:
    """Mode accounting is exactly the published model, conserved end to end.

    Recomputes every per-application overlay quantity (residual
    protected ABC, protection-state ABC, slowed execution time, moded
    wSER) from the run record, the mode dwell schedule, and the mode
    model constants, and requires the reported outcome to match.  Also
    pins the model's physical envelope: dwell weights sum to one,
    residual factors stay within [0, 1], slowdowns are at least one,
    and an all-``none`` application reports exactly its unprotected
    core + uncore accounting.
    """
    from repro.sched.modes import (
        apply_modes,
        parse_mode,
        residual_factor,
        slowdown_factor,
    )

    if len(outcome.apps) != len(result.apps):
        yield (
            f"outcome covers {len(outcome.apps)} applications, "
            f"run has {len(result.apps)}",
            {
                "outcome_apps": len(outcome.apps),
                "run_apps": len(result.apps),
            },
        )
        return
    quantum = schedule.quantum_seconds
    for index, moded in enumerate(outcome.apps):
        name = moded.name
        weight_sum = sum(moded.weights.values())
        if not math.isclose(weight_sum, 1.0, abs_tol=SUM_TOL):
            yield (
                f"{name}: mode dwell weights sum to {weight_sum}, "
                f"expected 1.0",
                {"app": index, "weight_sum": weight_sum},
            )
        for key in moded.weights:
            mode = parse_mode(key)
            residual = residual_factor(mode, quantum)
            slowdown = slowdown_factor(mode, quantum)
            if not 0.0 <= residual <= 1.0:
                yield (
                    f"{name}: mode {key} residual factor {residual} "
                    f"outside [0, 1]",
                    {"app": index, "residual": residual},
                )
            if slowdown < 1.0:
                yield (
                    f"{name}: mode {key} slowdown {slowdown} below 1",
                    {"app": index, "slowdown": slowdown},
                )
    recomputed = apply_modes(result, schedule, memory)
    fields = (
        "protected_abc_seconds",
        "protection_abc_seconds",
        "moded_time_seconds",
        "moded_wser",
        "protection_power_watts",
    )
    for index, (moded, expected) in enumerate(
        zip(outcome.apps, recomputed.apps)
    ):
        for field_name in fields:
            got = getattr(moded, field_name)
            want = getattr(expected, field_name)
            if got != want and not _close(got, want):
                yield (
                    f"{moded.name}: {field_name} = {got}, model "
                    f"recomputation gives {want}",
                    {"app": index, "got": got, "want": want},
                )
        if set(moded.weights) == {"none"}:
            app = result.apps[index]
            if not _close(
                moded.moded_time_seconds, app.time_seconds
            ) and moded.moded_time_seconds != app.time_seconds:
                yield (
                    f"{moded.name}: unprotected app reports moded time "
                    f"{moded.moded_time_seconds}, run time "
                    f"{app.time_seconds}",
                    {"app": index},
                )
            if moded.protection_abc_seconds != 0.0:
                yield (
                    f"{moded.name}: unprotected app charged protection "
                    f"ABC {moded.protection_abc_seconds}",
                    {"app": index},
                )


def check_mode_outcome(
    outcome, result, schedule, memory, *, label: str = "mode"
) -> CheckReport:
    """Run the mode-model conservation invariant on a run's overlay."""
    return _apply("mode", label, outcome, result, schedule, memory)


@invariant("mode_slot_legality", subject="mode_schedule")
def _mode_slot_legality(
    plans_by_quantum, mode_history, machine, num_apps
) -> Iterator[Finding]:
    """Protection modes and placements agree quantum by quantum.

    A DMR checker core is a small core that hosts no application in
    any segment of the quanta it is reserved for, and every DMR'd
    application sits on a big core (never parked, never sampled onto
    a small core) while its mode is active.
    """
    if len(plans_by_quantum) != len(mode_history):
        yield (
            f"recorded {len(plans_by_quantum)} quanta of plans but "
            f"{len(mode_history)} of mode history",
            {
                "mode_quanta": len(mode_history),
                "plan_quanta": len(plans_by_quantum),
            },
        )
        return
    for index, (plans, (mode_keys, checkers)) in enumerate(
        zip(plans_by_quantum, mode_history)
    ):
        for core in checkers:
            if machine.core_type(core) != "small":
                yield (
                    f"quantum {index} reserves non-small core {core} "
                    f"as a DMR checker",
                    {"core": core, "quantum": index},
                )
        dmr_apps = [
            app for app, key in enumerate(mode_keys) if key == "dmr"
        ]
        if len(checkers) != len(dmr_apps):
            yield (
                f"quantum {index} has {len(dmr_apps)} DMR applications "
                f"but {len(checkers)} checker cores",
                {"checkers": len(checkers), "quantum": index},
            )
        for segment, plan in enumerate(plans):
            cores = plan.assignment.core_of
            for app_index, core in enumerate(cores):
                if core in checkers:
                    yield (
                        f"quantum {index} segment {segment} double-"
                        f"assigns checker core {core} to application "
                        f"{app_index}",
                        {"app": app_index, "core": core, "quantum": index},
                    )
            for app in dmr_apps:
                core = cores[app] if app < len(cores) else PARKED
                if core == PARKED or machine.core_type(core) != "big":
                    yield (
                        f"quantum {index} segment {segment} runs DMR "
                        f"application {app} off a big core (core {core})",
                        {"app": app, "core": core, "quantum": index},
                    )


def check_mode_schedule(
    plans_by_quantum,
    mode_history,
    machine: MachineConfig,
    num_apps: int,
    *,
    label: str = "mode_schedule",
) -> CheckReport:
    """Run the mode/placement legality invariants on a recorded run."""
    return _apply(
        "mode_schedule", label, plans_by_quantum, mode_history, machine, num_apps
    )


@invariant("mode_none_equivalence", subject="mode_none")
def _mode_none_equivalence(moded_payload, baseline_payload) -> Iterator[Finding]:
    """Mode-aware scheduling restricted to ``none`` is the base scheduler.

    With ``allowed_modes=("none",)`` the mode phase never runs, so the
    serialized run result must be byte-identical to the plain
    reliability scheduler's (scheduler names normalized by the
    caller).
    """
    if moded_payload != baseline_payload:
        keys = sorted(
            set(moded_payload) | set(baseline_payload)
        )
        differing = [
            k
            for k in keys
            if moded_payload.get(k) != baseline_payload.get(k)
        ]
        yield (
            f"mode=none run diverges from the baseline scheduler in "
            f"{differing}",
            {"differing_keys": len(differing)},
        )


def check_mode_none(
    moded_payload, baseline_payload, *, label: str = "mode_none"
) -> CheckReport:
    """Compare serialized mode=none and baseline scheduler results."""
    return _apply("mode_none", label, moded_payload, baseline_payload)


# -- resume invariants ------------------------------------------------


@invariant("resume_equivalence", subject="resume")
def _resume_equivalence(full, resumed) -> Iterator[Finding]:
    """A resumed campaign reports exactly what an uninterrupted run does.

    Checkpoint/resume must be invisible in the final report: the same
    jobs, the same per-job success/failure split, and bit-identical
    results (a resumed job may surface as a cache hit, but never as a
    different number).
    """
    from repro.sim.serialize import run_result_to_dict

    if len(full.outcomes) != len(resumed.outcomes):
        yield (
            "resumed report has a different job count",
            {
                "full_jobs": len(full.outcomes),
                "resumed_jobs": len(resumed.outcomes),
            },
        )
        return
    for a, b in zip(full.outcomes, resumed.outcomes):
        if a.ok != b.ok:
            yield (
                f"job {a.index} ({a.label}) changed status after resume",
                {
                    "full_ok": int(a.ok),
                    "index": a.index,
                    "resumed_ok": int(b.ok),
                },
            )
            continue
        if a.ok and run_result_to_dict(a.result) != run_result_to_dict(
            b.result
        ):
            yield (
                f"job {a.index} ({a.label}) result differs after resume",
                {"index": a.index},
            )


def check_resume(full, resumed, *, label: str = "resume") -> CheckReport:
    """Run the resume-equivalence invariant on two execution reports.

    ``full`` is an uninterrupted run's
    :class:`~repro.runtime.engine.ExecutionReport`; ``resumed`` is the
    report of a campaign finished via ``resume_from=``.
    """
    return _apply("resume", label, full, resumed)


# -- shard invariants --------------------------------------------------


@invariant("shard_partition_cover", subject="shard_partition")
def _shard_partition_cover(keys, shards, owners) -> Iterator[Finding]:
    """The shard partition is a disjoint cover of the keyspace.

    Every job index belongs to exactly one shard, and that shard is
    the one its spec key hashes to -- so any two fleets (or a fleet
    and a resume) agree on ownership without coordination.
    """
    from repro.runtime.shard import shard_of

    seen: dict[int, int] = {}
    for shard, indices in enumerate(owners):
        for index in indices:
            if index in seen:
                yield (
                    f"job {index} assigned to shards {seen[index]} "
                    f"and {shard}",
                    {"index": index},
                )
            seen[index] = shard
    missing = [i for i in range(len(keys)) if i not in seen]
    if missing:
        yield (
            f"{len(missing)} job(s) assigned to no shard "
            f"(first: {missing[0]})",
            {"missing": len(missing)},
        )
    for index, key in enumerate(keys):
        want = shard_of(key, shards)
        if seen.get(index) not in (None, want):
            yield (
                f"job {index} routed to shard {seen[index]}, but its "
                f"key hashes to shard {want}",
                {"index": index, "got": seen[index], "want": want},
            )


def check_shard_partition(keys, shards: int, *, label: str = "shard"):
    """Check :func:`repro.runtime.shard.partition_indices` on ``keys``."""
    from repro.runtime.shard import partition_indices

    owners = partition_indices(keys, shards)
    return _apply("shard_partition", label, keys, shards, owners)


@invariant("shard_resume_state_canonical", subject="shard_resume")
def _shard_resume_state_canonical(state_a, state_b) -> Iterator[Finding]:
    """Sharded logs replay to one canonical :class:`ResumeState`.

    However per-shard event streams are cut, merged, or reordered,
    the replayed job statuses must agree -- resume decisions cannot
    depend on which shard's log was read first.
    """
    for field_name in ("completed", "failed", "pending", "shards"):
        a = getattr(state_a, field_name)
        b = getattr(state_b, field_name)
        if a != b:
            yield (
                f"resume states disagree on {field_name}",
                {
                    "a": len(a) if isinstance(a, set) else a,
                    "b": len(b) if isinstance(b, set) else b,
                },
            )


def check_shard_resume_states(state_a, state_b, *, label: str = "shard"):
    """Check two replayed resume states for canonical agreement."""
    return _apply("shard_resume", label, state_a, state_b)


# -- open-system service invariants -----------------------------------


@invariant("open_system_conservation", subject="service")
def _open_system_conservation(result) -> Iterator[Finding]:
    """Open-system job accounting never loses or invents a job.

    Every arrival is either admitted or shed (with a recorded reason),
    and every admitted job is either completed or still in flight when
    the system stops -- the two conservation identities that make the
    ``repro serve``/``repro load`` event feeds trustworthy.
    """
    if result.arrived != result.admitted + result.shed:
        yield (
            "arrivals do not split into admitted + shed",
            {
                "admitted": result.admitted,
                "arrived": result.arrived,
                "shed": result.shed,
            },
        )
    if result.admitted != result.completed + result.in_flight:
        yield (
            "admitted jobs do not split into completed + in-flight",
            {
                "admitted": result.admitted,
                "completed": result.completed,
                "in_flight": result.in_flight,
            },
        )
    by_reason = sum(result.shed_reasons.values())
    if by_reason != result.shed:
        yield (
            "per-reason shed counts do not sum to the shed total",
            {"shed": result.shed, "sum_of_reasons": by_reason},
        )
    if len(result.waits) != result.admitted:
        yield (
            "queueing-delay samples do not cover every admitted job",
            {"admitted": result.admitted, "wait_samples": len(result.waits)},
        )
    for wait in result.waits:
        if wait < 0:
            yield "negative queueing delay recorded", {"wait_seconds": wait}
            break


def check_service(result, *, label: str = "service") -> CheckReport:
    """Run the open-system invariants on one :class:`ServiceResult`."""
    return _apply("service", label, result)


# -- oracle invariants ------------------------------------------------


def _greedy_big_apps(
    stats: Sequence[IsolatedStats], machine: MachineConfig
) -> tuple[int, ...]:
    """Greedy static pick: big cores go to the applications whose
    per-application wSER contribution grows least by being there."""
    from repro.config.machines import BIG, SMALL

    def penalty(app: IsolatedStats) -> float:
        big = app.run(BIG).abc_seconds / app.reference_time_seconds
        small = app.run(SMALL).abc_seconds / app.reference_time_seconds
        return big - small

    order = sorted(range(len(stats)), key=lambda i: (penalty(stats[i]), i))
    return tuple(sorted(order[: machine.big_cores]))


@invariant("oracle_dominates_greedy", subject="oracle")
def _oracle_dominates_greedy(
    stats: Sequence[IsolatedStats], machine: MachineConfig
) -> Iterator[Finding]:
    """The exhaustive oracle never loses to a greedy static pick.

    ``best_sser_schedule`` enumerates every assignment, so on identical
    inputs its SSER must be <= the greedy heuristic's (and its STP
    counterpart must dominate every enumerated schedule).
    """
    from repro.sched.oracle import (
        best_sser_schedule,
        best_stp_schedule,
        enumerate_schedules,
        predict,
    )

    schedules = enumerate_schedules(stats, machine)
    best_sser = best_sser_schedule(stats, machine)
    best_stp = best_stp_schedule(stats, machine)
    greedy = predict(stats, _greedy_big_apps(stats, machine))
    if best_sser.sser > greedy.sser * (1 + REL_TOL):
        yield (
            "reliability oracle predicts worse SSER than the greedy pick",
            {"greedy_sser": greedy.sser, "oracle_sser": best_sser.sser},
        )
    for schedule in schedules:
        if best_sser.sser > schedule.sser * (1 + REL_TOL):
            yield (
                f"reliability oracle loses to enumerated schedule "
                f"{schedule.big_apps}",
                {
                    "oracle_sser": best_sser.sser,
                    "schedule_sser": schedule.sser,
                },
            )
        if best_stp.stp < schedule.stp * (1 - REL_TOL):
            yield (
                f"performance oracle loses to enumerated schedule "
                f"{schedule.big_apps}",
                {"oracle_stp": best_stp.stp, "schedule_stp": schedule.stp},
            )


def check_oracle(
    stats: Sequence[IsolatedStats],
    machine: MachineConfig,
    *,
    label: str = "oracle",
) -> CheckReport:
    """Run the oracle-dominance invariants on one enumeration input."""
    return _apply("oracle", label, stats, machine)
