"""Always-on correctness checking beside the fast simulation path.

The campaign runtime executes far more simulation per run than any
human can eyeball, so this package machine-checks that results still
obey the paper's own math:

* :mod:`repro.check.invariants` -- a registry of named, severity-tagged
  predicates over run results, ABC stacks, schedules and oracle
  enumerations, reported through :class:`CheckReport`.
* :mod:`repro.check.differential` -- a seeded differential fuzzer that
  generates randomized traces and workload mixes and cross-checks the
  trace-driven pipeline models against the mechanistic model via the
  :mod:`repro.validation.crossmodel` rank-agreement criterion plus
  absolute tolerance gates.
* :mod:`repro.check.golden` -- a golden regression corpus freezing
  small-workload outputs of the figure pipelines and comparing new
  runs field-by-field with explicit tolerances.
* :mod:`repro.check.batcheq` -- the batched-vs-scalar equivalence
  contract: results of the cross-run batched engine
  (:mod:`repro.batch`) are diffed field-by-field against the scalar
  reference engine's (``repro check --batch-cases``).

The :class:`~repro.runtime.engine.ExecutionEngine` accepts the
:func:`default_run_checks` hook (``checks=``) to validate every job's
result as it completes, and ``repro check`` runs the fuzzer and the
golden comparison from the command line.
"""

from repro.check.invariants import (
    CheckReport,
    Invariant,
    Severity,
    Violation,
    check_decision_trace,
    check_mode_none,
    check_mode_outcome,
    check_mode_schedule,
    check_oracle,
    check_resume,
    check_run,
    check_schedule,
    check_service,
    check_shard_partition,
    check_shard_resume_states,
    check_stack,
    default_run_checks,
    merge_reports,
    registered_invariants,
)
from repro.check.batcheq import BATCH_REL_TOL, check_batch
from repro.check.differential import FuzzReport, fuzz
from repro.check.golden import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_PIPELINES,
    compare_goldens,
    regenerate_goldens,
)

__all__ = [
    "BATCH_REL_TOL",
    "CheckReport",
    "DEFAULT_GOLDEN_DIR",
    "FuzzReport",
    "GOLDEN_PIPELINES",
    "Invariant",
    "Severity",
    "Violation",
    "check_batch",
    "check_decision_trace",
    "check_mode_none",
    "check_mode_outcome",
    "check_mode_schedule",
    "check_oracle",
    "check_resume",
    "check_run",
    "check_schedule",
    "check_service",
    "check_shard_partition",
    "check_shard_resume_states",
    "check_stack",
    "compare_goldens",
    "default_run_checks",
    "fuzz",
    "merge_reports",
    "regenerate_goldens",
    "registered_invariants",
]
