"""Batched-vs-scalar sweep equivalence checking.

The cross-run batched engine (:mod:`repro.batch`) re-derives every
scalar accumulation as numpy array ops, so its results must match the
scalar reference engine *byte-for-byte* on the same platform.  This
module freezes that contract as a registered invariant: two result
lists are serialized through
:func:`repro.sim.serialize.run_result_to_dict` and diffed field by
field, and every divergence is reported with its full field path
(``run[3].apps[1].abc_seconds``) and both values.

:data:`BATCH_REL_TOL` (``1e-12``) is headroom only -- the batched
driver preserves the scalar association order everywhere, so on one
platform the diff is expected to be empty at tolerance zero; the slack
absorbs hypothetical cross-platform libm differences, mirroring the
golden corpus policy (see ``docs/batching.md``).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.check.golden import _diff
from repro.check.invariants import CheckReport, Finding, _apply, invariant
from repro.sim.results import RunResult
from repro.sim.serialize import run_result_to_dict

#: Relative float tolerance for batched-vs-scalar comparison.  The
#: engines are byte-identical by design; this is cross-platform slack,
#: not an accuracy budget.
BATCH_REL_TOL = 1e-12


@invariant("batched_sweep_equivalence", subject="batch")
def _batched_sweep_equivalence(
    scalar: Sequence[dict], batched: Sequence[dict], rel_tol: float
) -> Iterator[Finding]:
    """The batched engine reproduces the scalar engine's results.

    Both sides are serialized run results in request order; every
    field-level mismatch beyond ``rel_tol`` is reported with its full
    field path and both values.
    """
    if len(scalar) != len(batched):
        yield (
            "scalar and batched sweeps produced different run counts",
            {"batched_runs": len(batched), "scalar_runs": len(scalar)},
        )
        return
    for index, (expected, actual) in enumerate(zip(scalar, batched)):
        for message, values in _diff(
            expected, actual, f"run[{index}]", rel_tol
        ):
            yield (
                f"batched result diverges from scalar: {message}",
                values,
            )


def check_batch(
    scalar_results: Sequence[RunResult],
    batched_results: Sequence[RunResult],
    *,
    label: str = "batch",
    rel_tol: float = BATCH_REL_TOL,
) -> CheckReport:
    """Diff a batched sweep's results against the scalar reference.

    ``scalar_results`` and ``batched_results`` hold the same requests
    in the same order, one computed by the scalar engine and one by
    :class:`~repro.batch.sweep.BatchedSweep`.
    """
    scalar = [run_result_to_dict(result) for result in scalar_results]
    batched = [run_result_to_dict(result) for result in batched_results]
    return _apply("batch", label, scalar, batched, rel_tol)
