"""Golden regression corpus for the figure pipelines.

Small-workload runs of the evaluation pipelines are frozen as JSON
under ``tests/golden/`` and every comparison replays the pipeline and
diffs the result field-by-field with explicit tolerances.  A golden
mismatch names the exact field path and both values, so a perturbed
metric (or a perturbed golden file) fails with an actionable report.

Regenerate after an *intentional* output change with::

    repro check --update-goldens

and review the diff like any other code change.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.check.invariants import (
    CheckReport,
    Severity,
    Violation,
    check_run,
    merge_reports,
)
from repro.sim.results import RunResult

#: Where the corpus lives, relative to the repository root.
DEFAULT_GOLDEN_DIR = Path("tests/golden")

#: Format marker embedded in every golden file.
GOLDEN_FORMAT_VERSION = 1

#: Relative tolerance for float comparisons (same-platform replays are
#: bit-exact; the slack absorbs cross-platform libm differences).
GOLDEN_REL_TOL = 1e-6

#: Instruction budget for golden runs: small enough to replay in
#: seconds, large enough to exercise several scheduler quanta.
_GOLDEN_INSTRUCTIONS = 200_000

_SCHEDULERS = ("random", "performance", "reliability")


def _run_payload(result: RunResult) -> dict[str, Any]:
    """The frozen view of one run: headline metrics + per-app fields."""
    return {
        "machine": result.machine_name,
        "quanta": result.quanta,
        "duration_seconds": result.duration_seconds,
        "sser": result.sser,
        "stp": result.stp,
        "antt": result.antt,
        "apps": [
            {
                "name": app.name,
                "instructions": app.instructions,
                "abc_seconds": app.abc_seconds,
                "time_seconds": app.time_seconds,
                "reference_time_seconds": app.reference_time_seconds,
                "wser": app.wser,
                "migrations": app.migrations,
            }
            for app in result.apps
        ],
    }


def _sweep_payload(
    machine_name: str,
    mixes: list[tuple[str, tuple[str, ...]]],
    runs: list[RunResult],
) -> tuple[dict[str, Any], list[RunResult]]:
    """Run each mix under each scheduler; freeze runs + normalized curves."""
    from repro.sim.experiment import run_workload
    from repro.config.machines import STANDARD_MACHINES

    machine = STANDARD_MACHINES[machine_name]()
    payload: dict[str, Any] = {"machine": machine_name, "runs": {}}
    by_scheduler: dict[str, list[RunResult]] = {}
    for scheduler in _SCHEDULERS:
        rows = []
        for seed, (category, names) in enumerate(mixes):
            result = run_workload(
                machine,
                names,
                scheduler,
                instructions=_GOLDEN_INSTRUCTIONS,
                seed=seed,
            )
            runs.append(result)
            by_scheduler.setdefault(scheduler, []).append(result)
            entry = _run_payload(result)
            entry["category"] = category
            rows.append(entry)
        payload["runs"][scheduler] = rows
    base = by_scheduler["random"]
    payload["normalized"] = {
        scheduler: {
            "sser": sorted(
                r.sser / b.sser for r, b in zip(by_scheduler[scheduler], base)
            ),
            "stp": sorted(
                r.stp / b.stp for r, b in zip(by_scheduler[scheduler], base)
            ),
        }
        for scheduler in ("performance", "reliability")
    }
    return payload, runs


def _pipeline_fig06_1b1s(runs: list[RunResult]) -> dict[str, Any]:
    """Figure 6 shape at toy scale: three two-program mixes on 1B1S."""
    payload, _ = _sweep_payload("1B1S", _FIG06_MIXES, runs)
    return payload


def _sweep_payload_batched(
    machine_name: str,
    mixes: list[tuple[str, tuple[str, ...]]],
    runs: list[RunResult],
) -> dict[str, Any]:
    """`_sweep_payload` computed through the cross-run batched engine.

    Same grid, same seeds (the mix index), same payload shape -- the
    only difference is that every run advances inside one
    :class:`~repro.batch.sweep.BatchedSweep`.  Its golden must agree
    with the scalar pipeline's (pinned by ``tests/test_batch_properties``).
    """
    from repro.batch.sweep import run_workloads_batched
    from repro.config.machines import STANDARD_MACHINES

    machine = STANDARD_MACHINES[machine_name]()
    by_scheduler = run_workloads_batched(
        machine,
        [names for _, names in mixes],
        _SCHEDULERS,
        instructions=_GOLDEN_INSTRUCTIONS,
    )
    payload: dict[str, Any] = {"machine": machine_name, "runs": {}}
    for scheduler in _SCHEDULERS:
        rows = []
        for (category, _), result in zip(mixes, by_scheduler[scheduler]):
            runs.append(result)
            entry = _run_payload(result)
            entry["category"] = category
            rows.append(entry)
        payload["runs"][scheduler] = rows
    base = by_scheduler["random"]
    payload["normalized"] = {
        scheduler: {
            "sser": sorted(
                r.sser / b.sser for r, b in zip(by_scheduler[scheduler], base)
            ),
            "stp": sorted(
                r.stp / b.stp for r, b in zip(by_scheduler[scheduler], base)
            ),
        }
        for scheduler in ("performance", "reliability")
    }
    return payload


#: The Figure 6 toy mixes, shared by the scalar and batched goldens.
_FIG06_MIXES = [
    ("HM", ("milc", "povray")),
    ("HL", ("zeusmp", "mcf")),
    ("ML", ("gobmk", "libquantum")),
]


def _pipeline_fig06_batched(runs: list[RunResult]) -> dict[str, Any]:
    """The fig06 pipeline replayed through the batched engine."""
    return _sweep_payload_batched("1B1S", _FIG06_MIXES, runs)


def _pipeline_fig07_2b2s(runs: list[RunResult]) -> dict[str, Any]:
    """Figure 7 shape at toy scale: two four-program mixes on 2B2S."""
    mixes = [
        ("HHLL", ("milc", "zeusmp", "mcf", "libquantum")),
        ("MMMM", ("gobmk", "bzip2", "hmmer", "sjeng")),
    ]
    payload, _ = _sweep_payload("2B2S", mixes, runs)
    return payload


def _pipeline_oracle_fig03(runs: list[RunResult]) -> dict[str, Any]:
    """Figure 3 shape at toy scale: oracle enumeration on 2B2S."""
    from repro.config.machines import STANDARD_MACHINES
    from repro.sched.oracle import (
        best_sser_schedule,
        best_stp_schedule,
        enumerate_schedules,
    )
    from repro.sim.isolated import isolated_stats
    from repro.sim.multicore import default_models
    from repro.workloads.spec2006 import benchmark

    machine = STANDARD_MACHINES["2B2S"]()
    names = ("milc", "povray", "mcf", "libquantum")
    models = default_models(machine)
    stats = [
        isolated_stats(
            benchmark(name).scaled(_GOLDEN_INSTRUCTIONS),
            models["big"],
            models["small"],
        )
        for name in names
    ]
    schedules = sorted(
        enumerate_schedules(stats, machine), key=lambda s: s.big_apps
    )
    best_sser = best_sser_schedule(stats, machine)
    best_stp = best_stp_schedule(stats, machine)
    return {
        "machine": machine.name,
        "benchmarks": list(names),
        "schedules": [
            {
                "big_apps": list(s.big_apps),
                "sser": s.sser,
                "stp": s.stp,
            }
            for s in schedules
        ],
        "best_sser_big_apps": list(best_sser.big_apps),
        "best_stp_big_apps": list(best_stp.big_apps),
        "ser_gain": 1.0 - best_sser.sser / best_stp.sser,
        "stp_loss": 1.0 - best_sser.stp / best_stp.stp,
    }


#: The frozen pipelines: name -> builder(runs_out) -> payload.
GOLDEN_PIPELINES: dict[str, Callable[[list[RunResult]], dict[str, Any]]] = {
    "fig06_1b1s": _pipeline_fig06_1b1s,
    "fig06_batched": _pipeline_fig06_batched,
    "fig07_2b2s": _pipeline_fig07_2b2s,
    "oracle_fig03": _pipeline_oracle_fig03,
}


def golden_path(directory: str | Path, name: str) -> Path:
    return Path(directory) / f"{name}.json"


def regenerate_goldens(
    directory: str | Path = DEFAULT_GOLDEN_DIR,
    names: Iterable[str] | None = None,
) -> list[Path]:
    """Re-run the pipelines and overwrite the golden files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in names if names is not None else GOLDEN_PIPELINES:
        payload = GOLDEN_PIPELINES[name]([])
        path = golden_path(directory, name)
        path.write_text(
            json.dumps(
                {
                    "format_version": GOLDEN_FORMAT_VERSION,
                    "pipeline": name,
                    "payload": payload,
                },
                indent=1,
                sort_keys=True,
            )
            + "\n"
        )
        written.append(path)
    return written


def _diff(
    expected: Any, actual: Any, path: str, rel_tol: float
) -> Iterable[tuple[str, dict[str, float]]]:
    """Yield (message, values) for every field-level mismatch."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(expected):
            if key not in actual:
                yield f"field {path}.{key} missing from the new run", {}
                continue
            yield from _diff(
                expected[key], actual[key], f"{path}.{key}", rel_tol
            )
        for key in sorted(set(actual) - set(expected)):
            yield f"new run grew unexpected field {path}.{key}", {}
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            yield (
                f"field {path} length changed",
                {"actual": len(actual), "expected": len(expected)},
            )
            return
        for index, (e, a) in enumerate(zip(expected, actual)):
            yield from _diff(e, a, f"{path}[{index}]", rel_tol)
    elif isinstance(expected, bool) or isinstance(actual, bool):
        if expected != actual:
            yield f"field {path} changed from {expected!r} to {actual!r}", {}
    elif isinstance(expected, (int, float)) and isinstance(
        actual, (int, float)
    ):
        if isinstance(expected, int) and isinstance(actual, int):
            if expected != actual:
                yield (
                    f"field {path} changed",
                    {"actual": actual, "expected": expected},
                )
        elif not math.isclose(
            expected, actual, rel_tol=rel_tol, abs_tol=0.0
        ):
            yield (
                f"field {path} drifted beyond rel_tol={rel_tol}",
                {"actual": actual, "expected": expected},
            )
    elif expected != actual:
        yield f"field {path} changed from {expected!r} to {actual!r}", {}


def compare_goldens(
    directory: str | Path = DEFAULT_GOLDEN_DIR,
    names: Iterable[str] | None = None,
    *,
    rel_tol: float = GOLDEN_REL_TOL,
) -> CheckReport:
    """Replay the pipelines and diff them against the frozen corpus.

    Every :class:`RunResult` produced along the way is also pushed
    through the run-level invariants, so a metrics regression surfaces
    both as a named invariant violation and as golden field drift.
    """
    directory = Path(directory)
    reports: list[CheckReport] = []
    for name in names if names is not None else GOLDEN_PIPELINES:
        label = f"golden/{name}"
        path = golden_path(directory, name)
        if not path.exists():
            reports.append(
                CheckReport(
                    subject=label,
                    checked=("golden_match",),
                    violations=(
                        Violation(
                            invariant="golden_match",
                            severity=Severity.ERROR,
                            subject=label,
                            message=(
                                f"golden file {path} is missing; run "
                                f"`repro check --update-goldens`"
                            ),
                        ),
                    ),
                )
            )
            continue
        frozen = json.loads(path.read_text())
        runs: list[RunResult] = []
        payload = GOLDEN_PIPELINES[name](runs)
        violations = [
            Violation(
                invariant="golden_match",
                severity=Severity.ERROR,
                subject=label,
                message=message,
                values=tuple(sorted(values.items())),
            )
            for message, values in _diff(
                frozen.get("payload"), payload, name, rel_tol
            )
        ]
        reports.append(
            CheckReport(
                subject=label,
                checked=("golden_match",),
                violations=tuple(violations),
            )
        )
        for index, result in enumerate(runs):
            reports.append(check_run(result, label=f"{label}/run[{index}]"))
    return merge_reports(reports, subject=f"goldens@{directory}")
